//! E15 — the multi-tenant service front end under open-loop load.
//!
//! Regenerates: throughput and p99 end-to-end latency of `vdo-server`
//! versus tenant count and worker count, plus the admission-control
//! shedding behaviour under 2× overload. The full experiment tables
//! (1M-request headline run, sweeps, determinism, smoke budget) come
//! from `cargo run -p vdo-bench --bin exp_report --release`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use vdo_server::{
    LoadConfig, LoadGen, Request, Server, ServerConfig, ServerMetrics, ServerTracing, TenantConfig,
};

fn service(tenants: usize, workers: usize, queue_capacity: usize) -> Server {
    let mut server = Server::new(ServerConfig {
        capacity_per_round: 1_200,
        quantum: 4,
        workers,
        retain_responses: false,
    });
    for t in 0..tenants {
        server.register_tenant(
            &TenantConfig::new(format!("tenant-{t}"))
                .with_seed(t as u64)
                .with_weight(1 + (t as u64 % 3))
                .with_queue_capacity(queue_capacity),
        );
    }
    server
}

fn run(server: &mut Server, tenants: usize, total: u64, base_rate: u64) -> f64 {
    let weights: Vec<u64> = (0..tenants).map(|t| 1 + (t as u64 % 3)).collect();
    let mut gen = LoadGen::new(LoadConfig {
        total_requests: total,
        base_rate,
        burst_period: 0,
        burst_size: 0,
        tenant_weights: weights,
        mix: vdo_server::MixWeights::default(),
        seed: 7,
    });
    let metrics = ServerMetrics::new();
    let report = server.run_load(&mut gen, &metrics, &ServerTracing::disabled());
    assert_eq!(report.completed(), report.admitted());
    metrics
        .queue_latency
        .snapshot()
        .quantile(0.99)
        .unwrap_or(0.0)
}

fn print_tables() {
    println!("\n[E15] service throughput vs tenant count (100k requests, 4 workers)");
    println!("{:>10} {:>12} {:>10}", "TENANTS", "THROUGHPUT", "P99 RNDS");
    for tenants in [2usize, 4, 8, 16] {
        let mut server = service(tenants, 4, 512);
        let t0 = std::time::Instant::now();
        let p99 = run(&mut server, tenants, 100_000, 1_000);
        let dt = t0.elapsed().as_secs_f64();
        println!("{tenants:>10} {:>10.0}/s {p99:>10.1}", 100_000.0 / dt);
    }

    println!("\n[E15] admission shedding under 2x overload (50k requests, capacity 500/round)");
    println!("{:>10} {:>10} {:>10}", "QUEUE CAP", "ADMITTED", "REJECTED");
    for queue_capacity in [64usize, 256, 1_024] {
        let mut server = Server::new(ServerConfig {
            capacity_per_round: 500,
            quantum: 4,
            workers: 4,
            retain_responses: false,
        });
        for t in 0..8usize {
            server.register_tenant(
                &TenantConfig::new(format!("tenant-{t}"))
                    .with_seed(t as u64)
                    .with_queue_capacity(queue_capacity),
            );
        }
        let mut gen = LoadGen::new(LoadConfig::even(8, 50_000, 1_000, 13));
        let metrics = ServerMetrics::new();
        let report = server.run_load(&mut gen, &metrics, &ServerTracing::disabled());
        println!(
            "{queue_capacity:>10} {:>10} {:>10}",
            report.admitted(),
            report.rejected()
        );
        assert!(report.rejected() > 0, "overload must shed load");
    }
}

fn bench_server(c: &mut Criterion) {
    print_tables();

    let mut group = c.benchmark_group("E15_tenants");
    group.sample_size(10);
    for tenants in [2usize, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(tenants),
            &tenants,
            |b, &tenants| {
                b.iter_batched(
                    || service(tenants, 4, 512),
                    |mut server| run(&mut server, tenants, 20_000, 1_000),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("E15_workers");
    group.sample_size(10);
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter_batched(
                    || service(8, workers, 512),
                    |mut server| run(&mut server, 8, 20_000, 1_000),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();

    // Single-request path: synchronous submit + drain round trip.
    let mut group = c.benchmark_group("E15_sync_path");
    group.sample_size(10);
    group.bench_function("submit_drain", |b| {
        let mut server = service(1, 1, 64);
        b.iter(|| {
            server
                .submit(0, Request::QueryIncident { rule: None })
                .expect("queue has room");
            server.drain(&ServerMetrics::disabled(), &ServerTracing::disabled())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_server
}
criterion_main!(benches);
