//! E10 — the end-to-end pipeline: automated VeriDevOps configuration vs
//! the manual baseline (no gates, audit-only detection).
//!
//! Regenerates: exposure, detection latency, and shipped-vulnerability
//! counts per configuration — the headline comparison of the paper's
//! thesis — plus the cost of running the full loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use vdo_pipeline::{run, PipelineConfig};

fn configs(seed: u64) -> Vec<(&'static str, PipelineConfig)> {
    let base = PipelineConfig {
        commits: 60,
        ops_duration: 2_000,
        seed,
        ..PipelineConfig::default()
    };
    vec![
        ("automated (gates+monitor)", base),
        (
            "gates only",
            PipelineConfig {
                monitor_period: None,
                ..base
            },
        ),
        (
            "monitor only",
            PipelineConfig {
                requirements_gate: false,
                compliance_gate: false,
                test_gate: false,
                analysis_gate: false,
                ..base
            },
        ),
        (
            "manual baseline",
            PipelineConfig {
                requirements_gate: false,
                compliance_gate: false,
                test_gate: false,
                analysis_gate: false,
                monitor_period: None,
                ..base
            },
        ),
    ]
}

fn print_comparison_table() {
    println!("\n[E10] automated vs manual (mean of seeds 1..6)");
    println!(
        "{:<28} {:>9} {:>9} {:>10} {:>12} {:>10}",
        "CONFIGURATION", "REJECTED", "SHIPPED", "INCIDENTS", "MEAN LATENCY", "EXPOSURE"
    );
    for (name, _) in configs(0) {
        let mut rejected = 0.0;
        let mut shipped = 0.0;
        let mut incidents = 0.0;
        let mut latency = 0.0;
        let mut exposure = 0.0;
        let seeds = [1u64, 2, 3, 4, 5];
        for &seed in &seeds {
            let cfg = configs(seed)
                .into_iter()
                .find(|(n, _)| *n == name)
                .expect("config exists")
                .1;
            let r = run(&cfg);
            rejected += r.rejected_total() as f64;
            shipped += r.vulnerabilities_deployed as f64;
            incidents += r.ops.incidents.len() as f64;
            latency += r.ops.mean_detection_latency();
            exposure += r.ops.exposure();
        }
        let n = seeds.len() as f64;
        println!(
            "{:<28} {:>9.1} {:>9.1} {:>10.1} {:>12.1} {:>9.2}%",
            name,
            rejected / n,
            shipped / n,
            incidents / n,
            latency / n,
            100.0 * exposure / n
        );
    }
}

fn bench_pipeline(c: &mut Criterion) {
    print_comparison_table();

    let mut group = c.benchmark_group("E10_full_loop");
    group.sample_size(10);
    for (name, cfg) in configs(7) {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| run(cfg))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_pipeline
}
criterion_main!(benches);
