//! E7 — CTL model-checking cost vs Kripke-structure size.
//!
//! Regenerates: fixpoint-labelling scaling for the three property shapes
//! PROPAS emits most (safety `AG p`, reachability `EF q`, response
//! `AG (q -> AF p)`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use vdo_bench::workloads;
use vdo_specpat::{CtlFormula, ModelChecker};

fn properties() -> Vec<(&'static str, CtlFormula)> {
    vec![
        ("AG_p", CtlFormula::ag(CtlFormula::atom("p"))),
        ("EF_q", CtlFormula::ef(CtlFormula::atom("q"))),
        (
            "AG_q_implies_AF_p",
            CtlFormula::ag(CtlFormula::implies(
                CtlFormula::atom("q"),
                CtlFormula::af(CtlFormula::atom("p")),
            )),
        ),
    ]
}

fn print_verdict_table() {
    println!("\n[E7] CTL verdicts on the ring workload (sanity of shapes)");
    let model = workloads::ring_kripke(1_000);
    let mc = ModelChecker::new(&model);
    for (name, f) in properties() {
        println!(
            "  {:<20} {}",
            name,
            if mc.holds(&f) { "HOLDS" } else { "violated" }
        );
    }
}

fn bench_ctl(c: &mut Criterion) {
    print_verdict_table();

    for (name, formula) in properties() {
        let mut group = c.benchmark_group(format!("E7_ctl_{name}"));
        for n in [100usize, 1_000, 10_000] {
            let model = workloads::ring_kripke(n);
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::from_parameter(n), &model, |b, model| {
                let mc = ModelChecker::new(model);
                b.iter(|| mc.holds(&formula))
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_ctl
}
criterion_main!(benches);
