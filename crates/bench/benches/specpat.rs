//! E5 / E6 — specification patterns: formula-generation coverage/cost
//! and observer-automaton trace checking vs trace length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use vdo_bench::workloads;
use vdo_specpat::pattern::full_matrix;
use vdo_specpat::{ObserverAutomaton, PatternKind, Scope, SpecPattern};

fn print_matrix_table() {
    println!("\n[E5] scope x pattern matrix coverage");
    let matrix = full_matrix();
    let ctl = matrix.iter().filter(|p| p.to_ctl().is_ok()).count();
    let uppaal = matrix.iter().filter(|p| p.to_uppaal().is_ok()).count();
    let observers = matrix
        .iter()
        .filter(|p| ObserverAutomaton::for_pattern(p).is_some())
        .count();
    let mean_size: f64 =
        matrix.iter().map(|p| p.to_ltl().size() as f64).sum::<f64>() / matrix.len() as f64;
    println!("  combinations: {}", matrix.len());
    println!(
        "  LTL mappings: {} (mean formula size {:.1} nodes)",
        matrix.len(),
        mean_size
    );
    println!("  CTL mappings: {ctl}");
    println!("  UPPAAL queries: {uppaal}");
    println!("  observer automata: {observers}");
}

fn bench_specpat(c: &mut Criterion) {
    print_matrix_table();

    // E5: formula generation cost over the full matrix.
    c.bench_function("E5_generate_full_matrix_ltl", |b| {
        b.iter(|| {
            full_matrix()
                .iter()
                .map(|p| p.to_ltl().size())
                .sum::<usize>()
        })
    });

    // E6: observer trace checking vs trace length.
    let pattern = SpecPattern::new(Scope::Globally, PatternKind::bounded_response("p", "s", 10));
    let observer = ObserverAutomaton::for_pattern(&pattern).expect("observer");
    let mut group = c.benchmark_group("E6_observer_trace_check");
    for len in [1_000usize, 10_000, 100_000] {
        let trace = workloads::response_observations(len);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &trace, |b, trace| {
            b.iter(|| observer.run(trace))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_specpat
}
criterion_main!(benches);
