//! E11 — event-driven SOC engine vs the polling `MonitoringLoop` idea.
//!
//! Regenerates: detection latency and check cost of the `vdo-soc`
//! sharded-bus engine against the polling baseline
//! (`OperationsPhase` with `MonitorEngine::Polling`, the host-scale
//! `MonitoringLoop`) across fleet sizes 1–1,000, and worker-pool
//! scaling 1–16 under simulated per-batch I/O latency. On a single
//! core the worker sweep shows scheduling overhead, not speedup —
//! the `io_latency` column is where extra workers pay off.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use vdo_core::RemediationPlanner;
use vdo_host::UnixHost;
use vdo_pipeline::{MonitorEngine, OperationsPhase, OpsConfig};
use vdo_soc::{SocConfig, SocEngine};
use vdo_stigs::ubuntu;

fn compliant_fleet(n: usize) -> Vec<UnixHost> {
    let catalog = ubuntu::catalog();
    let planner = RemediationPlanner::default();
    (0..n)
        .map(|_| {
            let mut h = UnixHost::baseline_ubuntu_1804();
            planner.run(&catalog, &mut h);
            h
        })
        .collect()
}

/// Ticks per run, scaled down for big fleets so the table stays fast.
fn ticks_for(hosts: usize) -> u64 {
    match hosts {
        0..=10 => 1_000,
        11..=100 => 500,
        _ => 100,
    }
}

fn print_fleet_table() {
    println!("\n[E11] event-driven SOC vs polling monitor (drift 2%/tick, polling period 10)");
    println!(
        "{:>6} {:>14} {:>10} {:>13} {:>10} {:>10} {:>12}",
        "HOSTS", "ENGINE", "INCIDENTS", "MEAN LATENCY", "EXPOSURE", "CHECKS", "EVENTS/SEC"
    );
    let catalog = ubuntu::catalog();
    for hosts in [1usize, 10, 100, 1_000] {
        let duration = ticks_for(hosts);

        // Event-driven: one engine over the whole fleet.
        let mut fleet = compliant_fleet(hosts);
        let engine = SocEngine::new(
            &catalog,
            SocConfig {
                duration,
                drift_rate: 0.02,
                workers: 4,
                shards: 16,
                seed: 11,
                ..SocConfig::default()
            },
        )
        .expect("valid config");
        let report = engine.run(&mut fleet);
        println!(
            "{:>6} {:>14} {:>10} {:>13.1} {:>9.2}% {:>10} {:>12.0}",
            hosts,
            "event-driven",
            report.incidents.len(),
            report.mean_detection_latency(),
            100.0 * report.exposure(hosts),
            report.metrics.checks_run,
            report.metrics.events_per_sec,
        );

        // Polling baseline: the MonitoringLoop idea per host.
        let phase = OperationsPhase::new(&catalog);
        let mut incidents = 0usize;
        let mut latency_sum = 0.0;
        let mut noncompliant = 0u64;
        let mut checks = 0u64;
        for (i, host) in compliant_fleet(hosts).iter_mut().enumerate() {
            let r = phase.run(
                host,
                &OpsConfig {
                    engine: MonitorEngine::Polling,
                    duration,
                    drift_rate: 0.02,
                    monitor_period: Some(10),
                    audit_period: 0,
                    seed: 11u64.wrapping_add(i as u64),
                },
            );
            incidents += r.incidents.len();
            latency_sum += r.mean_detection_latency() * r.incidents.len() as f64;
            noncompliant += r.noncompliant_ticks;
            checks += r.checks;
        }
        println!(
            "{:>6} {:>14} {:>10} {:>13.1} {:>9.2}% {:>10} {:>12}",
            hosts,
            "polling-10",
            incidents,
            latency_sum / incidents.max(1) as f64,
            100.0 * noncompliant as f64 / (duration as f64 * hosts as f64),
            checks * catalog.len() as u64,
            "-",
        );
    }
}

fn print_worker_table() {
    println!("\n[E11] worker-pool scaling (1,000 hosts, 100 ticks, 200us simulated I/O per batch)");
    println!(
        "{:>8} {:>10} {:>10} {:>8} {:>12}",
        "WORKERS", "WALL MS", "INCIDENTS", "STEALS", "EVENTS/SEC"
    );
    let catalog = ubuntu::catalog();
    let mut reference: Option<String> = None;
    for workers in [1usize, 2, 4, 8, 16] {
        let mut fleet = compliant_fleet(1_000);
        let engine = SocEngine::new(
            &catalog,
            SocConfig {
                duration: 100,
                drift_rate: 0.02,
                workers,
                shards: 32,
                seed: 11,
                io_latency: Duration::from_micros(200),
                ..SocConfig::default()
            },
        )
        .expect("valid config");
        let start = Instant::now();
        let report = engine.run(&mut fleet);
        let wall = start.elapsed();
        // The incident log must not depend on the worker count.
        let log = report.incident_log();
        match &reference {
            None => reference = Some(log),
            Some(expected) => assert_eq!(*expected, log, "incident log varies with workers"),
        }
        println!(
            "{:>8} {:>10.1} {:>10} {:>8} {:>12.0}",
            workers,
            wall.as_secs_f64() * 1e3,
            report.incidents.len(),
            report.metrics.steals,
            report.metrics.events_per_sec,
        );
    }
}

fn bench_soc(c: &mut Criterion) {
    print_fleet_table();
    print_worker_table();

    let catalog = ubuntu::catalog();

    let mut group = c.benchmark_group("E11_fleet_size");
    group.sample_size(10);
    for hosts in [1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(hosts), &hosts, |b, &hosts| {
            b.iter_batched(
                || compliant_fleet(hosts),
                |mut fleet| {
                    let engine = SocEngine::new(
                        &catalog,
                        SocConfig {
                            duration: 100,
                            drift_rate: 0.02,
                            workers: 4,
                            shards: 16,
                            seed: 11,
                            ..SocConfig::default()
                        },
                    )
                    .expect("valid config");
                    engine.run(&mut fleet)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("E11_workers");
    group.sample_size(10);
    for workers in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter_batched(
                    || compliant_fleet(64),
                    |mut fleet| {
                        let engine = SocEngine::new(
                            &catalog,
                            SocConfig {
                                duration: 100,
                                drift_rate: 0.02,
                                workers,
                                shards: 16,
                                seed: 11,
                                ..SocConfig::default()
                            },
                        )
                        .expect("valid config");
                        engine.run(&mut fleet)
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_soc
}
criterion_main!(benches);
