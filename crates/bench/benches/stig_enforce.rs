//! E3 — STIG check/enforce convergence over host fleets.
//!
//! Regenerates: compliance sweep cost vs fleet size and drift rate, plus
//! the check-only baseline (assessment without remediation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use vdo_core::{PlannerConfig, PlannerOutcome, RemediationPlanner};
use vdo_host::{Fleet, FleetConfig};
use vdo_stigs::ubuntu;

fn fleet_config(size: usize, drift_probability: f64, events: usize, seed: u64) -> FleetConfig {
    FleetConfig::builder()
        .size(size)
        .drift_probability(drift_probability)
        .drift_events_per_host(events)
        .seed(seed)
        .build()
        .expect("valid fleet config")
}

fn print_convergence_table() {
    println!("\n[E3] fleet compliance: remediations and convergence vs drift rate (20 hosts)");
    println!(
        "{:>10} {:>9} {:>13} {:>11}",
        "DRIFT", "DRIFTED", "REMEDIATIONS", "ALL GREEN"
    );
    let catalog = ubuntu::catalog();
    let planner = RemediationPlanner::new(PlannerConfig::default());
    for drift in [0.0, 0.25, 0.5, 1.0] {
        let mut fleet = Fleet::generate(&fleet_config(20, drift, 4, 3));
        let mut remediations = 0;
        let mut compliant = 0;
        for host in fleet.hosts_mut() {
            let host = host.into_unix_mut().expect("unix fleet");
            let run = planner.run(&catalog, host);
            remediations += run.report.summary().remediated;
            if run.outcome == PlannerOutcome::Compliant {
                compliant += 1;
            }
        }
        println!(
            "{:>10.2} {:>9} {:>13} {:>10}/20",
            drift,
            fleet.drifted_count(),
            remediations,
            compliant
        );
    }
}

fn bench_fleet(c: &mut Criterion) {
    print_convergence_table();

    let catalog = ubuntu::catalog();
    let planner = RemediationPlanner::new(PlannerConfig::default());

    let mut group = c.benchmark_group("E3_check_only");
    for size in [10usize, 100, 500] {
        let fleet = Fleet::generate(&fleet_config(size, 0.5, 3, 1));
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &fleet, |b, fleet| {
            b.iter(|| {
                fleet
                    .hosts()
                    .filter_map(|h| h.as_unix())
                    .map(|h| {
                        catalog
                            .check_all(h)
                            .iter()
                            .filter(|(_, v)| v.is_fail())
                            .count()
                    })
                    .sum::<usize>()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("E3_check_enforce");
    for size in [10usize, 100, 500] {
        let fleet = Fleet::generate(&fleet_config(size, 0.5, 3, 1));
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &fleet, |b, fleet| {
            b.iter_batched(
                || fleet.clone(),
                |mut fleet| {
                    for host in fleet.hosts_mut() {
                        let host = host.into_unix_mut().expect("unix fleet");
                        planner.run(&catalog, host);
                    }
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_fleet
}
criterion_main!(benches);
