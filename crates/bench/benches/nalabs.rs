//! E1 / E2 / A1 — NALABS: detection quality, throughput, and the
//! dictionary-size ablation.
//!
//! Regenerates:
//! * E1 (precision/recall vs planted smell rate) — printed once at bench
//!   start, since quality is deterministic;
//! * E2 (analysis throughput vs corpus size) — the Criterion groups;
//! * A1 (recall vs dictionary fraction) — printed table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use vdo_bench::workloads;
use vdo_corpus::requirements::{generate, CorpusConfig};
use vdo_nalabs::dictionaries;
use vdo_nalabs::metrics::{DictionaryMetric, Readability, Size};
use vdo_nalabs::{Analyzer, Metric, SmellThresholds};

fn print_e1_table() {
    println!("\n[E1] NALABS detection quality vs planted smell rate (n = 1000)");
    println!(
        "{:>10} {:>10} {:>8} {:>6}",
        "RATE", "PRECISION", "RECALL", "F1"
    );
    for rate in [0.05, 0.1, 0.2, 0.3] {
        let corpus = generate(&CorpusConfig {
            size: 1_000,
            smell_rate: rate,
            seed: 7,
        });
        let report = Analyzer::with_default_metrics().analyze_corpus(&corpus.documents);
        let pr = report.score_against(&|id| corpus.is_smelly(id));
        println!(
            "{:>10.2} {:>10.3} {:>8.3} {:>6.3}",
            rate,
            pr.precision(),
            pr.recall(),
            pr.f1()
        );
    }
}

fn shrunk_analyzer(fraction: f64) -> Analyzer {
    let metrics: Vec<Box<dyn Metric>> = vec![
        Box::new(DictionaryMetric::new(
            "conjunctions",
            dictionaries::conjunctions().shrunk(fraction),
        )),
        Box::new(DictionaryMetric::new(
            "continuances",
            dictionaries::continuances().shrunk(fraction),
        )),
        Box::new(DictionaryMetric::new(
            "incompleteness",
            dictionaries::incompleteness().shrunk(fraction),
        )),
        Box::new(DictionaryMetric::new(
            "optionality",
            dictionaries::optionality().shrunk(fraction),
        )),
        Box::new(DictionaryMetric::new(
            "references",
            dictionaries::references().shrunk(fraction),
        )),
        Box::new(DictionaryMetric::new(
            "subjectivity",
            dictionaries::subjectivity().shrunk(fraction),
        )),
        Box::new(DictionaryMetric::new(
            "vagueness",
            dictionaries::vagueness().shrunk(fraction),
        )),
        Box::new(DictionaryMetric::new(
            "weakness",
            dictionaries::weakness().shrunk(fraction),
        )),
        Box::new(Readability),
        Box::new(Size),
    ];
    Analyzer::new(metrics, SmellThresholds::default())
}

fn print_a1_table() {
    println!("\n[A1] ablation: recall vs dictionary fraction (n = 1000, rate 0.25)");
    println!("  (imperatives metric excluded: the ablation isolates dictionary smells)");
    println!("{:>10} {:>8} {:>10}", "FRACTION", "RECALL", "PRECISION");
    let corpus = workloads::corpus(1_000);
    for fraction in [1.0, 0.75, 0.5, 0.25, 0.1] {
        let analyzer = shrunk_analyzer(fraction);
        let report = analyzer.analyze_corpus(&corpus.documents);
        let pr = report.score_against(&|id| corpus.is_smelly(id));
        println!(
            "{:>10.2} {:>8.3} {:>10.3}",
            fraction,
            pr.recall(),
            pr.precision()
        );
    }
}

fn bench_throughput(c: &mut Criterion) {
    print_e1_table();
    print_a1_table();

    let mut group = c.benchmark_group("E2_nalabs_throughput");
    for size in [100usize, 1_000, 10_000] {
        let corpus = workloads::corpus(size);
        let analyzer = Analyzer::with_default_metrics();
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &corpus, |b, corpus| {
            b.iter(|| analyzer.analyze_corpus(&corpus.documents))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_throughput
}
criterion_main!(benches);
