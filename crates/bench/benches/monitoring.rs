//! E4 / A2 — runtime-monitor detection latency vs polling period.
//!
//! Regenerates: the latency/cost trade-off of `MonitoringLoop`
//! (detection latency grows with the polling period while the number of
//! compliance checks — the CPU cost proxy — shrinks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use vdo_bench::workloads;
use vdo_core::CheckStatus;
use vdo_corpus::traces::ViolationTrace;
use vdo_temporal::{GlobalUniversality, MonitorOutcome, MonitoringLoop};

fn print_latency_table() {
    println!("\n[E4/A2] detection latency and polling cost vs period (trace 10k ticks)");
    println!(
        "{:>8} {:>12} {:>10} {:>8}",
        "PERIOD", "MEAN LATENCY", "MAX LATENCY", "POLLS"
    );
    let pattern = GlobalUniversality::new(|up: &bool| CheckStatus::from(*up));
    for period in [1u64, 5, 10, 50, 100, 500] {
        let mut latencies = Vec::new();
        let mut polls = 0;
        // Average over violations planted at 32 different positions.
        for k in 0..32u64 {
            let w = ViolationTrace::at(10_000, 313 * (k + 1) % 9_000 + 500);
            let report = MonitoringLoop::new(period)
                .expect("nonzero period")
                .run(&pattern, &w.trace);
            polls += report.polls;
            if let MonitorOutcome::ViolationDetected(_) = report.outcome {
                latencies.push(report.detection_latency(w.violation_tick).unwrap() as f64);
            }
        }
        let mean = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
        let max = latencies.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:>8} {:>12.1} {:>10.0} {:>8}",
            period,
            mean,
            max,
            polls / 32
        );
    }
}

fn bench_monitoring(c: &mut Criterion) {
    print_latency_table();

    let mut group = c.benchmark_group("E4_monitor_run");
    let workload = workloads::violation_trace(100_000);
    let pattern = GlobalUniversality::new(|up: &bool| CheckStatus::from(*up));
    for period in [1u64, 10, 100] {
        group.bench_with_input(
            BenchmarkId::from_parameter(period),
            &period,
            |b, &period| {
                let looper = MonitoringLoop::new(period).expect("nonzero period");
                b.iter(|| looper.run(&pattern, &workload.trace))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_monitoring
}
criterion_main!(benches);
