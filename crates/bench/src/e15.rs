//! E15: the multi-tenant service front end under open-loop load.
//!
//! One invocation drives millions of synthetic requests from the
//! seeded [`LoadGen`] through admission control, the weighted DRR
//! scheduler and the worker pool, and reports:
//!
//! * end-to-end latency (p50/p99/p999, measured in dispatch rounds by
//!   the deterministic `queue_latency` histogram) plus wall-clock
//!   per-request service time on the sub-millisecond `nanos` preset;
//! * throughput and admission-rejection counts, from [`vdo_obs`]
//!   counters, with every response resolvable to its tenant and
//!   originating request through the [`vdo_trace`] journal;
//! * scaling sweeps over tenant count and queue depth (the latter
//!   deliberately overloaded so backpressure is visible);
//! * the determinism check: per-tenant verdict logs byte-identical
//!   across worker counts for equal seeds.
//!
//! The `smoke` subsection is the CI latency gate: a small stable-load
//! configuration whose deterministic p99 must stay within
//! [`SMOKE_BUDGET_TICKS`] dispatch rounds.

use std::time::Instant;

use serde::json::Value;
use serde::Serialize;
use vdo_server::{
    LoadConfig, LoadGen, MixWeights, Server, ServerConfig, ServerMetrics, ServerTracing,
    ServiceReport, TenantConfig,
};

/// The documented latency budget for the smoke configuration: p99
/// end-to-end latency, in dispatch rounds, that CI asserts against.
/// The smoke load runs at 80% of round capacity with periodic 2×
/// bursts, so the queue must drain each backlog within a handful of
/// rounds; 32 leaves room for scheduler-unfriendly mixes without ever
/// tolerating an unstable queue.
pub const SMOKE_BUDGET_TICKS: u64 = 32;

/// Knobs that scale E15 between the full experiment and a fast CI or
/// test shape. All runs keep the same structure — only request counts
/// change.
#[derive(Debug, Clone)]
pub struct E15Scale {
    /// Requests in the headline 8-tenant run.
    pub main_total: u64,
    /// Requests per configuration in the tenant sweep.
    pub sweep_total: u64,
    /// Requests per configuration in the queue-depth (overload) sweep.
    pub overload_total: u64,
    /// Requests per worker count in the determinism check.
    pub determinism_total: u64,
    /// Requests in the latency-budget smoke run.
    pub smoke_total: u64,
}

impl E15Scale {
    /// The full experiment: one million requests in the headline run.
    #[must_use]
    pub fn full() -> Self {
        E15Scale {
            main_total: 1_000_000,
            sweep_total: 100_000,
            overload_total: 50_000,
            determinism_total: 20_000,
            smoke_total: 50_000,
        }
    }

    /// A reduced shape for tests: the same sections at a fraction of
    /// the request counts. The overload sweep keeps enough rounds that
    /// the 2× surplus still overflows the deepest queue configuration
    /// (8 × 1024 slots needs >8192 queued beyond service capacity).
    #[must_use]
    pub fn tiny() -> Self {
        E15Scale {
            main_total: 2_000,
            sweep_total: 500,
            overload_total: 25_000,
            determinism_total: 500,
            smoke_total: 1_000,
        }
    }
}

/// Registers `n` tenants with mildly heterogeneous weights and seeds.
fn tenant_fleet(server: &mut Server, n: usize, queue_capacity: usize, seed: u64) -> Vec<u64> {
    let mut weights = Vec::with_capacity(n);
    for t in 0..n {
        let weight = 1 + (t as u64 % 3);
        server.register_tenant(
            &TenantConfig::new(format!("tenant-{t}"))
                .with_seed(seed.wrapping_add(t as u64))
                .with_weight(weight)
                .with_queue_capacity(queue_capacity)
                .with_drift_rate(0.2),
        );
        weights.push(weight);
    }
    weights
}

/// One measured service run; returns the report, its metrics snapshot
/// source, and the wall time.
struct Measured {
    report: ServiceReport,
    metrics: ServerMetrics,
    journal_events: u64,
    wall_secs: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_service(
    tenants: usize,
    total: u64,
    base_rate: u64,
    capacity_per_round: usize,
    queue_capacity: usize,
    workers: usize,
    burst: (u64, u64),
    seed: u64,
    traced: bool,
) -> Measured {
    let mut server = Server::new(ServerConfig {
        capacity_per_round,
        quantum: 4,
        workers,
        retain_responses: false,
    });
    let weights = tenant_fleet(&mut server, tenants, queue_capacity, seed);
    let mut gen = LoadGen::new(LoadConfig {
        total_requests: total,
        base_rate,
        burst_period: burst.0,
        burst_size: burst.1,
        tenant_weights: weights,
        mix: MixWeights::default(),
        seed,
    });
    let metrics = ServerMetrics::new();
    let tracing = if traced {
        ServerTracing::new(vdo_trace::Journal::new(), seed)
    } else {
        ServerTracing::disabled()
    };
    let t0 = Instant::now();
    let report = server.run_load(&mut gen, &metrics, &tracing);
    let wall_secs = t0.elapsed().as_secs_f64();
    let journal_events = if traced {
        let snap = tracing.journal.snapshot();
        (snap.events.len() as u64) + snap.dropped()
    } else {
        0
    };
    Measured {
        report,
        metrics,
        journal_events,
        wall_secs,
    }
}

fn quantile_ticks(m: &Measured, q: f64) -> f64 {
    m.metrics
        .queue_latency
        .snapshot()
        .quantile(q)
        .unwrap_or(0.0)
}

/// Runs the full E15 experiment at `scale`, printing the human tables
/// and returning the JSON section `exp_report --json` embeds.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn section(scale: &E15Scale) -> Value {
    // -- Headline run: 8 tenants, open-loop with bursts, traced. --------
    crate::say!(
        "\n== E15: multi-tenant service front end ({} requests, 8 tenants) ==",
        scale.main_total
    );
    let main = run_service(
        8,
        scale.main_total,
        2_000,
        2_400,
        1_024,
        4,
        (50, 4_000),
        42,
        true,
    );
    let snap = main.metrics.snapshot(main.wall_secs);
    let svc = &snap.service_nanos;
    crate::say!(
        "   admitted {} / rejected {} / completed {} in {:.2}s ({:.0} req/s)",
        snap.admitted,
        snap.rejected,
        snap.completed,
        main.wall_secs,
        snap.requests_per_sec
    );
    crate::say!(
        "   latency (rounds): p50 {:.1}  p99 {:.1}  p999 {:.1}  max {}",
        quantile_ticks(&main, 0.50),
        quantile_ticks(&main, 0.99),
        quantile_ticks(&main, 0.999),
        snap.queue_latency.max
    );
    crate::say!(
        "   service time:     p50 {:.1}us p99 {:.1}us (wall-clock, run-local)",
        svc.quantile(0.50).unwrap_or(0.0) / 1e3,
        svc.quantile(0.99).unwrap_or(0.0) / 1e3
    );
    crate::say!(
        "   journal: {} events (admit/response spans resolve each response to its request)",
        main.journal_events
    );
    assert_eq!(
        snap.admitted + snap.rejected,
        scale.main_total,
        "every generated request is admitted or rejected"
    );
    assert_eq!(
        snap.completed, snap.admitted,
        "every admitted request is served"
    );
    let main_json = serde::json::object([
        ("tenants", Value::UInt(8)),
        ("total_requests", Value::UInt(scale.main_total)),
        ("metrics", snap.to_value()),
        ("p50_ticks", Value::Float(quantile_ticks(&main, 0.50))),
        ("p99_ticks", Value::Float(quantile_ticks(&main, 0.99))),
        ("p999_ticks", Value::Float(quantile_ticks(&main, 0.999))),
        ("journal_events", Value::UInt(main.journal_events)),
        ("wall_secs", Value::Float(main.wall_secs)),
    ]);

    // -- Tenant sweep: same aggregate load spread over more tenants. ----
    crate::say!("\n   tenant sweep ({} requests each):", scale.sweep_total);
    crate::say!(
        "{:>10} {:>10} {:>12} {:>10} {:>10}",
        "TENANTS",
        "COMPLETED",
        "THROUGHPUT",
        "P99",
        "REJECTED"
    );
    let mut tenant_rows = Vec::new();
    for tenants in [2usize, 4, 8, 16] {
        // Queues hold a full round of arrivals even when few tenants
        // split the rate, so this sweep isolates throughput from
        // shedding (the queue-depth sweep below covers overload).
        let m = run_service(
            tenants,
            scale.sweep_total,
            1_000,
            1_200,
            1_024,
            4,
            (0, 0),
            7,
            false,
        );
        let s = m.metrics.snapshot(m.wall_secs);
        crate::say!(
            "{tenants:>10} {:>10} {:>10.0}/s {:>10.1} {:>10}",
            s.completed,
            s.requests_per_sec,
            quantile_ticks(&m, 0.99),
            s.rejected
        );
        tenant_rows.push(serde::json::object([
            ("tenants", Value::UInt(tenants as u64)),
            ("completed", Value::UInt(s.completed)),
            ("rejected", Value::UInt(s.rejected)),
            ("throughput_rps", Value::Float(s.requests_per_sec)),
            ("p99_ticks", Value::Float(quantile_ticks(&m, 0.99))),
        ]));
    }

    // -- Queue-depth sweep: deliberately overloaded (arrival rate 2× ----
    // round capacity), so shallow queues shed load and deep queues
    // trade rejections for latency.
    crate::say!(
        "\n   queue-depth sweep under 2x overload ({} requests each):",
        scale.overload_total
    );
    crate::say!(
        "{:>10} {:>10} {:>10} {:>10} {:>12}",
        "CAPACITY",
        "ADMITTED",
        "REJECTED",
        "P99",
        "MAX DEPTH"
    );
    let mut depth_rows = Vec::new();
    for queue_capacity in [64usize, 256, 1_024] {
        let m = run_service(
            8,
            scale.overload_total,
            1_000,
            500,
            queue_capacity,
            4,
            (0, 0),
            13,
            false,
        );
        let s = m.metrics.snapshot(m.wall_secs);
        crate::say!(
            "{queue_capacity:>10} {:>10} {:>10} {:>10.1} {:>12}",
            s.admitted,
            s.rejected,
            quantile_ticks(&m, 0.99),
            s.max_queue_depth
        );
        assert!(
            s.rejected > 0,
            "a 2x-overloaded run must exercise admission control"
        );
        depth_rows.push(serde::json::object([
            ("queue_capacity", Value::UInt(queue_capacity as u64)),
            ("admitted", Value::UInt(s.admitted)),
            ("rejected", Value::UInt(s.rejected)),
            ("p99_ticks", Value::Float(quantile_ticks(&m, 0.99))),
            ("max_queue_depth", Value::UInt(s.max_queue_depth)),
        ]));
    }

    // -- Determinism: verdict logs byte-identical across workers. -------
    crate::say!(
        "\n   determinism ({} requests, 8 tenants, equal seeds):",
        scale.determinism_total
    );
    crate::say!(
        "{:>10} {:>14} {:>10}",
        "WORKERS",
        "VERDICT BYTES",
        "IDENTICAL"
    );
    let mut reference: Option<Vec<String>> = None;
    let mut determinism_rows = Vec::new();
    for workers in [1usize, 2, 4] {
        let m = run_service(
            8,
            scale.determinism_total,
            500,
            600,
            256,
            workers,
            (25, 800),
            99,
            false,
        );
        let bytes: usize = m.report.verdict_logs.iter().map(String::len).sum();
        let identical = match &reference {
            None => {
                reference = Some(m.report.verdict_logs.clone());
                "baseline"
            }
            Some(expected) if *expected == m.report.verdict_logs => "yes",
            Some(_) => "NO",
        };
        assert_ne!(
            identical, "NO",
            "E15 regression: verdict logs diverged at {workers} workers"
        );
        crate::say!("{workers:>10} {bytes:>14} {identical:>10}");
        determinism_rows.push(serde::json::object([
            ("workers", Value::UInt(workers as u64)),
            ("verdict_bytes", Value::UInt(bytes as u64)),
            ("identical", Value::String(identical.to_string())),
        ]));
    }

    // -- Smoke: the CI latency budget on a stable 8-tenant load. --------
    let smoke = run_service(
        8,
        scale.smoke_total,
        400,
        500,
        2_048,
        4,
        (20, 800),
        3,
        false,
    );
    let p99 = quantile_ticks(&smoke, 0.99);
    let within = p99 <= SMOKE_BUDGET_TICKS as f64;
    crate::say!(
        "\n   smoke: p99 {:.1} rounds vs budget {} -> {}",
        p99,
        SMOKE_BUDGET_TICKS,
        if within {
            "within budget"
        } else {
            "OVER BUDGET"
        }
    );
    assert!(
        within,
        "E15 regression: smoke p99 {p99:.1} exceeds the {SMOKE_BUDGET_TICKS}-round budget"
    );
    let smoke_json = serde::json::object([
        ("tenants", Value::UInt(8)),
        ("total_requests", Value::UInt(scale.smoke_total)),
        ("p99_ticks", Value::Float(p99)),
        ("budget_ticks", Value::UInt(SMOKE_BUDGET_TICKS)),
        ("within_budget", Value::Bool(within)),
    ]);

    serde::json::object([
        ("main", main_json),
        ("tenant_sweep", Value::Array(tenant_rows)),
        ("queue_depth_sweep", Value::Array(depth_rows)),
        ("determinism", Value::Array(determinism_rows)),
        ("smoke", smoke_json),
    ])
}
