//! # vdo-bench — shared helpers for the experiment/bench harness
//!
//! The Criterion benches under `benches/` regenerate every experiment in
//! `EXPERIMENTS.md`; this library hosts the workload construction shared
//! between them and the `exp_report` binary that prints the experiment
//! tables without Criterion's statistical machinery.

pub mod e15;
pub mod e16;
pub mod e17;
pub mod e18;
pub mod e19;
pub mod out;
pub mod workloads;
