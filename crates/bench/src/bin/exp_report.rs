//! Prints every experiment table from EXPERIMENTS.md in one fast pass
//! (shape results only — wall-clock measurements come from
//! `cargo bench --workspace`).
//!
//! Run with: `cargo run -p vdo-bench --bin exp_report --release`
//!
//! With `--json <path>` the same run additionally writes one JSON
//! document containing every experiment table plus the F1 closed-loop
//! observability snapshot (per-phase span timings, unified counters)
//! and the E12/E14 recorder- and journal-overhead measurements.
//!
//! With `--journal <path>` the run also replays the E14 traced fleet
//! workload and writes its event journal as JSON Lines — the artifact
//! CI uploads next to the JSON report.

use std::time::Instant;

use serde::json::Value;
use serde::Serialize;
use vdo_analyze::{AnalysisConfig, Analyzer as StaticAnalyzer};
use vdo_bench::say;
use vdo_bench::workloads;
use vdo_core::{CheckStatus, PlannerConfig, PlannerOutcome, RemediationPlanner};
use vdo_corpus::defects::{self, DefectConfig};
use vdo_corpus::requirements::{generate, CorpusConfig};
use vdo_corpus::traces::ViolationTrace;
use vdo_gwt::generate::{AllEdges, Generator, RandomWalk};
use vdo_host::{Fleet, FleetConfig};
use vdo_nalabs::Analyzer;
use vdo_pipeline::{run, run_observed, MonitorEngine, OperationsPhase, OpsConfig, PipelineConfig};
use vdo_soc::{RemediationConfig, SocConfig, SocEngine, SocMetrics, SocTracing};
use vdo_specpat::pattern::full_matrix;
use vdo_specpat::{CtlFormula, ModelChecker, ObserverAutomaton};
use vdo_stigs::ubuntu;
use vdo_tears::Session;
use vdo_temporal::{GlobalUniversality, MonitorOutcome, MonitoringLoop};

fn main() {
    let mut json_path: Option<String> = None;
    let mut journal_path: Option<String> = None;
    let mut only: Option<String> = None;
    let mut e16_full = false;
    let mut e17_full = false;
    let mut e18_full = false;
    let mut e19_full = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--e16-full" => e16_full = true,
            "--e17-full" => e17_full = true,
            "--e18-full" => e18_full = true,
            "--e19-full" => e19_full = true,
            "--json" => {
                json_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--json requires a path argument (or `-` for stdout)");
                    std::process::exit(2);
                }));
            }
            "--journal" => {
                journal_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--journal requires a path argument");
                    std::process::exit(2);
                }));
            }
            "--only" => {
                only = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--only requires a section name argument");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument: {other} \
                     (supported: --json <path|->, --journal <path>, --only <section>, \
                     --e16-full, --e17-full, --e18-full, --e19-full)"
                );
                std::process::exit(2);
            }
        }
    }

    // `--json -` puts the JSON document on stdout, so the human tables
    // move to stderr and stdout stays machine-parseable.
    let json_to_stdout = json_path.as_deref() == Some("-");
    vdo_bench::out::route_to_stderr(json_to_stdout);

    type Section = (&'static str, Box<dyn FnOnce() -> Value>);
    let all: Vec<Section> = vec![
        ("e1_nalabs_quality", Box::new(e1_nalabs_quality)),
        ("e2_nalabs_throughput", Box::new(e2_nalabs_throughput)),
        ("e3_fleet_convergence", Box::new(e3_fleet_convergence)),
        ("e4_monitor_latency", Box::new(e4_monitor_latency)),
        ("e5_matrix_coverage", Box::new(e5_matrix_coverage)),
        ("e6_observer_throughput", Box::new(e6_observer_throughput)),
        ("e7_ctl_scaling", Box::new(e7_ctl_scaling)),
        ("e8_gwt_coverage", Box::new(e8_gwt_coverage)),
        ("e9_tears_throughput", Box::new(e9_tears_throughput)),
        ("e10_pipeline_comparison", Box::new(e10_pipeline_comparison)),
        ("e11_soc_engine", Box::new(e11_soc_engine)),
        ("e12_obs_overhead", Box::new(e12_obs_overhead)),
        ("e13_analyze", Box::new(e13_analyze)),
        ("e14_trace", Box::new(e14_trace)),
        ("e15_server", Box::new(e15_server)),
        (
            "e16_fleet_scale",
            Box::new(move || e16_fleet_scale(e16_full)),
        ),
        (
            "e17_incremental_analysis",
            Box::new(move || e17_incremental_analysis(e17_full)),
        ),
        (
            "e18_journal_replay",
            Box::new(move || e18_journal_replay(e18_full)),
        ),
        (
            "e19_telemetry_plane",
            Box::new(move || e19_telemetry_plane(e19_full)),
        ),
        ("f1_closed_loop", Box::new(f1_closed_loop)),
        ("a1_dictionary_ablation", Box::new(a1_dictionary_ablation)),
    ];
    if let Some(name) = &only {
        if !all.iter().any(|(k, _)| k == name) {
            let known: Vec<&str> = all.iter().map(|(k, _)| *k).collect();
            eprintln!(
                "--only {name}: no such section (known: {})",
                known.join(", ")
            );
            std::process::exit(2);
        }
    }
    let sections: Vec<(&'static str, Value)> = all
        .into_iter()
        .filter(|(k, _)| only.as_deref().is_none_or(|o| *k == o))
        .map(|(k, f)| (k, f()))
        .collect();

    if let Some(path) = json_path {
        let doc = Value::Object(
            sections
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
        let rendered = serde::json::to_string_pretty(&doc);
        if json_to_stdout {
            println!("{rendered}");
        } else {
            std::fs::write(&path, rendered).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            say!("\nwrote JSON report to {path}");
        }
    }

    if let Some(path) = journal_path {
        let snapshot = traced_fleet_journal(4).snapshot();
        let dropped = snapshot.dropped();
        if dropped > 0 {
            eprintln!(
                "WARNING: the in-memory journal ring dropped {dropped} events (lossy tail) — \
                 the exported JSONL is incomplete; raise capacity_per_shard or attach a \
                 durable columnar sink (SocTracing::persistent)"
            );
        }
        let file = std::fs::File::create(&path).unwrap_or_else(|e| panic!("creating {path}: {e}"));
        vdo_trace::export::write_jsonl(file, &snapshot)
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        say!(
            "wrote JSONL journal to {path} ({} events, {dropped} dropped)",
            snapshot.events.len()
        );
    }
}

/// The E14 traced workload: the E12 fleet (64 hardened hosts, 200
/// ticks, 2% drift) run under the event journal. Shared by the
/// overhead table, the completeness check, and `--journal`.
fn traced_fleet_journal(workers: usize) -> vdo_trace::Journal {
    let catalog = ubuntu::catalog();
    let planner = RemediationPlanner::default();
    let mut fleet: Vec<vdo_host::UnixHost> = (0..64)
        .map(|_| {
            let mut h = vdo_host::UnixHost::baseline_ubuntu_1804();
            planner.run(&catalog, &mut h);
            h
        })
        .collect();
    let config = SocConfig {
        duration: 200,
        drift_rate: 0.02,
        workers,
        shards: 16,
        seed: 11,
        ..SocConfig::default()
    };
    let journal = vdo_trace::Journal::new();
    let engine = SocEngine::new(&catalog, config).expect("valid config");
    let tracing = SocTracing::new(journal.clone(), 11);
    let _ = engine.run_traced(&mut fleet, &SocMetrics::new(), &tracing);
    journal
}

fn e1_nalabs_quality() -> Value {
    say!("\n== E1: NALABS detection quality vs planted smell rate (n = 1000) ==");
    say!(
        "{:>8} {:>10} {:>8} {:>6}",
        "RATE",
        "PRECISION",
        "RECALL",
        "F1"
    );
    let mut rows = Vec::new();
    for rate in [0.05, 0.1, 0.2, 0.3] {
        let corpus = generate(&CorpusConfig {
            size: 1_000,
            smell_rate: rate,
            seed: 7,
        });
        let report = Analyzer::with_default_metrics().analyze_corpus(&corpus.documents);
        let pr = report.score_against(&|id| corpus.is_smelly(id));
        say!(
            "{rate:>8.2} {:>10.3} {:>8.3} {:>6.3}",
            pr.precision(),
            pr.recall(),
            pr.f1()
        );
        rows.push(serde::json::object([
            ("rate", Value::Float(rate)),
            ("precision", Value::Float(pr.precision())),
            ("recall", Value::Float(pr.recall())),
            ("f1", Value::Float(pr.f1())),
        ]));
    }
    Value::Array(rows)
}

fn e2_nalabs_throughput() -> Value {
    say!("\n== E2: NALABS throughput vs corpus size ==");
    say!("{:>8} {:>12} {:>14}", "SIZE", "ELAPSED", "DOCS/SEC");
    let analyzer = Analyzer::with_default_metrics();
    let mut rows = Vec::new();
    for size in [100usize, 1_000, 10_000] {
        let corpus = workloads::corpus(size);
        let t0 = Instant::now();
        let report = analyzer.analyze_corpus(&corpus.documents);
        let dt = t0.elapsed();
        assert_eq!(report.len(), size);
        let docs_per_sec = size as f64 / dt.as_secs_f64();
        say!("{size:>8} {:>12.2?} {docs_per_sec:>14.0}", dt);
        rows.push(serde::json::object([
            ("size", Value::UInt(size as u64)),
            ("elapsed_secs", Value::Float(dt.as_secs_f64())),
            ("docs_per_sec", Value::Float(docs_per_sec)),
        ]));
    }
    Value::Array(rows)
}

fn e3_fleet_convergence() -> Value {
    say!("\n== E3: STIG check/enforce over fleets (drift sweep, 20 hosts) ==");
    say!(
        "{:>8} {:>9} {:>13} {:>10} {:>12}",
        "DRIFT",
        "DRIFTED",
        "REMEDIATIONS",
        "COMPLIANT",
        "ELAPSED"
    );
    let catalog = ubuntu::catalog();
    let planner = RemediationPlanner::new(PlannerConfig::default());
    let mut rows = Vec::new();
    for drift in [0.0, 0.25, 0.5, 1.0] {
        let mut fleet = Fleet::generate(
            &FleetConfig::builder()
                .size(20)
                .drift_probability(drift)
                .drift_events_per_host(4)
                .seed(3)
                .build()
                .expect("valid fleet config"),
        );
        let t0 = Instant::now();
        let mut remediations = 0;
        let mut compliant = 0;
        for host in fleet.hosts_mut() {
            let host = host.into_unix_mut().expect("unix fleet");
            let run = planner.run(&catalog, host);
            remediations += run.report.summary().remediated;
            if run.outcome == PlannerOutcome::Compliant {
                compliant += 1;
            }
        }
        let dt = t0.elapsed();
        say!(
            "{drift:>8.2} {:>9} {remediations:>13} {compliant:>9}/20 {:>12.2?}",
            fleet.drifted_count(),
            dt
        );
        rows.push(serde::json::object([
            ("drift", Value::Float(drift)),
            ("drifted_hosts", Value::UInt(fleet.drifted_count() as u64)),
            ("remediations", Value::UInt(remediations as u64)),
            ("compliant_hosts", Value::UInt(compliant)),
            ("elapsed_secs", Value::Float(dt.as_secs_f64())),
        ]));
    }
    Value::Array(rows)
}

fn e4_monitor_latency() -> Value {
    say!("\n== E4/A2: monitor detection latency vs polling period (10k-tick traces) ==");
    say!(
        "{:>8} {:>13} {:>12} {:>9}",
        "PERIOD",
        "MEAN LATENCY",
        "MAX LATENCY",
        "POLLS"
    );
    let pattern = GlobalUniversality::new(|up: &bool| CheckStatus::from(*up));
    let mut rows = Vec::new();
    for period in [1u64, 5, 10, 50, 100, 500] {
        let mut latencies = Vec::new();
        let mut polls = 0;
        for k in 0..32u64 {
            let w = ViolationTrace::at(10_000, 313 * (k + 1) % 9_000 + 500);
            let report = MonitoringLoop::new(period)
                .expect("nonzero period")
                .run(&pattern, &w.trace);
            polls += report.polls;
            if let MonitorOutcome::ViolationDetected(_) = report.outcome {
                latencies.push(report.detection_latency(w.violation_tick).unwrap() as f64);
            }
        }
        let mean = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
        let max = latencies.iter().cloned().fold(0.0f64, f64::max);
        say!("{period:>8} {mean:>13.1} {max:>12.0} {:>9}", polls / 32);
        rows.push(serde::json::object([
            ("period", Value::UInt(period)),
            ("mean_latency", Value::Float(mean)),
            ("max_latency", Value::Float(max)),
            ("mean_polls", Value::UInt(polls / 32)),
        ]));
    }
    Value::Array(rows)
}

fn e5_matrix_coverage() -> Value {
    say!("\n== E5: scope x pattern matrix coverage ==");
    let matrix = full_matrix();
    let t0 = Instant::now();
    let total_nodes: usize = matrix.iter().map(|p| p.to_ltl().size()).sum();
    let dt = t0.elapsed();
    let ctl = matrix.iter().filter(|p| p.to_ctl().is_ok()).count();
    let uppaal = matrix.iter().filter(|p| p.to_uppaal().is_ok()).count();
    let observers = matrix
        .iter()
        .filter(|p| ObserverAutomaton::for_pattern(p).is_some())
        .count();
    say!("  combinations:      {}", matrix.len());
    say!(
        "  LTL mappings:      {} ({} AST nodes in {dt:.2?})",
        matrix.len(),
        total_nodes
    );
    say!("  CTL mappings:      {ctl}");
    say!("  UPPAAL queries:    {uppaal}");
    say!("  observer automata: {observers}");
    serde::json::object([
        ("combinations", Value::UInt(matrix.len() as u64)),
        ("ltl_mappings", Value::UInt(matrix.len() as u64)),
        ("ltl_ast_nodes", Value::UInt(total_nodes as u64)),
        ("ctl_mappings", Value::UInt(ctl as u64)),
        ("uppaal_queries", Value::UInt(uppaal as u64)),
        ("observer_automata", Value::UInt(observers as u64)),
    ])
}

fn e6_observer_throughput() -> Value {
    say!("\n== E6: observer trace checking vs trace length ==");
    say!("{:>10} {:>12} {:>14}", "TICKS", "ELAPSED", "TICKS/SEC");
    let pattern = vdo_specpat::SpecPattern::new(
        vdo_specpat::Scope::Globally,
        vdo_specpat::PatternKind::bounded_response("p", "s", 10),
    );
    let observer = ObserverAutomaton::for_pattern(&pattern).expect("observer");
    let mut rows = Vec::new();
    for len in [1_000usize, 10_000, 100_000, 1_000_000] {
        let trace = workloads::response_observations(len);
        let t0 = Instant::now();
        let outcome = observer.run(&trace);
        let dt = t0.elapsed();
        assert_ne!(
            outcome.prefix,
            CheckStatus::Fail,
            "workload satisfies the property"
        );
        let ticks_per_sec = len as f64 / dt.as_secs_f64();
        say!("{len:>10} {:>12.2?} {ticks_per_sec:>14.0}", dt);
        rows.push(serde::json::object([
            ("ticks", Value::UInt(len as u64)),
            ("elapsed_secs", Value::Float(dt.as_secs_f64())),
            ("ticks_per_sec", Value::Float(ticks_per_sec)),
        ]));
    }
    Value::Array(rows)
}

fn e7_ctl_scaling() -> Value {
    say!("\n== E7: CTL model checking vs Kripke size ==");
    say!(
        "{:>8} {:>12} {:>12} {:>12}",
        "STATES",
        "AG p",
        "EF q",
        "AG(q->AF p)"
    );
    let mut rows = Vec::new();
    for n in [100usize, 1_000, 10_000] {
        let model = workloads::ring_kripke(n);
        let mc = ModelChecker::new(&model);
        let mut cells = Vec::new();
        let mut secs = Vec::new();
        for f in [
            CtlFormula::ag(CtlFormula::atom("p")),
            CtlFormula::ef(CtlFormula::atom("q")),
            CtlFormula::ag(CtlFormula::implies(
                CtlFormula::atom("q"),
                CtlFormula::af(CtlFormula::atom("p")),
            )),
        ] {
            let t0 = Instant::now();
            let _ = mc.holds(&f);
            let dt = t0.elapsed();
            cells.push(format!("{dt:.2?}"));
            secs.push(dt.as_secs_f64());
        }
        say!("{n:>8} {:>12} {:>12} {:>12}", cells[0], cells[1], cells[2]);
        rows.push(serde::json::object([
            ("states", Value::UInt(n as u64)),
            ("ag_p_secs", Value::Float(secs[0])),
            ("ef_q_secs", Value::Float(secs[1])),
            ("ag_q_implies_af_p_secs", Value::Float(secs[2])),
        ]));
    }
    Value::Array(rows)
}

fn e8_gwt_coverage() -> Value {
    say!("\n== E8: test generation — coverage at equal step budgets ==");
    say!(
        "{:>8} {:>7} {:>8} {:>11} {:>13}",
        "MODEL n",
        "EDGES",
        "BUDGET",
        "ALL-EDGES",
        "RANDOM WALK"
    );
    let mut rows = Vec::new();
    for n in [10usize, 50, 200, 500] {
        let model = workloads::branched_model(n);
        let all = AllEdges.generate(&model, 0);
        let budget: usize = all.iter().map(|t| t.len()).sum();
        let rw = RandomWalk {
            max_steps: budget,
            tests: 1,
            coverage_target: 1.0,
        };
        let all_cov = model.edge_coverage(&all);
        let random_cov = model.edge_coverage(&rw.generate(&model, 5));
        say!(
            "{n:>8} {:>7} {budget:>8} {:>10.0}% {:>12.0}%",
            model.edge_count(),
            100.0 * all_cov,
            100.0 * random_cov
        );
        rows.push(serde::json::object([
            ("model_vertices", Value::UInt(n as u64)),
            ("edges", Value::UInt(model.edge_count() as u64)),
            ("step_budget", Value::UInt(budget as u64)),
            ("all_edges_coverage", Value::Float(all_cov)),
            ("random_walk_coverage", Value::Float(random_cov)),
        ]));
    }
    Value::Array(rows)
}

fn e9_tears_throughput() -> Value {
    say!("\n== E9: TEARS G/A evaluation throughput ==");
    say!(
        "{:>10} {:>12} {:>12} {:>14}",
        "TICKS",
        "ASSERTIONS",
        "ELAPSED",
        "TICKS/SEC"
    );
    let mut rows = Vec::new();
    for (len, n) in [
        (10_000u64, 1usize),
        (10_000, 10),
        (100_000, 10),
        (100_000, 100),
    ] {
        let trace = workloads::tears_trace(len);
        let mut text = String::new();
        for i in 0..n {
            let threshold = 0.5 + (i % 40) as f64 * 0.01;
            text.push_str(&format!(
                "ga \"ga{i}\": when load > {threshold} then throttled == 1 within 5\n"
            ));
        }
        let session = Session::parse(&text).expect("valid G/As");
        let t0 = Instant::now();
        let _ = session.evaluate(&trace);
        let dt = t0.elapsed();
        let ticks_per_sec = len as f64 / dt.as_secs_f64();
        say!("{len:>10} {n:>12} {:>12.2?} {ticks_per_sec:>14.0}", dt);
        rows.push(serde::json::object([
            ("ticks", Value::UInt(len)),
            ("assertions", Value::UInt(n as u64)),
            ("elapsed_secs", Value::Float(dt.as_secs_f64())),
            ("ticks_per_sec", Value::Float(ticks_per_sec)),
        ]));
    }
    Value::Array(rows)
}

fn e10_pipeline_comparison() -> Value {
    say!("\n== E10: automated vs manual pipeline (mean of seeds 1-5) ==");
    say!(
        "{:<28} {:>9} {:>9} {:>10} {:>13} {:>10}",
        "CONFIGURATION",
        "REJECTED",
        "SHIPPED",
        "INCIDENTS",
        "MEAN LATENCY",
        "EXPOSURE"
    );
    let base = PipelineConfig {
        commits: 60,
        ops_duration: 2_000,
        ..PipelineConfig::default()
    };
    type MakeConfig = Box<dyn Fn(u64) -> PipelineConfig>;
    let configs: Vec<(&str, MakeConfig)> = vec![
        (
            "automated (gates+monitor)",
            Box::new(move |seed| PipelineConfig { seed, ..base }),
        ),
        (
            "gates only",
            Box::new(move |seed| PipelineConfig {
                seed,
                monitor_period: None,
                ..base
            }),
        ),
        (
            "monitor only",
            Box::new(move |seed| PipelineConfig {
                seed,
                requirements_gate: false,
                compliance_gate: false,
                test_gate: false,
                analysis_gate: false,
                ..base
            }),
        ),
        (
            "manual baseline",
            Box::new(move |seed| PipelineConfig {
                seed,
                requirements_gate: false,
                compliance_gate: false,
                test_gate: false,
                analysis_gate: false,
                monitor_period: None,
                ..base
            }),
        ),
    ];
    let mut rows = Vec::new();
    for (name, make) in &configs {
        let (mut rejected, mut shipped, mut incidents, mut latency, mut exposure) =
            (0.0, 0.0, 0.0, 0.0, 0.0);
        let seeds = [1u64, 2, 3, 4, 5];
        for &seed in &seeds {
            let r = run(&make(seed));
            rejected += r.rejected_total() as f64;
            shipped += r.vulnerabilities_deployed as f64;
            incidents += r.ops.incidents.len() as f64;
            latency += r.ops.mean_detection_latency();
            exposure += r.ops.exposure();
        }
        let n = seeds.len() as f64;
        say!(
            "{name:<28} {:>9.1} {:>9.1} {:>10.1} {:>13.1} {:>9.2}%",
            rejected / n,
            shipped / n,
            incidents / n,
            latency / n,
            100.0 * exposure / n
        );
        rows.push(serde::json::object([
            ("configuration", Value::String((*name).to_string())),
            ("mean_rejected", Value::Float(rejected / n)),
            ("mean_shipped", Value::Float(shipped / n)),
            ("mean_incidents", Value::Float(incidents / n)),
            ("mean_detection_latency", Value::Float(latency / n)),
            ("mean_exposure", Value::Float(exposure / n)),
        ]));
    }
    Value::Array(rows)
}

fn e11_soc_engine() -> Value {
    say!("\n== E11: event-driven SOC vs polling monitor (drift 2%/tick) ==");
    say!(
        "{:>6} {:>14} {:>10} {:>13} {:>10} {:>10}",
        "HOSTS",
        "ENGINE",
        "INCIDENTS",
        "MEAN LATENCY",
        "EXPOSURE",
        "CHECKS"
    );
    let catalog = ubuntu::catalog();
    let planner = RemediationPlanner::default();
    let fleet_of = |n: usize| -> Vec<vdo_host::UnixHost> {
        (0..n)
            .map(|_| {
                let mut h = vdo_host::UnixHost::baseline_ubuntu_1804();
                planner.run(&catalog, &mut h);
                h
            })
            .collect()
    };
    let mut scaling_rows = Vec::new();
    for hosts in [1usize, 10, 100, 1_000] {
        let duration = if hosts <= 100 { 500 } else { 100 };
        let mut fleet = fleet_of(hosts);
        let engine = SocEngine::new(
            &catalog,
            SocConfig {
                duration,
                drift_rate: 0.02,
                workers: 4,
                shards: 16,
                seed: 11,
                ..SocConfig::default()
            },
        )
        .expect("valid config");
        let report = engine.run(&mut fleet);
        say!(
            "{:>6} {:>14} {:>10} {:>13.1} {:>9.2}% {:>10}",
            hosts,
            "event-driven",
            report.incidents.len(),
            report.mean_detection_latency(),
            100.0 * report.exposure(hosts),
            report.metrics.checks_run
        );
        scaling_rows.push(serde::json::object([
            ("hosts", Value::UInt(hosts as u64)),
            ("engine", Value::String("event-driven".into())),
            ("incidents", Value::UInt(report.incidents.len() as u64)),
            (
                "mean_detection_latency",
                Value::Float(report.mean_detection_latency()),
            ),
            ("exposure", Value::Float(report.exposure(hosts))),
            ("checks", Value::UInt(report.metrics.checks_run)),
        ]));
        let phase = OperationsPhase::new(&catalog);
        let (mut incidents, mut weighted_latency, mut noncompliant, mut checks) =
            (0usize, 0.0f64, 0u64, 0u64);
        for (i, host) in fleet_of(hosts).iter_mut().enumerate() {
            let r = phase.run(
                host,
                &OpsConfig {
                    engine: MonitorEngine::Polling,
                    duration,
                    drift_rate: 0.02,
                    monitor_period: Some(10),
                    audit_period: 0,
                    seed: 11u64.wrapping_add(i as u64),
                },
            );
            incidents += r.incidents.len();
            weighted_latency += r.mean_detection_latency() * r.incidents.len() as f64;
            noncompliant += r.noncompliant_ticks;
            checks += r.checks;
        }
        let polling_latency = weighted_latency / incidents.max(1) as f64;
        let polling_exposure = noncompliant as f64 / (duration as f64 * hosts as f64);
        say!(
            "{:>6} {:>14} {:>10} {:>13.1} {:>9.2}% {:>10}",
            hosts,
            "polling-10",
            incidents,
            polling_latency,
            100.0 * polling_exposure,
            checks * catalog.len() as u64
        );
        scaling_rows.push(serde::json::object([
            ("hosts", Value::UInt(hosts as u64)),
            ("engine", Value::String("polling-10".into())),
            ("incidents", Value::UInt(incidents as u64)),
            ("mean_detection_latency", Value::Float(polling_latency)),
            ("exposure", Value::Float(polling_exposure)),
            ("checks", Value::UInt(checks * catalog.len() as u64)),
        ]));
    }

    say!("\n   determinism + remediation faults (64 hosts, 200 ticks, 25% fault rate):");
    say!(
        "{:>8} {:>10} {:>8} {:>13} {:>10}",
        "WORKERS",
        "INCIDENTS",
        "RETRIES",
        "DEAD LETTERS",
        "IDENTICAL"
    );
    let mut reference: Option<String> = None;
    let mut determinism_rows = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let mut fleet = fleet_of(64);
        let engine = SocEngine::new(
            &catalog,
            SocConfig {
                duration: 200,
                drift_rate: 0.02,
                workers,
                shards: 16,
                seed: 11,
                tears_assertion: Some(
                    r#"ga "lockout": when failed_logins >= 3 then lockout == 1 within 2"#.into(),
                ),
                remediation: RemediationConfig {
                    fault_rate: 0.25,
                    ..RemediationConfig::default()
                },
                ..SocConfig::default()
            },
        )
        .expect("valid config");
        let report = engine.run(&mut fleet);
        let log = report.incident_log();
        let identical = match &reference {
            None => {
                reference = Some(log);
                "baseline"
            }
            Some(expected) if *expected == log => "yes",
            Some(_) => "NO",
        };
        say!(
            "{:>8} {:>10} {:>8} {:>13} {:>10}",
            workers,
            report.incidents.len(),
            report.metrics.retries,
            report.metrics.dead_letters,
            identical
        );
        determinism_rows.push(serde::json::object([
            ("workers", Value::UInt(workers as u64)),
            ("incidents", Value::UInt(report.incidents.len() as u64)),
            ("retries", Value::UInt(report.metrics.retries)),
            ("dead_letters", Value::UInt(report.metrics.dead_letters)),
            ("identical", Value::String(identical.to_string())),
        ]));
    }
    serde::json::object([
        ("scaling", Value::Array(scaling_rows)),
        ("determinism", Value::Array(determinism_rows)),
    ])
}

/// E12: the cost of the recorder itself — the same SOC fleet workload
/// with live instruments ([`SocMetrics::new`]) vs the no-op recorder
/// ([`SocMetrics::disabled`]). Best-of-N wall clock on each side keeps
/// scheduler noise out of the comparison.
fn e12_obs_overhead() -> Value {
    say!("\n== E12: observability overhead (64-host SOC fleet, enabled vs disabled recorder) ==");
    let catalog = ubuntu::catalog();
    let planner = RemediationPlanner::default();
    let fleet_of = || -> Vec<vdo_host::UnixHost> {
        (0..64)
            .map(|_| {
                let mut h = vdo_host::UnixHost::baseline_ubuntu_1804();
                planner.run(&catalog, &mut h);
                h
            })
            .collect()
    };
    let config = SocConfig {
        duration: 200,
        drift_rate: 0.02,
        workers: 4,
        shards: 16,
        seed: 11,
        ..SocConfig::default()
    };
    let rounds = 5;
    let mut best = [f64::INFINITY; 2];
    for _ in 0..rounds {
        for (slot, enabled) in [(0usize, true), (1, false)] {
            let metrics = if enabled {
                SocMetrics::new()
            } else {
                SocMetrics::disabled()
            };
            let mut fleet = fleet_of();
            let engine = SocEngine::new(&catalog, config.clone()).expect("valid config");
            let t0 = Instant::now();
            let report = engine.run_with_metrics(&mut fleet, &metrics);
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(
                report.metrics.events_processed > 0,
                enabled,
                "disabled recorder must observe nothing, enabled must observe the run"
            );
            best[slot] = best[slot].min(dt);
        }
    }
    let overhead_pct = 100.0 * (best[0] - best[1]) / best[1];
    say!("{:>10} {:>14}", "RECORDER", "BEST WALL");
    say!("{:>10} {:>13.2}ms", "enabled", best[0] * 1e3);
    say!("{:>10} {:>13.2}ms", "disabled", best[1] * 1e3);
    say!("   recorder overhead: {overhead_pct:+.2}% (best of {rounds} rounds each)");
    serde::json::object([
        ("enabled_best_secs", Value::Float(best[0])),
        ("disabled_best_secs", Value::Float(best[1])),
        ("overhead_pct", Value::Float(overhead_pct)),
        ("rounds", Value::UInt(rounds)),
    ])
}

/// E14: the trace journal's cost and completeness on the E12 fleet
/// workload — best-of-5 wall clock for traced vs disabled-tracing vs
/// untraced runs (target <5% like E12), plus the causal-chain
/// guarantees: every incident resolves to a requirement root, and the
/// journal fingerprint is invariant under the worker count.
fn e14_trace() -> Value {
    say!("\n== E14: trace-journal overhead + completeness (64-host SOC fleet) ==");
    let catalog = ubuntu::catalog();
    let planner = RemediationPlanner::default();
    let fleet_of = || -> Vec<vdo_host::UnixHost> {
        (0..64)
            .map(|_| {
                let mut h = vdo_host::UnixHost::baseline_ubuntu_1804();
                planner.run(&catalog, &mut h);
                h
            })
            .collect()
    };
    let config = SocConfig {
        duration: 200,
        drift_rate: 0.02,
        workers: 4,
        shards: 16,
        seed: 11,
        ..SocConfig::default()
    };

    // -- Overhead: traced vs disabled-journal vs plain untraced run. ----
    // The E11 fleet shape (500 ticks) keeps each run long enough that
    // best-of-N converges below scheduler jitter.
    let overhead_config = SocConfig {
        duration: 500,
        ..config.clone()
    };
    let rounds = 11;
    let modes = ["traced", "disabled", "untraced"];
    let mut best = [f64::INFINITY; 3];
    for _ in 0..rounds {
        for (slot, mode) in modes.iter().enumerate() {
            let mut fleet = fleet_of();
            let engine = SocEngine::new(&catalog, overhead_config.clone()).expect("valid config");
            let metrics = SocMetrics::new();
            // The journal outlives the run in every real deployment (it
            // is snapshotted/exported afterwards), so its construction
            // and teardown stay outside the timed region — only the
            // per-event cost paid during the run is the overhead.
            let tracing = match *mode {
                "traced" => Some(SocTracing::new(vdo_trace::Journal::new(), 11)),
                "disabled" => Some(SocTracing::disabled()),
                _ => None,
            };
            let t0 = Instant::now();
            let report = match &tracing {
                Some(t) => engine.run_traced(&mut fleet, &metrics, t),
                None => engine.run_with_metrics(&mut fleet, &metrics),
            };
            let dt = t0.elapsed().as_secs_f64();
            assert!(
                !report.incidents.is_empty(),
                "workload must raise incidents"
            );
            drop(tracing);
            best[slot] = best[slot].min(dt);
        }
    }
    let overhead = |secs: f64| 100.0 * (secs - best[2]) / best[2];
    say!("{:>10} {:>14} {:>10}", "JOURNAL", "BEST WALL", "OVERHEAD");
    for (slot, mode) in modes.iter().enumerate() {
        say!(
            "{:>10} {:>13.2}ms {:>9.2}%",
            mode,
            best[slot] * 1e3,
            overhead(best[slot])
        );
    }

    // -- Completeness + fingerprint invariance across worker counts. ----
    let mut completeness_rows = Vec::new();
    let mut fingerprints = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut fleet = fleet_of();
        let journal = vdo_trace::Journal::new();
        let engine = SocEngine::new(
            &catalog,
            SocConfig {
                workers,
                ..config.clone()
            },
        )
        .expect("valid config");
        let tracing = SocTracing::new(journal.clone(), 11);
        let report = engine.run_traced(&mut fleet, &SocMetrics::new(), &tracing);
        let snapshot = journal.snapshot();
        let resolved = report
            .incidents
            .iter()
            .filter(|i| {
                i.trace.is_some_and(|t| {
                    snapshot
                        .root_event(t.trace_id)
                        .is_some_and(|root| root.name == "requirement.ingested")
                })
            })
            .count();
        let completeness = 100.0 * resolved as f64 / report.incidents.len().max(1) as f64;
        assert!(
            (completeness - 100.0).abs() < f64::EPSILON,
            "every incident must resolve to a requirement root"
        );
        fingerprints.push(snapshot.fingerprint());
        completeness_rows.push(serde::json::object([
            ("workers", Value::UInt(workers as u64)),
            ("incidents", Value::UInt(report.incidents.len() as u64)),
            ("resolved", Value::UInt(resolved as u64)),
            ("completeness_pct", Value::Float(completeness)),
            ("journal_events", Value::UInt(snapshot.events.len() as u64)),
            ("journal_dropped", Value::UInt(snapshot.dropped())),
        ]));
        say!(
            "   workers {workers}: {resolved}/{} incidents resolve to requirement roots \
             ({} journal events, {} dropped)",
            report.incidents.len(),
            snapshot.events.len(),
            snapshot.dropped()
        );
    }
    let invariant = fingerprints.windows(2).all(|w| w[0] == w[1]);
    assert!(invariant, "journal fingerprint must not depend on workers");
    say!(
        "   journal overhead: {:+.2}% traced / {:+.2}% disabled (best of {rounds}); \
         fingerprint worker-invariant: {invariant}",
        overhead(best[0]),
        overhead(best[1])
    );
    serde::json::object([
        ("traced_best_secs", Value::Float(best[0])),
        ("disabled_best_secs", Value::Float(best[1])),
        ("untraced_best_secs", Value::Float(best[2])),
        ("traced_overhead_pct", Value::Float(overhead(best[0]))),
        ("disabled_overhead_pct", Value::Float(overhead(best[1]))),
        ("rounds", Value::UInt(rounds)),
        ("completeness", Value::Array(completeness_rows)),
        ("fingerprint_worker_invariant", Value::Bool(invariant)),
    ])
}

/// E15: the multi-tenant service front end — one million open-loop
/// requests across eight tenants, latency/throughput/rejection tables,
/// scaling sweeps, the worker-count determinism check, and the smoke
/// configuration CI holds to its latency budget.
fn e15_server() -> Value {
    vdo_bench::e15::section(&vdo_bench::e15::E15Scale::full())
}

/// E16: the columnar fleet store at scale — the bytes-per-host memory
/// curve against the owned-struct baseline, the drift → dirty-set
/// refresh → enforce closed loop, worker-count determinism on the
/// verdict logs, and the smoke configuration CI holds to its pinned
/// memory and round-latency budgets. The default runs the CI shape
/// (100k-host closed loop); `--e16-full` runs the million-host curve.
fn e16_fleet_scale(full: bool) -> Value {
    let scale = if full {
        vdo_bench::e16::E16Scale::full()
    } else {
        vdo_bench::e16::E16Scale::ci()
    };
    vdo_bench::e16::section(&scale)
}

/// E17: incremental cross-artifact analysis at catalogue scale — the
/// full-batch vs incremental gate-latency curve, the bit-identity
/// check against batch reports after every commit, and the smoke
/// configuration CI holds to its latency-fraction budget (a 1%-touch
/// commit against ten thousand requirements must re-gate in at most
/// 10% of the full-run latency). The default runs the CI shape;
/// `--e17-full` runs the four-point curve to 10k entries.
fn e17_incremental_analysis(full: bool) -> Value {
    let scale = if full {
        vdo_bench::e17::E17Scale::full()
    } else {
        vdo_bench::e17::E17Scale::ci()
    };
    vdo_bench::e17::section(&scale)
}

/// E18: the columnar journal + deterministic replay — write-path
/// throughput and the size advantage over JSONL, `Warn`-floor
/// compaction with incident chains kept whole, and replay-to-checkpoint
/// / replay-to-seq latency with digest-identity verified on every
/// worker count. The compacted segments land in `target/e18_compact`
/// (the CI artifact). The default runs the CI shape (64 hosts, 200
/// ticks); `--e18-full` records the 128-host, 500-tick run.
fn e19_telemetry_plane(full: bool) -> Value {
    let scale = if full {
        vdo_bench::e19::E19Scale::full()
    } else {
        vdo_bench::e19::E19Scale::ci()
    };
    vdo_bench::e19::section(&scale)
}

fn e18_journal_replay(full: bool) -> Value {
    let scale = if full {
        vdo_bench::e18::E18Scale::full()
    } else {
        vdo_bench::e18::E18Scale::ci()
    };
    vdo_bench::e18::section(&scale)
}

/// E13: the static analyzer against the planted-defect corpus —
/// per-class precision/recall, a byte-identical-listing determinism
/// check across thread counts, and throughput vs catalogue size.
fn e13_analyze() -> Value {
    say!("\n== E13: static-analyzer detection on planted defects (60 clean + 3/class) ==");
    say!(
        "{:<8} {:>8} {:>6} {:>4} {:>4} {:>10} {:>7}",
        "CODE",
        "PLANTED",
        "FOUND",
        "FP",
        "FN",
        "PRECISION",
        "RECALL"
    );
    let corpus = defects::generate(&DefectConfig::default());
    let analyzer = StaticAnalyzer::new(AnalysisConfig::default());
    let report = analyzer.analyze(&corpus.artifacts);
    let score = corpus.score(&report);
    let mut detection = Vec::new();
    for (code, class) in &score.per_class {
        say!(
            "{:<8} {:>8} {:>6} {:>4} {:>4} {:>10.3} {:>7.3}",
            code.as_str(),
            class.planted,
            class.true_positives,
            class.false_positives,
            class.false_negatives,
            class.precision(),
            class.recall()
        );
        detection.push(serde::json::object([
            ("code", Value::String(code.as_str().to_string())),
            ("planted", Value::UInt(class.planted as u64)),
            ("found", Value::UInt(class.true_positives as u64)),
            ("false_positives", Value::UInt(class.false_positives as u64)),
            ("false_negatives", Value::UInt(class.false_negatives as u64)),
            ("precision", Value::Float(class.precision())),
            ("recall", Value::Float(class.recall())),
        ]));
    }
    say!(
        "{:<8} {:>8} {:>6} {:>4} {:>4} {:>10.3} {:>7.3}",
        "TOTAL",
        corpus.planted_total(),
        score.true_positives,
        score.false_positives,
        score.false_negatives,
        score.precision(),
        score.recall()
    );
    assert!(
        score.is_perfect(),
        "E13 regression: planted-defect detection is no longer perfect"
    );

    // Determinism: equal inputs must yield byte-identical listings at
    // every thread count.
    let listings: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&t| analyzer.analyze_all(&corpus.artifacts, t).listing())
        .collect();
    let identical = listings.iter().all(|l| *l == listings[0]);
    assert!(identical, "E13 regression: listings differ across threads");
    say!(
        "   determinism: {} diagnostics, listings byte-identical at 1/2/4 threads",
        report.diagnostics.len()
    );

    // Throughput vs catalogue size (clean corpora, so the analyzer
    // walks everything and reports nothing).
    say!(
        "{:>8} {:>10} {:>12} {:>12} {:>12}",
        "ENTRIES",
        "ARTIFACTS",
        "1-THREAD",
        "4-THREAD",
        "ENTRIES/S"
    );
    let mut throughput = Vec::new();
    for clean_entries in [100usize, 1_000, 10_000] {
        let corpus = defects::generate(&DefectConfig {
            clean_entries,
            defects_per_class: 0,
            seed: 7,
        });
        let t0 = Instant::now();
        let r1 = analyzer.analyze_all(&corpus.artifacts, 1);
        let dt1 = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let r4 = analyzer.analyze_all(&corpus.artifacts, 4);
        let dt4 = t0.elapsed().as_secs_f64();
        assert!(
            r1.is_clean() && r4.is_clean(),
            "clean corpus must stay clean"
        );
        let eps = clean_entries as f64 / dt1;
        say!(
            "{clean_entries:>8} {:>10} {:>10.2}ms {:>10.2}ms {:>12.0}",
            corpus.artifacts.len(),
            dt1 * 1e3,
            dt4 * 1e3,
            eps
        );
        throughput.push(serde::json::object([
            ("entries", Value::UInt(clean_entries as u64)),
            ("artifacts", Value::UInt(corpus.artifacts.len() as u64)),
            ("one_thread_secs", Value::Float(dt1)),
            ("four_thread_secs", Value::Float(dt4)),
            ("entries_per_sec", Value::Float(eps)),
        ]));
    }
    serde::json::object([
        ("detection", Value::Array(detection)),
        ("total_planted", Value::UInt(corpus.planted_total() as u64)),
        ("precision", Value::Float(score.precision())),
        ("recall", Value::Float(score.recall())),
        ("listings_identical_1_2_4", Value::Bool(identical)),
        ("throughput", Value::Array(throughput)),
    ])
}

/// F1: one observed closed-loop run — the unified registry collects the
/// `pipeline.*` / `core.*` / `ops.*` counters and the per-phase span
/// timings, and equal-seed runs (including an event-driven worker
/// sweep) must produce identical deterministic fingerprints.
fn f1_closed_loop() -> Value {
    say!("\n== F1: closed-loop observability (one pipeline run, unified registry) ==");
    let cfg = PipelineConfig {
        commits: 60,
        ops_duration: 2_000,
        seed: 1,
        ..PipelineConfig::default()
    };
    let registry = vdo_obs::Registry::new();
    let report = run_observed(&cfg, &registry);
    let snapshot = registry.snapshot();

    say!(
        "{:<16} {:>6} {:>12} {:>12}",
        "SPAN",
        "COUNT",
        "TOTAL",
        "MEAN"
    );
    for (path, span) in &snapshot.spans {
        say!(
            "{path:<16} {:>6} {:>10.2}ms {:>10.2}ms",
            span.count,
            span.total_nanos as f64 / 1e6,
            span.mean_nanos() / 1e6
        );
    }
    say!("{:<32} {:>10}", "COUNTER", "VALUE");
    for (name, value) in &snapshot.counters {
        say!("{name:<32} {value:>10}");
    }

    // Equal-seed determinism: a second full run must fingerprint
    // identically (durations excluded by construction).
    let rerun = vdo_obs::Registry::new();
    let _ = run_observed(&cfg, &rerun);
    let equal_seed =
        snapshot.deterministic_fingerprint() == rerun.snapshot().deterministic_fingerprint();

    // Worker sweep on the event-driven operations engine: the exported
    // counters must not depend on the schedule.
    let catalog = ubuntu::catalog();
    let mut fingerprints = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut host = vdo_host::UnixHost::baseline_ubuntu_1804();
        RemediationPlanner::default().run(&catalog, &mut host);
        let reg = vdo_obs::Registry::new();
        let _ = OperationsPhase::new(&catalog).run_observed(
            &mut host,
            &OpsConfig {
                engine: MonitorEngine::EventDriven { workers },
                duration: 1_000,
                drift_rate: 0.05,
                seed: 7,
                ..OpsConfig::default()
            },
            &reg,
        );
        fingerprints.push(reg.snapshot().deterministic_fingerprint());
    }
    let worker_sweep = fingerprints.windows(2).all(|w| w[0] == w[1]);
    assert!(equal_seed, "equal-seed fingerprints must be identical");
    assert!(
        worker_sweep,
        "event-driven counters must be schedule-independent"
    );
    say!("   equal-seed fingerprints identical:     {equal_seed}");
    say!("   worker-sweep fingerprints identical:   {worker_sweep} (1/2/4 workers)");

    serde::json::object([
        ("report", report.to_value()),
        ("snapshot", snapshot.to_value()),
        ("equal_seed_deterministic", Value::Bool(equal_seed)),
        ("worker_sweep_deterministic", Value::Bool(worker_sweep)),
    ])
}

fn a1_dictionary_ablation() -> Value {
    say!("\n== A1: ablation — NALABS recall vs dictionary fraction (n = 1000) ==");
    say!("   (imperatives metric excluded: the ablation isolates dictionary smells)");
    say!("{:>10} {:>8} {:>10}", "FRACTION", "RECALL", "PRECISION");
    use vdo_nalabs::dictionaries;
    use vdo_nalabs::metrics::{DictionaryMetric, Readability, Size};
    use vdo_nalabs::{Metric, SmellThresholds};
    let corpus = workloads::corpus(1_000);
    let mut rows = Vec::new();
    for fraction in [1.0, 0.75, 0.5, 0.25, 0.1] {
        let metrics: Vec<Box<dyn Metric>> = vec![
            Box::new(DictionaryMetric::new(
                "conjunctions",
                dictionaries::conjunctions().shrunk(fraction),
            )),
            Box::new(DictionaryMetric::new(
                "continuances",
                dictionaries::continuances().shrunk(fraction),
            )),
            Box::new(DictionaryMetric::new(
                "incompleteness",
                dictionaries::incompleteness().shrunk(fraction),
            )),
            Box::new(DictionaryMetric::new(
                "optionality",
                dictionaries::optionality().shrunk(fraction),
            )),
            Box::new(DictionaryMetric::new(
                "references",
                dictionaries::references().shrunk(fraction),
            )),
            Box::new(DictionaryMetric::new(
                "subjectivity",
                dictionaries::subjectivity().shrunk(fraction),
            )),
            Box::new(DictionaryMetric::new(
                "vagueness",
                dictionaries::vagueness().shrunk(fraction),
            )),
            Box::new(DictionaryMetric::new(
                "weakness",
                dictionaries::weakness().shrunk(fraction),
            )),
            Box::new(Readability),
            Box::new(Size),
        ];
        let analyzer = Analyzer::new(metrics, SmellThresholds::default());
        let report = analyzer.analyze_corpus(&corpus.documents);
        let pr = report.score_against(&|id| corpus.is_smelly(id));
        say!(
            "{fraction:>10.2} {:>8.3} {:>10.3}",
            pr.recall(),
            pr.precision()
        );
        rows.push(serde::json::object([
            ("fraction", Value::Float(fraction)),
            ("recall", Value::Float(pr.recall())),
            ("precision", Value::Float(pr.precision())),
        ]));
    }
    Value::Array(rows)
}
