//! Output routing for the experiment harness.
//!
//! Every experiment section narrates itself with human-readable tables
//! via [`say!`](crate::say). By default those land on stdout, like any
//! CLI. When `exp_report` runs in machine mode (`--json -`), the JSON
//! document owns stdout, so [`route_to_stderr`] flips the tables over
//! to stderr and keeps the stdout byte stream pure JSON.

use std::sync::atomic::{AtomicBool, Ordering};

static TO_STDERR: AtomicBool = AtomicBool::new(false);

/// Routes all subsequent [`say!`](crate::say) output to stderr (`true`)
/// or stdout (`false`, the default).
pub fn route_to_stderr(on: bool) {
    TO_STDERR.store(on, Ordering::Relaxed);
}

/// `true` when [`say!`](crate::say) currently writes to stderr.
#[must_use]
pub fn stderr_routing() -> bool {
    TO_STDERR.load(Ordering::Relaxed)
}

/// Prints one experiment-table line on the routed stream: stdout by
/// default, stderr after [`out::route_to_stderr(true)`].
///
/// [`out::route_to_stderr(true)`]: route_to_stderr
#[macro_export]
macro_rules! say {
    ($($arg:tt)*) => {
        if $crate::out::stderr_routing() {
            eprintln!($($arg)*);
        } else {
            println!($($arg)*);
        }
    };
}
