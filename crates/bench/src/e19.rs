//! E19: the live telemetry plane — overhead, tail-sampled journal
//! size, and streaming alert latency.
//!
//! One invocation runs three claims over the E12 fleet workload (with
//! the TEARS telemetry firehose armed) and one server overload:
//!
//! * **overhead** — the always-on plane (journal at the `Info`
//!   operational floor, incident tracing, live SLO evaluation) vs the
//!   E12 baseline (metrics recorder only, no journal), paired
//!   per-round wall clock gated on the minimum round ratio at
//!   [`PLANE_OVERHEAD_BUDGET_PCT`]. The `Debug` forensic floor — which
//!   accepts the whole per-host signal firehose — is measured
//!   alongside, ungated: that cost is what adaptive sampling's disk
//!   savings pay for, and it is only ever paid while recording;
//! * **sampling** — the identical firehose-armed run recorded twice
//!   through the columnar [`DirWriter`], bare vs wrapped in a
//!   [`SamplingSink`]: on-disk bytes must shrink by at least the
//!   scale's `size_ratio_floor` (≥10× at CI scale) while **100%** of
//!   the live run's incidents still resolve to their
//!   `requirement.ingested` root inside the sampled cut;
//! * **alerting** — a two-tenant [`vdo_server::Server`] where periodic
//!   bursts overload one tenant's admission queue: the burn onset is
//!   the first `server.reject` journal event, and the per-tenant SLO
//!   evaluator must land its first alert on the SOC bus within
//!   [`ALERT_LATENCY_BUDGET_TICKS`] of it. Every fired alert is
//!   appended to the scale's `alert_log` (the CI artifact);
//! * the `smoke` subsection ANDs all three gates into `within_budget`.
//!
//! [`DirWriter`]: vdo_trace::DirWriter
//! [`SamplingSink`]: vdo_trace::SamplingSink

use std::collections::HashSet;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use serde::json::Value;
use vdo_core::RemediationPlanner;
use vdo_host::UnixHost;
use vdo_server::{
    LoadConfig, LoadGen, Server, ServerConfig, ServerMetrics, ServerSloPolicy, ServerTracing,
    TenantConfig,
};
use vdo_soc::{
    RemediationConfig, SecEvent, ShardedBus, SloPolicy, SocConfig, SocEngine, SocMetrics,
    SocTracing,
};
use vdo_stigs::ubuntu;
use vdo_trace::{
    BurnRateRule, DirWriter, Journal, JournalConfig, JournalDir, SamplingPolicy, SamplingSink,
    Severity, SloSignal,
};

/// The pinned smoke budget for the always-on plane: enabled vs the
/// E12 metrics-only baseline, minimum paired per-round ratio, in
/// percent.
pub const PLANE_OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// The pinned smoke budget for alert detection latency: ticks from the
/// first rejected request (burn onset) to the first SLO alert on the
/// SOC bus.
pub const ALERT_LATENCY_BUDGET_TICKS: u64 = 25;

/// Knobs that scale E19 between the full experiment, the CI shape, and
/// a fast test shape. All runs keep the same structure — only fleet
/// size, duration, and the sampling floor change (a tiny fleet's base
/// stream is too large a fraction of the firehose to reach 10×).
#[derive(Debug, Clone)]
pub struct E19Scale {
    /// Fleet size for the overhead and sampling runs.
    pub hosts: usize,
    /// Ticks per SOC run.
    pub duration: u64,
    /// Best-of rounds for the overhead measurement.
    pub rounds: usize,
    /// Ticks per overhead-arm run. Longer than `duration` at the real
    /// scales (the E14 lesson: best-of-N only converges below
    /// scheduler jitter when each run is long enough).
    pub overhead_ticks: u64,
    /// Head-sampling rate: keep one telemetry trace in this many.
    pub keep_1_in: u64,
    /// Minimum on-disk size reduction (unsampled / sampled bytes).
    pub size_ratio_floor: f64,
    /// Total requests for the server overload run.
    pub requests: u64,
    /// Where fired alerts are appended, one line each (the CI
    /// artifact); `None` keeps the log in memory only.
    pub alert_log: Option<PathBuf>,
}

impl E19Scale {
    /// The full experiment: the E12 fleet for 300 ticks.
    #[must_use]
    pub fn full() -> Self {
        E19Scale {
            hosts: 64,
            duration: 300,
            rounds: 11,
            overhead_ticks: 500,
            keep_1_in: 32,
            size_ratio_floor: 10.0,
            requests: 20_000,
            alert_log: Some(PathBuf::from("target/e19_alerts.log")),
        }
    }

    /// The CI shape: the E12 workload exactly (64 hosts, 200 ticks).
    #[must_use]
    pub fn ci() -> Self {
        E19Scale {
            duration: 200,
            requests: 10_000,
            ..E19Scale::full()
        }
    }

    /// A reduced shape for tests: identical structure, relaxed
    /// sampling floor (at 12 hosts the incident stream dominates).
    #[must_use]
    pub fn tiny() -> Self {
        E19Scale {
            hosts: 12,
            duration: 100,
            rounds: 2,
            overhead_ticks: 100,
            keep_1_in: 8,
            size_ratio_floor: 2.0,
            requests: 2_000,
            alert_log: None,
        }
    }

    fn soc_config(&self) -> SocConfig {
        SocConfig {
            duration: self.duration,
            drift_rate: 0.02,
            workers: 4,
            shards: 16,
            seed: 11,
            tears_assertion: Some(
                r#"ga "lockout": when failed_logins >= 3 then lockout == 1 within 2"#.into(),
            ),
            // Retries off: a quarter of remediation attempts dead-letter
            // outright, so the fleet-side burn-rate rule has a real burn
            // to catch (with backoff retries the dead-letter ratio is
            // fault_rate^4 — far below any sane objective).
            remediation: RemediationConfig {
                max_retries: 0,
                fault_rate: 0.25,
                ..RemediationConfig::default()
            },
            ..SocConfig::default()
        }
    }
}

/// Burn-rate rules over the SOC engine's live signals.
fn soc_rules() -> Vec<BurnRateRule> {
    vec![
        BurnRateRule {
            name: "remediation-failures".into(),
            signal: SloSignal::CounterRatio {
                bad: "soc.dead_letters".into(),
                total: "soc.remediations".into(),
            },
            objective: 0.05,
            long_window: 20,
            short_window: 5,
            factor: 2.0,
        },
        BurnRateRule {
            name: "slow-detection".into(),
            signal: SloSignal::HistogramAbove {
                histogram: "soc.detection_latency".into(),
                threshold: 3,
            },
            objective: 0.1,
            long_window: 20,
            short_window: 5,
            factor: 2.0,
        },
    ]
}

/// The server-side admission SLO: rejected/admitted burn rate.
fn admission_rule() -> BurnRateRule {
    BurnRateRule {
        name: "admission".into(),
        signal: SloSignal::CounterRatio {
            bad: "server.rejected".into(),
            total: "server.admitted".into(),
        },
        objective: 0.1,
        long_window: 10,
        short_window: 3,
        factor: 2.0,
    }
}

fn fleet_of(catalog: &vdo_core::Catalog<UnixHost>, hosts: usize) -> Vec<UnixHost> {
    let planner = RemediationPlanner::default();
    (0..hosts)
        .map(|_| {
            let mut h = UnixHost::baseline_ubuntu_1804();
            planner.run(catalog, &mut h);
            h
        })
        .collect()
}

/// Runs the E19 telemetry-plane experiment and returns the section
/// JSON. Structural invariants (identical incident logs across arms,
/// 100% root resolution, every alert reaching the bus) are asserted
/// in-function; the wall-clock and size budgets land in
/// `smoke.within_budget` for the CI gate.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn section(scale: &E19Scale) -> Value {
    crate::say!("\n== E19: live telemetry plane (overhead / sampling / alert latency) ==");
    let catalog = ubuntu::catalog();
    let config = scale.soc_config();
    let overhead_config = SocConfig {
        duration: scale.overhead_ticks,
        ..config.clone()
    };

    // -- Overhead: the always-on plane vs the E12 baseline. ------------
    // Three arms, all with the E12 metrics recorder on: `baseline`
    // (metrics only — E12's enabled configuration), `plane` (plus an
    // Info-floor journal, incident tracing, and live SLO evaluation),
    // `forensic` (plus the Debug floor accepting the signal firehose).
    // Arms run adjacent within each round and the gate takes the
    // *minimum per-round overhead ratio*: a noisy epoch slows paired
    // arms together and cancels, where best-of-N wall clocks drift
    // apart on a loaded machine and turn a ≤5% claim into a coin flip.
    let mut best = [f64::INFINITY; 3];
    let mut plane_overhead_pct = f64::INFINITY;
    let mut forensic_overhead_pct = f64::INFINITY;
    let mut plane_alerts = 0u64;
    for _ in 0..scale.rounds {
        let mut round = [0.0f64; 3];
        for slot in 0..3usize {
            let tracing = match slot {
                2 => SocTracing::disabled(),
                _ => {
                    let journal = Journal::with_config(JournalConfig {
                        shards: 4,
                        capacity_per_shard: 8_192,
                        min_severity: if slot == 1 {
                            Severity::Debug
                        } else {
                            Severity::Info
                        },
                    });
                    let mut t = SocTracing::new(journal, 11);
                    t.slo = Some(SloPolicy {
                        rules: soc_rules(),
                        period: 1,
                    });
                    t
                }
            };
            let metrics = SocMetrics::new();
            let mut fleet = fleet_of(&catalog, scale.hosts);
            let engine = SocEngine::new(&catalog, overhead_config.clone()).expect("valid config");
            let t0 = Instant::now();
            let report = engine.run_traced(&mut fleet, &metrics, &tracing);
            let dt = t0.elapsed().as_secs_f64();
            round[slot] = dt;
            best[slot] = best[slot].min(dt);
            if slot == 0 {
                plane_alerts = report.slo_alerts.len() as u64;
            }
            assert!(
                !report.incidents.is_empty(),
                "the workload must raise incidents"
            );
        }
        plane_overhead_pct = plane_overhead_pct.min(100.0 * (round[0] - round[2]) / round[2]);
        forensic_overhead_pct = forensic_overhead_pct.min(100.0 * (round[1] - round[2]) / round[2]);
    }
    crate::say!("{:>10} {:>14}", "PLANE", "BEST WALL");
    crate::say!("{:>10} {:>13.2}ms", "enabled", best[0] * 1e3);
    crate::say!("{:>10} {:>13.2}ms", "forensic", best[1] * 1e3);
    crate::say!("{:>10} {:>13.2}ms", "baseline", best[2] * 1e3);
    crate::say!(
        "   always-on plane overhead: {plane_overhead_pct:+.2}% (budget {PLANE_OVERHEAD_BUDGET_PCT}%), \
         forensic Debug floor: {forensic_overhead_pct:+.2}% (ungated; min paired ratio over {} rounds)",
        scale.rounds
    );
    let overhead_ok = plane_overhead_pct <= PLANE_OVERHEAD_BUDGET_PCT;

    // -- Sampling: bare DirWriter vs SamplingSink on the same run. -----
    let base = std::env::temp_dir().join(format!("vdo-e19-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let full_dir = base.join("full");
    let samp_dir = base.join("sampled");
    std::fs::create_dir_all(&full_dir).expect("temp dir");
    std::fs::create_dir_all(&samp_dir).expect("temp dir");
    let capture = JournalConfig {
        shards: 1,
        capacity_per_shard: 1,
        min_severity: Severity::Debug,
    };
    let record = |sink: Box<dyn vdo_trace::JournalSink>| {
        let journal = Journal::with_sink(capture, sink);
        let mut fleet = fleet_of(&catalog, scale.hosts);
        let engine = SocEngine::new(&catalog, config.clone()).expect("valid config");
        let report = engine.run_traced(
            &mut fleet,
            &SocMetrics::new(),
            &SocTracing::new(journal.clone(), 11),
        );
        journal.sync();
        report
    };
    let full_report = record(Box::new(
        DirWriter::create(&full_dir, "e19 full").expect("sink"),
    ));
    let policy = SamplingPolicy {
        keep_1_in: scale.keep_1_in,
        seed: 0x7e1e,
        ..SamplingPolicy::default()
    };
    let sink = SamplingSink::new(
        DirWriter::create(&samp_dir, "e19 sampled").expect("sink"),
        policy,
    );
    let stats = sink.stats();
    let samp_report = record(Box::new(sink));
    assert_eq!(
        full_report.incidents, samp_report.incidents,
        "sampling must not perturb the run"
    );
    let full_bytes = JournalDir::open(&full_dir)
        .and_then(|d| d.total_bytes())
        .expect("full dir");
    let samp_bytes = JournalDir::open(&samp_dir)
        .and_then(|d| d.total_bytes())
        .expect("sampled dir");
    let ratio = full_bytes as f64 / samp_bytes as f64;
    let sampled_events = JournalDir::open(&samp_dir)
        .expect("sampled dir")
        .events()
        .expect("sampled dir decodes");
    let roots: HashSet<u64> = sampled_events
        .iter()
        .filter(|(_, e)| e.name == "requirement.ingested")
        .filter_map(|(_, e)| e.trace.map(|t| t.trace_id.0))
        .collect();
    let traced: Vec<u64> = samp_report
        .incidents
        .iter()
        .filter_map(|i| i.trace.map(|t| t.trace_id.0))
        .collect();
    assert!(!traced.is_empty(), "workload must raise traced incidents");
    let resolved = traced.iter().filter(|id| roots.contains(id)).count();
    let resolution_pct = 100.0 * resolved as f64 / traced.len() as f64;
    crate::say!(
        "   sampled journal: {full_bytes} -> {samp_bytes} bytes ({ratio:.1}x, floor \
         {:.0}x), {} -> {} events, {} traces promoted",
        scale.size_ratio_floor,
        stats.seen(),
        stats.kept(),
        stats.promoted()
    );
    crate::say!(
        "   incident root resolution in the sampled cut: {resolved}/{} ({resolution_pct:.0}%)",
        traced.len()
    );
    assert!(
        (resolution_pct - 100.0).abs() < f64::EPSILON,
        "tail sampling must keep every incident chain: {resolved}/{}",
        traced.len()
    );
    let sampling_ok = ratio >= scale.size_ratio_floor;
    let _ = std::fs::remove_dir_all(&base);

    // -- Alerting: burst-overloaded tenant, bus latency. ---------------
    let mut server = Server::new(ServerConfig {
        capacity_per_round: 8,
        workers: 2,
        ..ServerConfig::default()
    });
    server.register_tenant(&TenantConfig::new("burning").with_queue_capacity(8));
    server.register_tenant(&TenantConfig::new("healthy").with_queue_capacity(4_096));
    let mut gen = LoadGen::new(LoadConfig {
        total_requests: scale.requests,
        base_rate: 6,
        burst_period: 20,
        burst_size: 200,
        ..LoadConfig::even(2, scale.requests, 6, 19)
    });
    let bus = std::sync::Arc::new(ShardedBus::new(4, 8_192));
    let journal = Journal::with_config(JournalConfig {
        shards: 4,
        capacity_per_shard: 16_384,
        min_severity: Severity::Info,
    });
    let tracing = ServerTracing::new(journal.clone(), 77).with_slo(ServerSloPolicy {
        rules: vec![admission_rule()],
        period: 1,
        bus: Some(bus.clone()),
    });
    let metrics = ServerMetrics::new();
    let report = server.run_load(&mut gen, &metrics, &tracing);
    let snap = journal.snapshot();
    let onset = snap
        .events_named("server.reject")
        .iter()
        .map(|e| e.at)
        .min()
        .expect("bursts must overload the burning tenant");
    let first_alert = report
        .slo_alerts
        .iter()
        .map(|(_, a)| a.at)
        .min()
        .expect("the burn must alert");
    let alert_latency = first_alert.saturating_sub(onset);
    let mut on_bus = 0u64;
    for shard in 0..bus.shard_count() {
        while let Some(env) = bus.pop(shard) {
            if let SecEvent::SloAlert { .. } = env.event {
                on_bus += 1;
            }
        }
    }
    assert_eq!(
        on_bus,
        report.slo_alerts.len() as u64,
        "every fired alert must reach the SOC bus"
    );
    let exemplar_buckets = metrics
        .queue_latency
        .snapshot()
        .exemplars
        .iter()
        .flatten()
        .count();
    assert!(
        exemplar_buckets > 0,
        "traced responses must leave latency exemplars"
    );
    if let Some(path) = &scale.alert_log {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let mut f = std::fs::File::create(path).expect("alert log");
        let tenant_names = ["burning", "healthy"];
        for (tenant, a) in &report.slo_alerts {
            writeln!(
                f,
                "tick={} tenant={} rule={} long_burn={:.2} short_burn={:.2} trace={:#x}",
                a.at, tenant_names[*tenant], a.rule, a.long_burn, a.short_burn, a.trace.trace_id.0
            )
            .expect("alert log line");
        }
        crate::say!(
            "   alert log: {} line(s) -> {}",
            report.slo_alerts.len(),
            path.display()
        );
    }
    crate::say!(
        "   burn onset tick {onset}, first alert tick {first_alert}: latency {alert_latency} \
         tick(s) (budget {ALERT_LATENCY_BUDGET_TICKS}); {} alert(s) on the bus, \
         {exemplar_buckets} exemplar bucket(s)",
        on_bus
    );
    let alerting_ok = alert_latency <= ALERT_LATENCY_BUDGET_TICKS;

    let within_budget = overhead_ok && sampling_ok && alerting_ok;
    crate::say!(
        "   smoke: plane {} | sampling {} | alerting {} -> within_budget={within_budget}",
        if overhead_ok { "ok" } else { "OVER" },
        if sampling_ok { "ok" } else { "UNDER" },
        if alerting_ok { "ok" } else { "LATE" },
    );

    serde::json::object([
        (
            "overhead",
            serde::json::object([
                ("plane_best_secs", Value::Float(best[0])),
                ("forensic_best_secs", Value::Float(best[1])),
                ("baseline_best_secs", Value::Float(best[2])),
                ("plane_overhead_pct", Value::Float(plane_overhead_pct)),
                ("forensic_overhead_pct", Value::Float(forensic_overhead_pct)),
                ("budget_pct", Value::Float(PLANE_OVERHEAD_BUDGET_PCT)),
                ("rounds", Value::UInt(scale.rounds as u64)),
                ("soc_slo_alerts", Value::UInt(plane_alerts)),
            ]),
        ),
        (
            "sampling",
            serde::json::object([
                ("keep_1_in", Value::UInt(scale.keep_1_in)),
                ("unsampled_bytes", Value::UInt(full_bytes)),
                ("sampled_bytes", Value::UInt(samp_bytes)),
                ("size_ratio", Value::Float(ratio)),
                ("size_ratio_floor", Value::Float(scale.size_ratio_floor)),
                ("events_seen", Value::UInt(stats.seen())),
                ("events_kept", Value::UInt(stats.kept())),
                ("traces_promoted", Value::UInt(stats.promoted())),
                ("incidents_traced", Value::UInt(traced.len() as u64)),
                ("root_resolution_pct", Value::Float(resolution_pct)),
            ]),
        ),
        (
            "alerting",
            serde::json::object([
                ("burn_onset_tick", Value::UInt(onset)),
                ("first_alert_tick", Value::UInt(first_alert)),
                ("alert_latency_ticks", Value::UInt(alert_latency)),
                (
                    "latency_budget_ticks",
                    Value::UInt(ALERT_LATENCY_BUDGET_TICKS),
                ),
                ("alerts_fired", Value::UInt(report.slo_alerts.len() as u64)),
                ("alerts_on_bus", Value::UInt(on_bus)),
                ("exemplar_buckets", Value::UInt(exemplar_buckets as u64)),
            ]),
        ),
        (
            "smoke",
            serde::json::object([
                ("overhead_ok", Value::Bool(overhead_ok)),
                ("sampling_ok", Value::Bool(sampling_ok)),
                ("alerting_ok", Value::Bool(alerting_ok)),
                ("within_budget", Value::Bool(within_budget)),
            ]),
        ),
    ])
}
