//! E18: the columnar journal + deterministic replay engine.
//!
//! One invocation records a seeded SOC run through the columnar
//! [`DirWriter`] sink and reports:
//!
//! * **write path** — events/second through the segment writer (pure
//!   encode + IO, measured by re-streaming the recorded events into a
//!   fresh directory) and bytes/event on disk against the same events
//!   rendered as JSONL, with the ≥ [`JSONL_RATIO_FLOOR`]× size
//!   advantage as the CI gate;
//! * **compaction** — a `Warn`-floor streaming compaction of the
//!   recorded directory: events and bytes in/out, the ratio, and the
//!   forensic guarantee that 100% of the live run's incidents still
//!   resolve to their `requirement.ingested` root in the compacted
//!   output (incident chains are never torn);
//! * **replay** — latency to reconstruct fleet + SOC state at the
//!   run's final checkpoint on 1/2/4 workers (each verified
//!   digest-identical to the live run) and at a single mid-run
//!   sequence number, gated by [`REPLAY_LATENCY_BUDGET_MILLIS`];
//! * the `smoke` subsection, the CI gate: size ratio, compaction
//!   root-resolution, replay byte-identity, and replay latency must
//!   all hold at once (`within_budget`).
//!
//! [`DirWriter`]: vdo_trace::DirWriter

use std::collections::HashSet;
use std::path::PathBuf;
use std::time::Instant;

use serde::json::Value;
use vdo_replay::{record, Replayer, RunSpec};
use vdo_trace::{compact, DirWriter, JournalDir, JournalSink, JournalSnapshot, Severity};

/// The pinned smoke floor: the columnar encoding must be at least this
/// many times smaller than the same events as JSONL.
pub const JSONL_RATIO_FLOOR: f64 = 3.0;

/// The pinned smoke budget for replaying to the final checkpoint (and
/// for the single replay-to-seq probe), in milliseconds. Replay
/// re-executes the deterministic simulation, so this bounds "time to
/// first answer" for a forensic what-happened-here query.
pub const REPLAY_LATENCY_BUDGET_MILLIS: f64 = 5_000.0;

/// Knobs that scale E18 between the full experiment, the CI shape, and
/// a fast test shape. All runs keep the same structure — only fleet
/// size and duration change.
#[derive(Debug, Clone)]
pub struct E18Scale {
    /// The recorded run.
    pub spec: RunSpec,
    /// Worker counts the final checkpoint is replayed on.
    pub replay_workers: Vec<usize>,
    /// Where the compacted segments are exported for the CI artifact
    /// (`None` keeps everything in the temp directory).
    pub export_dir: Option<PathBuf>,
}

impl E18Scale {
    /// The full experiment: a 128-host fleet over 500 ticks.
    #[must_use]
    pub fn full() -> Self {
        E18Scale {
            spec: RunSpec {
                seed: 11,
                trace_seed: 11,
                hosts: 128,
                duration: 500,
                drift_rate: 0.02,
                workers: 4,
                shards: 16,
                fault_rate: 0.2,
                checkpoint_period: 100,
            },
            replay_workers: vec![1, 2, 4],
            export_dir: Some(PathBuf::from("target/e18_compact")),
        }
    }

    /// The CI shape: the E14 traced-fleet workload (64 hosts, 200
    /// ticks), same assertions and gates.
    #[must_use]
    pub fn ci() -> Self {
        E18Scale {
            spec: RunSpec {
                seed: 11,
                trace_seed: 11,
                hosts: 64,
                duration: 200,
                drift_rate: 0.02,
                workers: 4,
                shards: 16,
                fault_rate: 0.2,
                checkpoint_period: 50,
            },
            replay_workers: vec![1, 2, 4],
            export_dir: Some(PathBuf::from("target/e18_compact")),
        }
    }

    /// A reduced shape for tests: a handful of hosts, identical
    /// structure and assertions, nothing exported.
    #[must_use]
    pub fn tiny() -> Self {
        E18Scale {
            spec: RunSpec {
                seed: 23,
                trace_seed: 5,
                hosts: 6,
                duration: 60,
                drift_rate: 0.05,
                workers: 2,
                shards: 8,
                fault_rate: 0.3,
                checkpoint_period: 20,
            },
            replay_workers: vec![1, 2],
            export_dir: None,
        }
    }
}

/// Runs the E18 journal + replay experiment and returns the section
/// JSON. Asserts the headline claims in-function: the columnar
/// encoding beats JSONL by the pinned factor, compaction preserves
/// every incident's root resolution, and every replay is
/// digest-identical to the live run within the latency budget.
#[must_use]
pub fn section(scale: &E18Scale) -> Value {
    crate::say!("\n== E18: columnar journal + deterministic replay ==");
    let spec = scale.spec;
    let tmp = std::env::temp_dir().join(format!("vdo-e18-{}", std::process::id()));
    let journal_dir = tmp.join("journal");
    let _ = std::fs::remove_dir_all(&tmp);

    // ---- Record the live run through the columnar sink. ----
    let t0 = Instant::now();
    let rec = record(&spec, &journal_dir).expect("recording succeeds");
    let record_secs = t0.elapsed().as_secs_f64();
    assert!(
        !rec.report.incidents.is_empty(),
        "workload must raise incidents"
    );
    let disk = JournalDir::open(&journal_dir).expect("journal dir reopens");
    let events = disk.events().expect("journal decodes");
    let columnar_bytes = disk.total_bytes().expect("segment sizes");
    let event_count = events.len() as u64;

    // ---- Write path: pure encode+IO throughput, re-streaming the
    // same events into a fresh directory. ----
    let rewrite_dir = tmp.join("rewrite");
    let t0 = Instant::now();
    let mut writer =
        DirWriter::create(&rewrite_dir, &spec.to_header()).expect("rewrite dir creates");
    for (seq, event) in &events {
        writer.record(*seq, event);
    }
    writer.flush();
    drop(writer);
    let write_secs = t0.elapsed().as_secs_f64();

    // ---- Size against JSONL over the identical event stream. ----
    let (seqs, plain): (Vec<u64>, Vec<_>) = events.iter().cloned().unzip();
    let snapshot = JournalSnapshot {
        events: plain,
        seqs,
        dropped_per_shard: Vec::new(),
    };
    let jsonl_bytes = vdo_trace::export::jsonl(&snapshot).len() as u64;
    drop(snapshot);
    #[allow(clippy::cast_precision_loss)]
    let jsonl_ratio = jsonl_bytes as f64 / columnar_bytes.max(1) as f64;
    #[allow(clippy::cast_precision_loss)]
    let write_events_per_sec = event_count as f64 / write_secs.max(f64::EPSILON);
    #[allow(clippy::cast_precision_loss)]
    let bytes_per_event = columnar_bytes as f64 / event_count.max(1) as f64;
    #[allow(clippy::cast_precision_loss)]
    let jsonl_bytes_per_event = jsonl_bytes as f64 / event_count.max(1) as f64;
    crate::say!(
        "   write: {event_count} events in {:.1} ms ({:.0} events/s pure encode+IO; \
         record incl. simulation {:.1} ms)",
        write_secs * 1e3,
        write_events_per_sec,
        record_secs * 1e3
    );
    crate::say!(
        "   size: columnar {columnar_bytes} B ({bytes_per_event:.1} B/event) vs JSONL \
         {jsonl_bytes} B ({jsonl_bytes_per_event:.1} B/event) -> {jsonl_ratio:.2}x smaller \
         (floor {JSONL_RATIO_FLOOR:.0}x)"
    );
    assert!(
        jsonl_ratio >= JSONL_RATIO_FLOOR,
        "columnar encoding must be at least {JSONL_RATIO_FLOOR}x smaller than JSONL, \
         got {jsonl_ratio:.2}x"
    );

    // ---- Compaction: Warn floor, incident chains kept whole. ----
    let compact_dir = match &scale.export_dir {
        Some(dir) => dir.clone(),
        None => tmp.join("compact"),
    };
    let _ = std::fs::remove_dir_all(&compact_dir);
    let stats = compact(
        &journal_dir,
        &compact_dir,
        Severity::Warn,
        vdo_trace::colfmt::DEFAULT_EVENTS_PER_SEGMENT,
    )
    .expect("compaction succeeds");
    let compacted = JournalDir::open(&compact_dir)
        .expect("compacted dir reopens")
        .events()
        .expect("compacted dir decodes");
    let roots: HashSet<u64> = compacted
        .iter()
        .filter(|(_, e)| e.name == "requirement.ingested")
        .filter_map(|(_, e)| e.trace.map(|t| t.trace_id.0))
        .collect();
    let traced_incidents = rec
        .report
        .incidents
        .iter()
        .filter(|i| i.trace.is_some())
        .count();
    let resolved = rec
        .report
        .incidents
        .iter()
        .filter(|i| i.trace.is_some_and(|t| roots.contains(&t.trace_id.0)))
        .count();
    #[allow(clippy::cast_precision_loss)]
    let root_resolution_pct = 100.0 * resolved as f64 / traced_incidents.max(1) as f64;
    crate::say!(
        "   compaction: {} -> {} events, {} -> {} B ({:.2}x), {} protected traces; \
         incident root resolution {resolved}/{traced_incidents} ({root_resolution_pct:.0}%)",
        stats.events_in,
        stats.events_out,
        stats.bytes_in,
        stats.bytes_out,
        stats.ratio(),
        stats.protected_traces
    );
    assert!(
        traced_incidents > 0 && resolved == traced_incidents,
        "compaction must preserve every incident's root-resolution chain \
         ({resolved}/{traced_incidents})"
    );

    // ---- Replay: final checkpoint on each worker count, verified. ----
    let replayer = Replayer::open(&journal_dir).expect("replayer opens");
    let last = replayer.checkpoints().len() - 1;
    let mut replay_rows = Vec::new();
    let mut max_replay_millis = 0.0_f64;
    for &workers in &scale.replay_workers {
        let t0 = Instant::now();
        let cp = replayer.replay_to_checkpoint(last, Some(workers));
        let millis = t0.elapsed().as_secs_f64() * 1e3;
        max_replay_millis = max_replay_millis.max(millis);
        crate::say!(
            "   replay: checkpoint @{} on {workers} worker(s) in {millis:.1} ms \
             (journal match: {}, verdict match: {})",
            cp.checkpoint.tick,
            cp.journal_match,
            cp.verdict_match
        );
        assert!(
            cp.journal_match && cp.verdict_match,
            "replay on {workers} worker(s) must be digest-identical to the live run"
        );
        replay_rows.push(serde::json::object([
            ("workers", Value::UInt(workers as u64)),
            ("tick", Value::UInt(cp.checkpoint.tick)),
            ("events", Value::UInt(cp.checkpoint.events)),
            ("millis", Value::Float(millis)),
            ("journal_match", Value::Bool(cp.journal_match)),
            ("verdict_match", Value::Bool(cp.verdict_match)),
        ]));
    }

    // ---- Replay-to-seq: one mid-run probe through the block index. ----
    let mid_seq = events[events.len() / 2].0;
    let t0 = Instant::now();
    let outcome = replayer
        .replay_to_seq(mid_seq, Some(1))
        .expect("mid-run seq replays");
    let seq_millis = t0.elapsed().as_secs_f64() * 1e3;
    crate::say!(
        "   replay-to-seq: seq {mid_seq} -> state after tick {} in {seq_millis:.1} ms",
        outcome.tick.saturating_sub(1)
    );

    // ---- Smoke: the CI budget gate. ----
    let replay_identical = replay_rows.len() == scale.replay_workers.len();
    let within_budget = jsonl_ratio >= JSONL_RATIO_FLOOR
        && resolved == traced_incidents
        && replay_identical
        && max_replay_millis <= REPLAY_LATENCY_BUDGET_MILLIS
        && seq_millis <= REPLAY_LATENCY_BUDGET_MILLIS;
    crate::say!(
        "   smoke: ratio {jsonl_ratio:.2}x (floor {JSONL_RATIO_FLOOR:.0}x), root resolution \
         {root_resolution_pct:.0}%, max replay {max_replay_millis:.1} ms (budget \
         {REPLAY_LATENCY_BUDGET_MILLIS:.0} ms) -> within_budget={within_budget}"
    );
    assert!(within_budget, "E18 smoke gate failed");
    if let Some(dir) = &scale.export_dir {
        crate::say!("   exported compacted segments to {}", dir.display());
    }

    let _ = std::fs::remove_dir_all(&tmp);
    serde::json::object([
        (
            "write",
            serde::json::object([
                ("events", Value::UInt(event_count)),
                ("record_secs", Value::Float(record_secs)),
                ("write_secs", Value::Float(write_secs)),
                ("events_per_sec", Value::Float(write_events_per_sec)),
            ]),
        ),
        (
            "size",
            serde::json::object([
                ("columnar_bytes", Value::UInt(columnar_bytes)),
                ("jsonl_bytes", Value::UInt(jsonl_bytes)),
                ("bytes_per_event", Value::Float(bytes_per_event)),
                ("jsonl_bytes_per_event", Value::Float(jsonl_bytes_per_event)),
                ("jsonl_ratio", Value::Float(jsonl_ratio)),
                ("ratio_floor", Value::Float(JSONL_RATIO_FLOOR)),
            ]),
        ),
        (
            "compaction",
            serde::json::object([
                ("events_in", Value::UInt(stats.events_in)),
                ("events_out", Value::UInt(stats.events_out)),
                ("bytes_in", Value::UInt(stats.bytes_in)),
                ("bytes_out", Value::UInt(stats.bytes_out)),
                ("ratio", Value::Float(stats.ratio())),
                ("protected_traces", Value::UInt(stats.protected_traces)),
                ("incidents", Value::UInt(traced_incidents as u64)),
                ("roots_resolved", Value::UInt(resolved as u64)),
                ("root_resolution_pct", Value::Float(root_resolution_pct)),
            ]),
        ),
        ("replay", Value::Array(replay_rows)),
        (
            "replay_to_seq",
            serde::json::object([
                ("seq", Value::UInt(mid_seq)),
                ("millis", Value::Float(seq_millis)),
            ]),
        ),
        (
            "smoke",
            serde::json::object([
                ("jsonl_ratio", Value::Float(jsonl_ratio)),
                ("ratio_floor", Value::Float(JSONL_RATIO_FLOOR)),
                ("root_resolution_pct", Value::Float(root_resolution_pct)),
                ("max_replay_millis", Value::Float(max_replay_millis)),
                ("replay_to_seq_millis", Value::Float(seq_millis)),
                (
                    "replay_budget_millis",
                    Value::Float(REPLAY_LATENCY_BUDGET_MILLIS),
                ),
                ("within_budget", Value::Bool(within_budget)),
            ]),
        ),
    ])
}
