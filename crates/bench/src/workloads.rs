//! Workload constructors shared by the Criterion benches and the
//! `exp_report` binary. Every experiment in EXPERIMENTS.md names the
//! function here that builds its input, so the published numbers are
//! regenerable from one place.

use vdo_corpus::requirements::{generate, Corpus, CorpusConfig};
use vdo_corpus::traces::{throttle_log, ViolationTrace};
use vdo_gwt::GraphModel;
use vdo_specpat::Kripke;
use vdo_tears::SignalTrace;

/// E1/E2/A1 — requirement corpus of `size` documents with 25 % planted
/// smells.
#[must_use]
pub fn corpus(size: usize) -> Corpus {
    generate(&CorpusConfig {
        size,
        smell_rate: 0.25,
        seed: 7,
    })
}

/// E4/A2 — invariant-violation trace of `len` ticks with the violation
/// planted at 60 % of the way in.
#[must_use]
pub fn violation_trace(len: u64) -> ViolationTrace {
    ViolationTrace::at(len, len * 6 / 10)
}

/// E6 — propositional response trace of `len` ticks: a trigger every 50
/// ticks answered after 3 (satisfies `bounded_response(p, s, 10)`).
#[must_use]
pub fn response_observations(len: usize) -> Vec<std::collections::BTreeSet<String>> {
    (0..len)
        .map(|t| {
            let mut set = std::collections::BTreeSet::new();
            if t % 50 == 0 {
                set.insert("p".to_string());
            }
            if t % 50 == 3 {
                set.insert("s".to_string());
            }
            set
        })
        .collect()
}

/// E7 — a ring-of-`n` Kripke structure with `p` everywhere and `q` on
/// one state (worst-case-ish EU/EG fixpoints still terminate quickly;
/// the sweep measures scaling, not pathology).
#[must_use]
pub fn ring_kripke(n: usize) -> Kripke {
    let mut k = Kripke::new();
    for i in 0..n {
        if i == n / 2 {
            k.add_state(["p", "q"]);
        } else {
            k.add_state(["p"]);
        }
    }
    for i in 0..n {
        k.add_transition(i, (i + 1) % n);
        // A chord per eight states makes the structure non-trivially
        // branching.
        if i % 8 == 0 {
            k.add_transition(i, (i + n / 2) % n);
        }
    }
    k.set_initial(0);
    k
}

/// E8 — a ring-with-branches model of roughly `n` vertices.
#[must_use]
pub fn branched_model(n: usize) -> GraphModel {
    let mut m = GraphModel::new(format!("branched_{n}"));
    for i in 0..n {
        m.add_vertex(format!("s{i}"));
    }
    for i in 0..n {
        m.add_edge(i, (i + 1) % n, format!("step{i}"));
    }
    for i in (0..n).step_by(5) {
        let leaf = m.add_vertex(format!("leaf{i}"));
        m.add_edge(i, leaf, format!("enter{i}"));
        m.add_edge(leaf, i, format!("exit{i}"));
    }
    m.set_start(0);
    m
}

/// E9 — TEARS signal trace of `len` ticks with 5 planted faults.
#[must_use]
pub fn tears_trace(len: u64) -> SignalTrace {
    let (rows, _) = throttle_log(len, 1, 5, 13);
    let mut trace = SignalTrace::new();
    for (load, throttled) in rows {
        trace.push_sample([("load", load), ("throttled", throttled)]);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shapes() {
        assert_eq!(corpus(10).documents.len(), 10);
        let vt = violation_trace(100);
        assert_eq!(vt.violation_tick, 60);
        assert_eq!(response_observations(100).len(), 100);
        let k = ring_kripke(32);
        assert!(k.is_total());
        let m = branched_model(20);
        assert!(m.edge_count() > 20);
        assert_eq!(tears_trace(500).len(), 500);
    }
}
