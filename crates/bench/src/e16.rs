//! E16: million-host fleets on the columnar store.
//!
//! One invocation exercises the copy-on-write [`FleetStore`] and the
//! vectorized [`FleetAuditor`] sweep end to end and reports:
//!
//! * the memory curve: amortized bytes per host at each fleet size,
//!   against the per-host-struct baseline (`UnixHost::approx_bytes` of
//!   the shared image), with the compression ratio the columnar layout
//!   achieves;
//! * the closed loop at the headline size: generate → initial sweep →
//!   per-tick drift through host views → dirty-set incremental refresh
//!   → targeted enforcement, with per-tick latency and the cost of a
//!   brute-force full rescan for contrast;
//! * the determinism check: the concatenated per-tick verdict logs are
//!   byte-identical across refresh worker counts for equal seeds;
//! * the `smoke` subsection, the CI gate: a fixed-size run whose
//!   bytes/host, memory ratio, and worst tick latency must stay within
//!   the pinned budgets below.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::json::Value;
use vdo_host::{DriftInjector, FleetConfig, FleetStore, Platform};
use vdo_stigs::sweep::FleetAuditor;

/// The pinned memory budget for the smoke run: amortized bytes per
/// host across baseline, interner, overlays, and dirty set. The
/// owned-struct layout costs a few kilobytes per host; the columnar
/// store amortizes the shared image, so even with 1% of hosts drifted
/// the per-host cost stays two orders of magnitude lower.
pub const SMOKE_BYTES_PER_HOST_BUDGET: f64 = 256.0;

/// The pinned compression floor: the columnar store must be at least
/// this many times cheaper per host than one owned `UnixHost` struct.
pub const SMOKE_MEMORY_RATIO_FLOOR: f64 = 10.0;

/// The pinned round-latency budget for one smoke tick (drift burst +
/// dirty-set refresh + targeted enforcement), in milliseconds. The
/// incremental refresh touches only dirty hosts, so a tick is
/// micro-seconds of real work; 250 ms absorbs arbitrarily noisy CI.
pub const SMOKE_TICK_MILLIS_BUDGET: f64 = 250.0;

/// Knobs that scale E16 between the full experiment, the CI shape,
/// and a fast test shape. All runs keep the same structure — only
/// fleet sizes and tick counts change.
#[derive(Debug, Clone)]
pub struct E16Scale {
    /// Fleet sizes for the memory curve.
    pub curve_sizes: Vec<usize>,
    /// Hosts in the headline closed-loop run.
    pub main_hosts: usize,
    /// Drift/refresh/enforce ticks in the closed loop.
    pub ticks: usize,
    /// Drift victims per tick (duplicates collapse into the dirty set).
    pub drift_per_tick: usize,
    /// Hosts in the worker-count determinism check.
    pub determinism_hosts: usize,
    /// Ticks per worker count in the determinism check.
    pub determinism_ticks: usize,
    /// Hosts in the budget smoke run (the CI gate).
    pub smoke_hosts: usize,
    /// Ticks in the smoke run.
    pub smoke_ticks: usize,
}

impl E16Scale {
    /// The full experiment: the memory curve tops out at one million
    /// hosts and the closed loop runs at that size.
    #[must_use]
    pub fn full() -> Self {
        E16Scale {
            curve_sizes: vec![100_000, 250_000, 500_000, 1_000_000],
            main_hosts: 1_000_000,
            ticks: 8,
            drift_per_tick: 1024,
            determinism_hosts: 50_000,
            determinism_ticks: 4,
            smoke_hosts: 100_000,
            smoke_ticks: 4,
        }
    }

    /// The CI shape: the same sections with the closed loop at one
    /// hundred thousand hosts, so the gate finishes in seconds.
    #[must_use]
    pub fn ci() -> Self {
        E16Scale {
            curve_sizes: vec![10_000, 50_000, 100_000],
            main_hosts: 100_000,
            ticks: 8,
            drift_per_tick: 256,
            determinism_hosts: 20_000,
            determinism_ticks: 4,
            smoke_hosts: 100_000,
            smoke_ticks: 4,
        }
    }

    /// A reduced shape for tests: hundreds of hosts, identical
    /// structure and assertions.
    #[must_use]
    pub fn tiny() -> Self {
        E16Scale {
            curve_sizes: vec![100, 400],
            main_hosts: 400,
            ticks: 3,
            drift_per_tick: 8,
            determinism_hosts: 200,
            determinism_ticks: 2,
            smoke_hosts: 300,
            smoke_ticks: 2,
        }
    }
}

/// The fleet configuration every E16 run uses: 1% of hosts drifted at
/// generation, four events each, Unix platform.
fn fleet_config(size: usize, seed: u64) -> FleetConfig {
    FleetConfig::builder()
        .size(size)
        .drift_probability(0.01)
        .drift_events_per_host(4)
        .seed(seed)
        .platform(Platform::Unix)
        .build()
        .expect("valid fleet config")
}

/// One memory-curve measurement.
struct CurvePoint {
    hosts: usize,
    drifted: usize,
    overlay_entries: usize,
    bytes_per_host: f64,
    legacy_bytes_per_host: f64,
    ratio: f64,
    generate_secs: f64,
}

fn measure_curve_point(size: usize) -> CurvePoint {
    let t = Instant::now();
    let store = FleetStore::generate(&fleet_config(size, 42));
    let generate_secs = t.elapsed().as_secs_f64();
    let profile = store.memory_profile();
    let bytes_per_host = profile.bytes_per_host(size);
    #[allow(clippy::cast_precision_loss)]
    let legacy_bytes_per_host = store.baseline_unix().expect("unix baseline").approx_bytes() as f64;
    CurvePoint {
        hosts: size,
        drifted: store.drifted_count(),
        overlay_entries: profile.overlay_entries,
        bytes_per_host,
        legacy_bytes_per_host,
        ratio: legacy_bytes_per_host / bytes_per_host.max(f64::EPSILON),
        generate_secs,
    }
}

/// The per-run outcome of the closed loop.
struct LoopRun {
    initial_sweep_secs: f64,
    tick_millis: Vec<f64>,
    enforcements: usize,
    /// Hosts the drift ticks touched.
    touched_hosts: usize,
    /// Every touched host ends the run fully compliant.
    touched_compliant: bool,
    /// Failing (host, check) pairs fleet-wide at the end — untouched
    /// hosts keep the stock image's baseline debt, so this stays
    /// proportional to the fleet, not to the drift.
    open_violations: u64,
    /// All verdict lines emitted across ticks, newline-joined.
    verdict_log: String,
}

/// Runs the drift → dirty-set refresh → enforce loop at `size` hosts
/// for `ticks` ticks with `workers` refresh workers. Victim selection
/// and drift events are seeded independently of the worker count, so
/// equal seeds must produce byte-identical verdict logs.
fn closed_loop(size: usize, ticks: usize, drift_per_tick: usize, workers: usize) -> LoopRun {
    let mut store = FleetStore::generate(&fleet_config(size, 42));
    let t = Instant::now();
    let mut auditor = FleetAuditor::new(&store);
    let initial_sweep_secs = t.elapsed().as_secs_f64();

    let mut victims = StdRng::seed_from_u64(0xE16);
    let mut injector = DriftInjector::new(777);
    let mut tick_millis = Vec::with_capacity(ticks);
    let mut enforcements = 0usize;
    let mut touched = std::collections::BTreeSet::new();
    let mut log = String::new();
    for _ in 0..ticks {
        let t = Instant::now();
        for _ in 0..drift_per_tick {
            let h = victims.gen_range(0..size);
            injector.drift(&mut store.host_mut(h), Platform::Unix, 1);
        }
        let dirty = store.take_dirty();
        touched.extend(dirty.iter().copied());
        auditor.refresh_with_workers(&store, &dirty, workers);
        for line in auditor.verdict_lines(&dirty) {
            log.push_str(&line);
            log.push('\n');
        }
        for &h in &dirty {
            if !auditor.host_compliant(h as usize) {
                enforcements += auditor.enforce_host(&mut store, h);
            }
        }
        // Enforcement dirties the hosts it heals; fold those updates in
        // so the auditor state ends the tick consistent with the store.
        let healed = store.take_dirty();
        auditor.refresh_with_workers(&store, &healed, workers);
        tick_millis.push(t.elapsed().as_secs_f64() * 1_000.0);
    }
    let touched_compliant = touched.iter().all(|&h| auditor.host_compliant(h as usize));
    LoopRun {
        initial_sweep_secs,
        tick_millis,
        enforcements,
        touched_hosts: touched.len(),
        touched_compliant,
        open_violations: auditor.total_violations(),
        verdict_log: log,
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let n = xs.len() as f64;
    xs.iter().sum::<f64>() / n
}

fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// Runs the E16 fleet-scale experiment and returns the section JSON.
///
/// Prints the human-readable tables along the way and asserts the
/// headline claims in-function: the memory ratio stays above
/// [`SMOKE_MEMORY_RATIO_FLOOR`] at every measured size of ten thousand
/// hosts or more, verdict logs are byte-identical across worker
/// counts, and the smoke run stays within every pinned budget.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn section(scale: &E16Scale) -> Value {
    crate::say!("== E16: million-host fleets on the columnar store ==\n");

    // ---- Memory curve ----
    crate::say!(
        "{:>10} {:>9} {:>9} {:>12} {:>12} {:>8} {:>9}",
        "HOSTS",
        "DRIFTED",
        "OVERLAYS",
        "BYTES/HOST",
        "LEGACY B/H",
        "RATIO",
        "GEN(s)"
    );
    let mut curve = Vec::new();
    for &size in &scale.curve_sizes {
        let p = measure_curve_point(size);
        crate::say!(
            "{:>10} {:>9} {:>9} {:>12.1} {:>12.1} {:>7.0}x {:>9.3}",
            p.hosts,
            p.drifted,
            p.overlay_entries,
            p.bytes_per_host,
            p.legacy_bytes_per_host,
            p.ratio,
            p.generate_secs
        );
        if size >= 10_000 {
            assert!(
                p.ratio >= SMOKE_MEMORY_RATIO_FLOOR,
                "columnar store must be >= {SMOKE_MEMORY_RATIO_FLOOR}x cheaper than \
                 per-host structs at {size} hosts, measured {:.1}x",
                p.ratio
            );
        }
        curve.push(p);
    }

    // ---- Closed loop at the headline size ----
    let run = closed_loop(scale.main_hosts, scale.ticks, scale.drift_per_tick, 4);
    let store = FleetStore::generate(&fleet_config(scale.main_hosts, 42));
    let mut auditor = FleetAuditor::new(&store);
    let t = Instant::now();
    auditor.rescan_full(&store);
    let full_rescan_secs = t.elapsed().as_secs_f64();
    drop(store);
    crate::say!(
        "\nclosed loop: {} hosts, {} ticks x {} drift events",
        scale.main_hosts,
        scale.ticks,
        scale.drift_per_tick
    );
    crate::say!("  initial sweep   {:>9.3} s", run.initial_sweep_secs);
    crate::say!("  full rescan     {full_rescan_secs:>9.3} s (brute force, for contrast)");
    crate::say!(
        "  tick latency    {:>9.3} ms mean, {:.3} ms max",
        mean(&run.tick_millis),
        max(&run.tick_millis)
    );
    crate::say!(
        "  enforcements    {:>9}   touched hosts {} (all compliant: {})   \
         open baseline violations {}",
        run.enforcements,
        run.touched_hosts,
        run.touched_compliant,
        run.open_violations
    );
    assert!(
        run.touched_compliant,
        "every host the loop drifted and enforced must end fully compliant"
    );

    // ---- Determinism across refresh worker counts ----
    let workers = [1usize, 2, 4];
    let runs: Vec<LoopRun> = workers
        .iter()
        .map(|&w| {
            closed_loop(
                scale.determinism_hosts,
                scale.determinism_ticks,
                scale.drift_per_tick.min(scale.determinism_hosts / 4).max(1),
                w,
            )
        })
        .collect();
    let identical = runs.iter().all(|r| r.verdict_log == runs[0].verdict_log);
    crate::say!(
        "\ndeterminism: {} hosts, workers {:?}: verdict logs {} ({} bytes)",
        scale.determinism_hosts,
        workers,
        if identical {
            "byte-identical"
        } else {
            "DIVERGED"
        },
        runs[0].verdict_log.len()
    );
    assert!(
        identical,
        "verdict logs must be byte-identical across refresh worker counts"
    );

    // ---- Smoke: the CI budget gate ----
    let smoke_store = FleetStore::generate(&fleet_config(scale.smoke_hosts, 42));
    let smoke_profile = smoke_store.memory_profile();
    let smoke_bph = smoke_profile.bytes_per_host(scale.smoke_hosts);
    #[allow(clippy::cast_precision_loss)]
    let smoke_legacy = smoke_store
        .baseline_unix()
        .expect("unix baseline")
        .approx_bytes() as f64;
    let smoke_ratio = smoke_legacy / smoke_bph.max(f64::EPSILON);
    drop(smoke_store);
    let smoke_run = closed_loop(
        scale.smoke_hosts,
        scale.smoke_ticks,
        scale.drift_per_tick.min(scale.smoke_hosts / 4).max(1),
        4,
    );
    let smoke_max_tick = max(&smoke_run.tick_millis);
    let within_budget = smoke_bph <= SMOKE_BYTES_PER_HOST_BUDGET
        && smoke_ratio >= SMOKE_MEMORY_RATIO_FLOOR
        && smoke_max_tick <= SMOKE_TICK_MILLIS_BUDGET;
    crate::say!(
        "\nsmoke: {} hosts | {:.1} bytes/host (budget {}) | ratio {:.0}x (floor {}) | \
         max tick {:.3} ms (budget {}) -> within_budget={}",
        scale.smoke_hosts,
        smoke_bph,
        SMOKE_BYTES_PER_HOST_BUDGET,
        smoke_ratio,
        SMOKE_MEMORY_RATIO_FLOOR,
        smoke_max_tick,
        SMOKE_TICK_MILLIS_BUDGET,
        within_budget
    );
    assert!(
        within_budget,
        "smoke run must stay within the pinned budgets: {smoke_bph:.1} bytes/host \
         (<= {SMOKE_BYTES_PER_HOST_BUDGET}), ratio {smoke_ratio:.1}x \
         (>= {SMOKE_MEMORY_RATIO_FLOOR}), max tick {smoke_max_tick:.3} ms \
         (<= {SMOKE_TICK_MILLIS_BUDGET})"
    );
    crate::say!();

    #[allow(clippy::cast_precision_loss)]
    serde::json::object([
        (
            "memory_curve",
            Value::Array(
                curve
                    .iter()
                    .map(|p| {
                        serde::json::object([
                            ("hosts", Value::UInt(p.hosts as u64)),
                            ("drifted", Value::UInt(p.drifted as u64)),
                            ("overlay_entries", Value::UInt(p.overlay_entries as u64)),
                            ("bytes_per_host", Value::Float(p.bytes_per_host)),
                            (
                                "legacy_bytes_per_host",
                                Value::Float(p.legacy_bytes_per_host),
                            ),
                            ("ratio", Value::Float(p.ratio)),
                            ("generate_secs", Value::Float(p.generate_secs)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "closed_loop",
            serde::json::object([
                ("hosts", Value::UInt(scale.main_hosts as u64)),
                ("ticks", Value::UInt(scale.ticks as u64)),
                ("drift_per_tick", Value::UInt(scale.drift_per_tick as u64)),
                ("initial_sweep_secs", Value::Float(run.initial_sweep_secs)),
                ("full_rescan_secs", Value::Float(full_rescan_secs)),
                ("mean_tick_millis", Value::Float(mean(&run.tick_millis))),
                ("max_tick_millis", Value::Float(max(&run.tick_millis))),
                ("enforcements", Value::UInt(run.enforcements as u64)),
                ("touched_hosts", Value::UInt(run.touched_hosts as u64)),
                ("touched_compliant", Value::Bool(run.touched_compliant)),
                ("open_violations", Value::UInt(run.open_violations)),
            ]),
        ),
        (
            "determinism",
            serde::json::object([
                ("hosts", Value::UInt(scale.determinism_hosts as u64)),
                ("ticks", Value::UInt(scale.determinism_ticks as u64)),
                (
                    "workers",
                    Value::Array(workers.iter().map(|&w| Value::UInt(w as u64)).collect()),
                ),
                (
                    "verdict_bytes",
                    Value::UInt(runs[0].verdict_log.len() as u64),
                ),
                ("identical", Value::Bool(identical)),
            ]),
        ),
        (
            "smoke",
            serde::json::object([
                ("hosts", Value::UInt(scale.smoke_hosts as u64)),
                ("ticks", Value::UInt(scale.smoke_ticks as u64)),
                ("bytes_per_host", Value::Float(smoke_bph)),
                ("bytes_budget", Value::Float(SMOKE_BYTES_PER_HOST_BUDGET)),
                ("memory_ratio", Value::Float(smoke_ratio)),
                ("ratio_floor", Value::Float(SMOKE_MEMORY_RATIO_FLOOR)),
                ("max_tick_millis", Value::Float(smoke_max_tick)),
                ("tick_budget_millis", Value::Float(SMOKE_TICK_MILLIS_BUDGET)),
                ("within_budget", Value::Bool(within_budget)),
            ]),
        ),
    ])
}
