//! E17: incremental cross-artifact analysis at catalogue scale.
//!
//! One invocation seeds catalogues of growing size into the
//! [`IncrementalAnalyzer`], replays a stream of small commits (each
//! touching about 1% of the requirement entries plus a slice of their
//! monitor formulas), and reports:
//!
//! * the latency curve: the full batch gate (a fresh
//!   [`Analyzer::analyze_all`] over the whole catalogue) against the
//!   mean incremental re-gate at each size, with the speedup and the
//!   memo-table hit/miss traffic;
//! * the equivalence check: after every commit the incremental report
//!   must be bit-identical (diagnostics and rendered listing) to a
//!   batch run over the materialised state;
//! * the `smoke` subsection, the CI gate: at the pinned catalogue size
//!   a 1%-touch commit must re-gate in at most
//!   [`SMOKE_LATENCY_FRACTION_BUDGET`] of the full-run latency.
//!
//! [`IncrementalAnalyzer`]: vdo_analyze::IncrementalAnalyzer
//! [`Analyzer::analyze_all`]: vdo_analyze::Analyzer::analyze_all

use std::time::Instant;

use serde::json::Value;
use vdo_analyze::{
    AnalysisConfig, Analyzer, ArtifactDelta, EntryArtifact, IncrementalAnalyzer, ReqExpr,
};
use vdo_temporal::Formula;

/// The pinned smoke budget: the mean incremental re-gate after a
/// 1%-touch commit must cost at most this fraction of one full batch
/// analysis over the same catalogue. The dirty slice is two orders of
/// magnitude smaller than the catalogue, so 10% absorbs the list-level
/// lints that legitimately rescan every entry id.
pub const SMOKE_LATENCY_FRACTION_BUDGET: f64 = 0.10;

/// Knobs that scale E17 between the full experiment, the CI shape, and
/// a fast test shape. All runs keep the same structure — only catalogue
/// sizes and commit counts change.
#[derive(Debug, Clone)]
pub struct E17Scale {
    /// Catalogue sizes (requirement entries) for the latency curve.
    pub curve_entries: Vec<usize>,
    /// Commits replayed against each curve catalogue.
    pub commits: usize,
    /// Entries in the budget smoke run (the CI gate).
    pub smoke_entries: usize,
    /// Commits in the smoke run.
    pub smoke_commits: usize,
}

impl E17Scale {
    /// The full experiment: the curve tops out at ten thousand
    /// requirements and the smoke gate runs at that size.
    #[must_use]
    pub fn full() -> Self {
        E17Scale {
            curve_entries: vec![1_000, 2_500, 5_000, 10_000],
            commits: 20,
            smoke_entries: 10_000,
            smoke_commits: 20,
        }
    }

    /// The CI shape: a shorter curve, but the smoke gate still runs at
    /// the headline ten-thousand-requirement size.
    #[must_use]
    pub fn ci() -> Self {
        E17Scale {
            curve_entries: vec![1_000, 2_500],
            commits: 10,
            smoke_entries: 10_000,
            smoke_commits: 10,
        }
    }

    /// A reduced shape for tests: hundreds of entries, identical
    /// structure and assertions.
    #[must_use]
    pub fn tiny() -> Self {
        E17Scale {
            curve_entries: vec![200, 600],
            commits: 4,
            smoke_entries: 1_000,
            smoke_commits: 4,
        }
    }
}

/// The `rev`-th edition of requirement `i`: a clean entry whose atoms
/// are unique to the (entry, revision) pair, so every edit moves the
/// fingerprint and no two entries ever share an expression.
fn clean_entry(i: usize, rev: usize) -> EntryArtifact {
    EntryArtifact::new(format!("REQ-{i:05}"))
        .package(format!("pkg{}", i % 7))
        .title(format!("requirement {i} rev {rev}"))
        .expr(ReqExpr::all_of([
            ReqExpr::atom(format!("cfg_{i}_{rev}")),
            ReqExpr::not(ReqExpr::atom(format!("weak_{i}_{rev}"))),
        ]))
}

/// The `rev`-th edition of the monitor formula attached to requirement
/// `i`: a clean response property, never contradictory or vacuous.
fn clean_formula(i: usize, rev: usize) -> Formula {
    Formula::globally(Formula::implies(
        Formula::atom(format!("p_{i}_{rev}")),
        Formula::finally(Formula::atom(format!("q_{i}_{rev}"))),
    ))
}

/// Seeds a clean catalogue: `entries` dev-covered requirements with
/// distinct expressions, a monitor formula on every third entry, and a
/// sparse sprinkling of behaviour models and guarded assertions.
pub fn catalogue(entries: usize) -> ArtifactDelta {
    let mut delta = ArtifactDelta::new();
    for i in 0..entries {
        let e = clean_entry(i, 0);
        let id = e.finding_id.clone();
        delta = delta.with_entry(e).cover_dev(id);
        if i.is_multiple_of(3) {
            delta = delta.with_formula(format!("f-{i}"), clean_formula(i, 0));
        }
        if i.is_multiple_of(251) {
            let mut m = vdo_gwt::GraphModel::new(format!("m-{i}"));
            let a = m.add_vertex("given");
            let b = m.add_vertex("then");
            m.add_edge(a, b, "when");
            m.set_start(a);
            delta = delta.with_model(m);
        }
        if i.is_multiple_of(173) {
            delta = delta.with_assertion(vdo_tears::GuardedAssertion::new(
                format!("ga-{i}"),
                vdo_tears::Expr::parse("load > 90").expect("guard parses"),
                vdo_tears::Expr::parse("throttled == 1").expect("assertion parses"),
                5,
            ));
        }
    }
    delta
}

/// One commit against an `entries`-sized catalogue: `touched` entries
/// revised round-robin (so successive commits hit different slices),
/// and the monitor formula of every revised third entry revised with
/// it.
pub fn commit(entries: usize, touched: usize, step: usize) -> ArtifactDelta {
    let mut delta = ArtifactDelta::new();
    for j in 0..touched {
        let i = (step * touched + j) % entries;
        delta = delta.with_entry(clean_entry(i, step + 1));
        if i.is_multiple_of(3) {
            delta = delta.with_formula(format!("f-{i}"), clean_formula(i, step + 1));
        }
    }
    delta
}

/// The measured outcome at one catalogue size.
struct SizeRun {
    entries: usize,
    artifacts: usize,
    touched: usize,
    commits: usize,
    full_millis: f64,
    incr_mean_millis: f64,
    incr_max_millis: f64,
    speedup: f64,
    mean_dirty_units: f64,
    hits: u64,
    misses: u64,
    reports_identical: bool,
}

/// Seeds a catalogue, measures one full batch gate (best of three
/// single-thread runs), then replays `commits` 1%-touch commits through
/// the incremental engine, timing each apply and checking bit-identity
/// against a fresh batch run after every step.
fn measure(entries: usize, commits: usize) -> SizeRun {
    let config = AnalysisConfig::default();
    let mut inc = IncrementalAnalyzer::new(config.clone());
    let batch = Analyzer::new(config);
    inc.apply(&catalogue(entries), 4);
    let set = inc.artifacts();
    let artifacts =
        set.entries.len() + set.formulas.len() + set.models.len() + set.assertions.len();

    let mut full_millis = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let report = batch.analyze_all(&set, 1);
        full_millis = full_millis.min(t.elapsed().as_secs_f64() * 1e3);
        assert!(report.is_clean(), "the seeded catalogue must be clean");
    }
    drop(set);

    let touched = (entries / 100).max(1);
    let before = inc.stats();
    let mut tick_millis = Vec::with_capacity(commits);
    let mut identical = true;
    for step in 0..commits {
        let delta = commit(entries, touched, step);
        let t = Instant::now();
        let report = inc.apply(&delta, 1);
        tick_millis.push(t.elapsed().as_secs_f64() * 1e3);
        let full = batch.analyze_all(&inc.artifacts(), 1);
        identical = identical
            && report.diagnostics == full.diagnostics
            && report.listing() == full.listing();
    }
    let stats = inc.stats();
    let incr_mean_millis = tick_millis.iter().sum::<f64>() / tick_millis.len().max(1) as f64;
    let incr_max_millis = tick_millis.iter().copied().fold(0.0, f64::max);
    #[allow(clippy::cast_precision_loss)]
    SizeRun {
        entries,
        artifacts,
        touched,
        commits,
        full_millis,
        incr_mean_millis,
        incr_max_millis,
        speedup: full_millis / incr_mean_millis.max(f64::EPSILON),
        mean_dirty_units: (stats.dirty_units - before.dirty_units) as f64 / commits.max(1) as f64,
        hits: stats.hits - before.hits,
        misses: stats.misses - before.misses,
        reports_identical: identical,
    }
}

/// Runs the E17 incremental-analysis experiment and returns the
/// section JSON.
///
/// Prints the latency table along the way and asserts the headline
/// claims in-function: the incremental report is bit-identical to the
/// batch report after every commit at every size, and the smoke run
/// re-gates within [`SMOKE_LATENCY_FRACTION_BUDGET`] of the full
/// batch latency.
#[must_use]
pub fn section(scale: &E17Scale) -> Value {
    crate::say!("== E17: incremental cross-artifact analysis at catalogue scale ==\n");
    crate::say!(
        "{:>8} {:>10} {:>6} {:>10} {:>11} {:>10} {:>8} {:>12} {:>7} {:>7}",
        "ENTRIES",
        "ARTIFACTS",
        "TOUCH",
        "FULL(ms)",
        "INCR(ms)",
        "MAX(ms)",
        "SPEEDUP",
        "DIRTY/COMMIT",
        "HITS",
        "MISSES"
    );
    let mut curve = Vec::new();
    for &entries in &scale.curve_entries {
        let run = measure(entries, scale.commits);
        crate::say!(
            "{:>8} {:>10} {:>6} {:>10.3} {:>11.3} {:>10.3} {:>7.0}x {:>12.1} {:>7} {:>7}",
            run.entries,
            run.artifacts,
            run.touched,
            run.full_millis,
            run.incr_mean_millis,
            run.incr_max_millis,
            run.speedup,
            run.mean_dirty_units,
            run.hits,
            run.misses
        );
        assert!(
            run.reports_identical,
            "incremental and batch reports diverged at {entries} entries"
        );
        curve.push(run);
    }

    // ---- Smoke: the CI budget gate ----
    let smoke = measure(scale.smoke_entries, scale.smoke_commits);
    let fraction = smoke.incr_mean_millis / smoke.full_millis.max(f64::EPSILON);
    let within_budget = fraction <= SMOKE_LATENCY_FRACTION_BUDGET && smoke.reports_identical;
    crate::say!(
        "\nsmoke: {} entries, {} commits touching {} each | full {:.3} ms, incremental \
         {:.3} ms mean ({:.1}% of full, budget {:.0}%) | reports identical: {} -> \
         within_budget={}",
        smoke.entries,
        smoke.commits,
        smoke.touched,
        smoke.full_millis,
        smoke.incr_mean_millis,
        100.0 * fraction,
        100.0 * SMOKE_LATENCY_FRACTION_BUDGET,
        smoke.reports_identical,
        within_budget
    );
    assert!(
        within_budget,
        "smoke run must re-gate within the pinned budget: incremental mean \
         {:.3} ms vs full {:.3} ms ({:.1}% > {:.0}%), reports identical: {}",
        smoke.incr_mean_millis,
        smoke.full_millis,
        100.0 * fraction,
        100.0 * SMOKE_LATENCY_FRACTION_BUDGET,
        smoke.reports_identical
    );
    crate::say!();

    let row_value = |r: &SizeRun| {
        #[allow(clippy::cast_precision_loss)]
        serde::json::object([
            ("entries", Value::UInt(r.entries as u64)),
            ("artifacts", Value::UInt(r.artifacts as u64)),
            ("touched_per_commit", Value::UInt(r.touched as u64)),
            ("commits", Value::UInt(r.commits as u64)),
            ("full_millis", Value::Float(r.full_millis)),
            ("incr_mean_millis", Value::Float(r.incr_mean_millis)),
            ("incr_max_millis", Value::Float(r.incr_max_millis)),
            ("speedup", Value::Float(r.speedup)),
            ("mean_dirty_units", Value::Float(r.mean_dirty_units)),
            ("hits", Value::UInt(r.hits)),
            ("misses", Value::UInt(r.misses)),
            ("reports_identical", Value::Bool(r.reports_identical)),
        ])
    };
    serde::json::object([
        ("curve", Value::Array(curve.iter().map(row_value).collect())),
        (
            "smoke",
            serde::json::object([
                ("entries", Value::UInt(smoke.entries as u64)),
                ("commits", Value::UInt(smoke.commits as u64)),
                ("touched_per_commit", Value::UInt(smoke.touched as u64)),
                ("full_millis", Value::Float(smoke.full_millis)),
                ("incr_mean_millis", Value::Float(smoke.incr_mean_millis)),
                ("speedup", Value::Float(smoke.speedup)),
                ("latency_fraction", Value::Float(fraction)),
                (
                    "fraction_budget",
                    Value::Float(SMOKE_LATENCY_FRACTION_BUDGET),
                ),
                ("reports_identical", Value::Bool(smoke.reports_identical)),
                ("within_budget", Value::Bool(within_budget)),
            ]),
        ),
    ])
}
