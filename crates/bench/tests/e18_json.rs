//! Validates the JSON shape of the E18 section that
//! `exp_report --json` embeds: every consumer-visible key must be
//! present with the right type, so the CI journal/replay gate (which
//! reads `e18_journal_replay.smoke.within_budget` and the size ratio
//! out of the report) never breaks silently.

use serde::json::Value;
use vdo_bench::e18::{section, E18Scale, JSONL_RATIO_FLOOR, REPLAY_LATENCY_BUDGET_MILLIS};

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Object(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field `{key}`")),
        other => panic!("expected object around `{key}`, got {other:?}"),
    }
}

fn as_uint(v: &Value) -> u64 {
    match v {
        Value::UInt(n) => *n,
        other => panic!("expected uint, got {other:?}"),
    }
}

fn as_float(v: &Value) -> f64 {
    match v {
        Value::Float(f) => *f,
        other => panic!("expected float, got {other:?}"),
    }
}

fn as_array(v: &Value) -> &[Value] {
    match v {
        Value::Array(items) => items,
        other => panic!("expected array, got {other:?}"),
    }
}

#[test]
fn e18_section_has_the_documented_shape() {
    let scale = E18Scale::tiny();
    let doc = section(&scale);

    // -- write path: throughput over a nonempty stream. -----------------
    let write = field(&doc, "write");
    let events = as_uint(field(write, "events"));
    assert!(events > 0, "the recorded run must journal events");
    assert!(as_float(field(write, "record_secs")) > 0.0);
    assert!(as_float(field(write, "write_secs")) > 0.0);
    assert!(as_float(field(write, "events_per_sec")) > 0.0);

    // -- size: the columnar advantage holds and is self-consistent. -----
    let size = field(&doc, "size");
    let columnar = as_uint(field(size, "columnar_bytes"));
    let jsonl = as_uint(field(size, "jsonl_bytes"));
    let ratio = as_float(field(size, "jsonl_ratio"));
    assert!(columnar > 0 && jsonl > columnar);
    #[allow(clippy::cast_precision_loss)]
    let expect = jsonl as f64 / columnar as f64;
    assert!((ratio - expect).abs() < 1e-9, "ratio = jsonl / columnar");
    assert!(ratio >= JSONL_RATIO_FLOOR);
    assert!((as_float(field(size, "ratio_floor")) - JSONL_RATIO_FLOOR).abs() < 1e-9);
    assert!(as_float(field(size, "bytes_per_event")) > 0.0);
    assert!(as_float(field(size, "jsonl_bytes_per_event")) > 0.0);

    // -- compaction: below-floor events dropped, chains kept whole. -----
    let compaction = field(&doc, "compaction");
    let events_in = as_uint(field(compaction, "events_in"));
    let events_out = as_uint(field(compaction, "events_out"));
    assert_eq!(events_in, events);
    assert!(events_out < events_in, "the Warn floor must drop noise");
    assert!(as_uint(field(compaction, "bytes_out")) < as_uint(field(compaction, "bytes_in")));
    assert!(as_float(field(compaction, "ratio")) > 1.0);
    assert!(as_uint(field(compaction, "protected_traces")) > 0);
    let incidents = as_uint(field(compaction, "incidents"));
    assert!(incidents > 0);
    assert_eq!(as_uint(field(compaction, "roots_resolved")), incidents);
    assert!((as_float(field(compaction, "root_resolution_pct")) - 100.0).abs() < 1e-9);

    // -- replay: one verified row per worker count. ---------------------
    let replay = as_array(field(&doc, "replay"));
    assert_eq!(replay.len(), scale.replay_workers.len());
    for (row, &workers) in replay.iter().zip(&scale.replay_workers) {
        assert_eq!(as_uint(field(row, "workers")), workers as u64);
        assert_eq!(as_uint(field(row, "tick")), scale.spec.duration);
        assert!(as_uint(field(row, "events")) > 0);
        assert!(as_float(field(row, "millis")) > 0.0);
        assert!(matches!(field(row, "journal_match"), Value::Bool(true)));
        assert!(matches!(field(row, "verdict_match"), Value::Bool(true)));
    }
    let seq_probe = field(&doc, "replay_to_seq");
    assert!(as_uint(field(seq_probe, "seq")) > 0);
    assert!(as_float(field(seq_probe, "millis")) > 0.0);

    // -- smoke: the CI gate's contract. ---------------------------------
    let smoke = field(&doc, "smoke");
    assert!(as_float(field(smoke, "jsonl_ratio")) >= JSONL_RATIO_FLOOR);
    assert!((as_float(field(smoke, "root_resolution_pct")) - 100.0).abs() < 1e-9);
    assert!(as_float(field(smoke, "max_replay_millis")) <= REPLAY_LATENCY_BUDGET_MILLIS);
    assert!(as_float(field(smoke, "replay_to_seq_millis")) <= REPLAY_LATENCY_BUDGET_MILLIS);
    assert!(
        (as_float(field(smoke, "replay_budget_millis")) - REPLAY_LATENCY_BUDGET_MILLIS).abs()
            < 1e-9
    );
    assert!(matches!(field(smoke, "within_budget"), Value::Bool(true)));

    // The section must survive JSON rendering (CI reads it from disk).
    let rendered = serde::json::to_string(&doc);
    assert!(rendered.contains("\"within_budget\":true"), "{rendered}");
    assert!(rendered.contains("\"jsonl_ratio\""));
}
