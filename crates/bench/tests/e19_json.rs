//! Validates the JSON shape of the E19 section that
//! `exp_report --json` embeds: the CI telemetry-plane gate reads
//! `e19_telemetry_plane.smoke.within_budget`, the sampling ratio, and
//! the alert latency out of the report, so every consumer-visible key
//! must be present with the right type.

use serde::json::Value;
use vdo_bench::e19::{section, E19Scale, ALERT_LATENCY_BUDGET_TICKS, PLANE_OVERHEAD_BUDGET_PCT};

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Object(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field `{key}`")),
        other => panic!("expected object around `{key}`, got {other:?}"),
    }
}

fn as_uint(v: &Value) -> u64 {
    match v {
        Value::UInt(n) => *n,
        other => panic!("expected uint, got {other:?}"),
    }
}

fn as_float(v: &Value) -> f64 {
    match v {
        Value::Float(f) => *f,
        other => panic!("expected float, got {other:?}"),
    }
}

fn as_bool(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        other => panic!("expected bool, got {other:?}"),
    }
}

#[test]
fn e19_section_has_the_documented_shape() {
    let scale = E19Scale::tiny();
    let doc = section(&scale);

    // -- overhead: three timed arms and the pinned budget. --------------
    let overhead = field(&doc, "overhead");
    let plane = as_float(field(overhead, "plane_best_secs"));
    let forensic = as_float(field(overhead, "forensic_best_secs"));
    let baseline = as_float(field(overhead, "baseline_best_secs"));
    assert!(plane > 0.0 && forensic > 0.0 && baseline > 0.0);
    // The gate percentage is the minimum *paired* per-round ratio, so
    // it need not derive from the independent best-of wall clocks —
    // only finiteness and budget consistency are structural.
    let plane_pct = as_float(field(overhead, "plane_overhead_pct"));
    assert!(plane_pct.is_finite());
    assert!(as_float(field(overhead, "forensic_overhead_pct")).is_finite());
    assert!((as_float(field(overhead, "budget_pct")) - PLANE_OVERHEAD_BUDGET_PCT).abs() < 1e-9);
    assert_eq!(as_uint(field(overhead, "rounds")), scale.rounds as u64);

    // -- sampling: the size claim is self-consistent and lossless. ------
    let sampling = field(&doc, "sampling");
    assert_eq!(as_uint(field(sampling, "keep_1_in")), scale.keep_1_in);
    let unsampled = as_uint(field(sampling, "unsampled_bytes"));
    let sampled = as_uint(field(sampling, "sampled_bytes"));
    assert!(unsampled > sampled, "sampling must shrink the journal");
    let ratio = as_float(field(sampling, "size_ratio"));
    #[allow(clippy::cast_precision_loss)]
    let expect = unsampled as f64 / sampled as f64;
    assert!((ratio - expect).abs() < 1e-9, "ratio = unsampled / sampled");
    assert!(ratio >= scale.size_ratio_floor);
    let seen = as_uint(field(sampling, "events_seen"));
    let kept = as_uint(field(sampling, "events_kept"));
    assert!(seen > kept, "some telemetry traces must be head-dropped");
    assert!(as_uint(field(sampling, "traces_promoted")) > 0);
    assert!(as_uint(field(sampling, "incidents_traced")) > 0);
    assert!((as_float(field(sampling, "root_resolution_pct")) - 100.0).abs() < 1e-9);

    // -- alerting: onset precedes the alert, which reaches the bus. -----
    let alerting = field(&doc, "alerting");
    let onset = as_uint(field(alerting, "burn_onset_tick"));
    let first = as_uint(field(alerting, "first_alert_tick"));
    assert!(first >= onset, "the alert cannot precede its burn");
    let latency = as_uint(field(alerting, "alert_latency_ticks"));
    assert_eq!(latency, first - onset);
    assert!(latency <= ALERT_LATENCY_BUDGET_TICKS);
    assert_eq!(
        as_uint(field(alerting, "latency_budget_ticks")),
        ALERT_LATENCY_BUDGET_TICKS
    );
    let fired = as_uint(field(alerting, "alerts_fired"));
    assert!(fired > 0);
    assert_eq!(as_uint(field(alerting, "alerts_on_bus")), fired);
    assert!(as_uint(field(alerting, "exemplar_buckets")) > 0);

    // -- smoke: the CI gate's contract, internally consistent. ----------
    // `overhead_ok` is wall-clock and can wobble at the tiny scale, so
    // the assertion is consistency, not the verdict itself.
    let smoke = field(&doc, "smoke");
    let overhead_ok = as_bool(field(smoke, "overhead_ok"));
    assert_eq!(overhead_ok, plane_pct <= PLANE_OVERHEAD_BUDGET_PCT);
    assert!(as_bool(field(smoke, "sampling_ok")));
    assert!(as_bool(field(smoke, "alerting_ok")));
    assert_eq!(
        as_bool(field(smoke, "within_budget")),
        overhead_ok,
        "within_budget ANDs the three gates (sampling and alerting hold here)"
    );

    // The section must survive JSON rendering (CI reads it from disk).
    let rendered = serde::json::to_string(&doc);
    assert!(rendered.contains("\"within_budget\""), "{rendered}");
    assert!(rendered.contains("\"size_ratio\""));
    assert!(rendered.contains("\"alert_latency_ticks\""));
}
