//! Validates the JSON shape of the E15 section that
//! `exp_report --json` embeds: every consumer-visible key must be
//! present with the right type, so the CI latency gate (which reads
//! `e15_server.smoke.within_budget` out of the report) never breaks
//! silently.

use serde::json::Value;
use vdo_bench::e15::{section, E15Scale, SMOKE_BUDGET_TICKS};

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Object(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field `{key}`")),
        other => panic!("expected object around `{key}`, got {other:?}"),
    }
}

fn as_uint(v: &Value) -> u64 {
    match v {
        Value::UInt(n) => *n,
        other => panic!("expected uint, got {other:?}"),
    }
}

fn as_float(v: &Value) -> f64 {
    match v {
        Value::Float(f) => *f,
        other => panic!("expected float, got {other:?}"),
    }
}

fn as_array(v: &Value) -> &[Value] {
    match v {
        Value::Array(items) => items,
        other => panic!("expected array, got {other:?}"),
    }
}

#[test]
fn e15_section_has_the_documented_shape() {
    let scale = E15Scale::tiny();
    let doc = section(&scale);

    // -- main: the headline run. ----------------------------------------
    let main = field(&doc, "main");
    assert_eq!(as_uint(field(main, "tenants")), 8);
    assert_eq!(as_uint(field(main, "total_requests")), scale.main_total);
    for q in ["p50_ticks", "p99_ticks", "p999_ticks"] {
        assert!(as_float(field(main, q)) >= 0.0, "{q} must be a quantile");
    }
    let metrics = field(main, "metrics");
    let admitted = as_uint(field(metrics, "admitted"));
    let rejected = as_uint(field(metrics, "rejected"));
    assert_eq!(admitted + rejected, scale.main_total);
    assert_eq!(as_uint(field(metrics, "completed")), admitted);
    let by_kind = field(metrics, "by_kind");
    let kind_total: u64 = [
        "submit_requirement",
        "push_commit",
        "query_incident",
        "run_ops",
    ]
    .iter()
    .map(|k| as_uint(field(by_kind, k)))
    .sum();
    assert_eq!(kind_total, admitted, "kind counters partition admissions");

    // -- sweeps: one row per configuration. -----------------------------
    let tenant_rows = as_array(field(&doc, "tenant_sweep"));
    assert_eq!(tenant_rows.len(), 4);
    for (row, expect) in tenant_rows.iter().zip([2u64, 4, 8, 16]) {
        assert_eq!(as_uint(field(row, "tenants")), expect);
        assert!(as_float(field(row, "throughput_rps")) > 0.0);
    }
    let depth_rows = as_array(field(&doc, "queue_depth_sweep"));
    assert_eq!(depth_rows.len(), 3);
    for (row, expect) in depth_rows.iter().zip([64u64, 256, 1_024]) {
        assert_eq!(as_uint(field(row, "queue_capacity")), expect);
        assert!(
            as_uint(field(row, "rejected")) > 0,
            "the overload sweep must show shed load"
        );
    }

    // -- determinism: every worker count identical to the baseline. -----
    let det = as_array(field(&doc, "determinism"));
    assert_eq!(det.len(), 3);
    for (row, workers) in det.iter().zip([1u64, 2, 4]) {
        assert_eq!(as_uint(field(row, "workers")), workers);
        let identical = match field(row, "identical") {
            Value::String(s) => s.clone(),
            other => panic!("expected string, got {other:?}"),
        };
        assert_ne!(identical, "NO");
    }

    // -- smoke: the CI latency gate's contract. -------------------------
    let smoke = field(&doc, "smoke");
    assert_eq!(as_uint(field(smoke, "budget_ticks")), SMOKE_BUDGET_TICKS);
    assert!(as_float(field(smoke, "p99_ticks")) >= 0.0);
    assert!(matches!(field(smoke, "within_budget"), Value::Bool(true)));

    // The section must survive JSON rendering (CI reads it from disk).
    let rendered = serde::json::to_string(&doc);
    assert!(rendered.contains("\"within_budget\":true"), "{rendered}");
    assert!(rendered.contains("\"budget_ticks\""));
}
