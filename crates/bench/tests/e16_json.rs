//! Validates the JSON shape of the E16 section that
//! `exp_report --json` embeds: every consumer-visible key must be
//! present with the right type, so the CI fleet-scale gate (which
//! reads `e16_fleet_scale.smoke.within_budget` out of the report)
//! never breaks silently.

use serde::json::Value;
use vdo_bench::e16::{
    section, E16Scale, SMOKE_BYTES_PER_HOST_BUDGET, SMOKE_MEMORY_RATIO_FLOOR,
    SMOKE_TICK_MILLIS_BUDGET,
};

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Object(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field `{key}`")),
        other => panic!("expected object around `{key}`, got {other:?}"),
    }
}

fn as_uint(v: &Value) -> u64 {
    match v {
        Value::UInt(n) => *n,
        other => panic!("expected uint, got {other:?}"),
    }
}

fn as_float(v: &Value) -> f64 {
    match v {
        Value::Float(f) => *f,
        other => panic!("expected float, got {other:?}"),
    }
}

fn as_array(v: &Value) -> &[Value] {
    match v {
        Value::Array(items) => items,
        other => panic!("expected array, got {other:?}"),
    }
}

#[test]
fn e16_section_has_the_documented_shape() {
    let scale = E16Scale::tiny();
    let doc = section(&scale);

    // -- memory curve: one row per fleet size, ratios computed. ---------
    let curve = as_array(field(&doc, "memory_curve"));
    assert_eq!(curve.len(), scale.curve_sizes.len());
    for (row, &size) in curve.iter().zip(&scale.curve_sizes) {
        assert_eq!(as_uint(field(row, "hosts")), size as u64);
        let bph = as_float(field(row, "bytes_per_host"));
        let legacy = as_float(field(row, "legacy_bytes_per_host"));
        let ratio = as_float(field(row, "ratio"));
        assert!(bph > 0.0, "bytes/host must be measured");
        assert!(legacy > bph, "owned structs must cost more per host");
        assert!((ratio - legacy / bph).abs() < 1e-6, "ratio = legacy / bph");
        assert!(as_float(field(row, "generate_secs")) >= 0.0);
    }

    // -- closed loop: the headline run's knobs and measurements. --------
    let cl = field(&doc, "closed_loop");
    assert_eq!(as_uint(field(cl, "hosts")), scale.main_hosts as u64);
    assert_eq!(as_uint(field(cl, "ticks")), scale.ticks as u64);
    assert!(as_float(field(cl, "initial_sweep_secs")) >= 0.0);
    assert!(as_float(field(cl, "full_rescan_secs")) >= 0.0);
    assert!(as_float(field(cl, "mean_tick_millis")) >= 0.0);
    assert!(
        as_float(field(cl, "max_tick_millis")) >= as_float(field(cl, "mean_tick_millis")),
        "max tick bounds the mean"
    );
    assert!(
        as_uint(field(cl, "enforcements")) > 0,
        "drift must trigger enforcement"
    );
    assert!(
        as_uint(field(cl, "touched_hosts")) > 0,
        "drift ticks must touch hosts"
    );
    assert!(
        matches!(field(cl, "touched_compliant"), Value::Bool(true)),
        "every drifted-and-enforced host must end compliant"
    );

    // -- determinism: worker counts and the byte-identity verdict. ------
    let det = field(&doc, "determinism");
    let workers: Vec<u64> = as_array(field(det, "workers"))
        .iter()
        .map(as_uint)
        .collect();
    assert_eq!(workers, [1, 2, 4]);
    assert!(as_uint(field(det, "verdict_bytes")) > 0);
    assert!(matches!(field(det, "identical"), Value::Bool(true)));

    // -- smoke: the CI gate's contract. ---------------------------------
    let smoke = field(&doc, "smoke");
    assert_eq!(as_uint(field(smoke, "hosts")), scale.smoke_hosts as u64);
    let bph = as_float(field(smoke, "bytes_per_host"));
    assert!(bph <= SMOKE_BYTES_PER_HOST_BUDGET);
    assert!((as_float(field(smoke, "bytes_budget")) - SMOKE_BYTES_PER_HOST_BUDGET).abs() < 1e-9);
    assert!(as_float(field(smoke, "memory_ratio")) >= SMOKE_MEMORY_RATIO_FLOOR);
    assert!((as_float(field(smoke, "ratio_floor")) - SMOKE_MEMORY_RATIO_FLOOR).abs() < 1e-9);
    assert!(as_float(field(smoke, "max_tick_millis")) <= SMOKE_TICK_MILLIS_BUDGET);
    assert!((as_float(field(smoke, "tick_budget_millis")) - SMOKE_TICK_MILLIS_BUDGET).abs() < 1e-9);
    assert!(matches!(field(smoke, "within_budget"), Value::Bool(true)));

    // The section must survive JSON rendering (CI reads it from disk).
    let rendered = serde::json::to_string(&doc);
    assert!(rendered.contains("\"within_budget\":true"), "{rendered}");
    assert!(rendered.contains("\"memory_curve\""));
}
