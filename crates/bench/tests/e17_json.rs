//! Validates the JSON shape of the E17 section that
//! `exp_report --json` embeds: every consumer-visible key must be
//! present with the right type, so the CI incremental-analysis gate
//! (which reads `e17_incremental_analysis.smoke.within_budget` out of
//! the report) never breaks silently.

use serde::json::Value;
use vdo_bench::e17::{section, E17Scale, SMOKE_LATENCY_FRACTION_BUDGET};

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Object(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field `{key}`")),
        other => panic!("expected object around `{key}`, got {other:?}"),
    }
}

fn as_uint(v: &Value) -> u64 {
    match v {
        Value::UInt(n) => *n,
        other => panic!("expected uint, got {other:?}"),
    }
}

fn as_float(v: &Value) -> f64 {
    match v {
        Value::Float(f) => *f,
        other => panic!("expected float, got {other:?}"),
    }
}

fn as_array(v: &Value) -> &[Value] {
    match v {
        Value::Array(items) => items,
        other => panic!("expected array, got {other:?}"),
    }
}

#[test]
fn e17_section_has_the_documented_shape() {
    let scale = E17Scale::tiny();
    let doc = section(&scale);

    // -- curve: one row per catalogue size, measurements coherent. ------
    let curve = as_array(field(&doc, "curve"));
    assert_eq!(curve.len(), scale.curve_entries.len());
    for (row, &entries) in curve.iter().zip(&scale.curve_entries) {
        assert_eq!(as_uint(field(row, "entries")), entries as u64);
        assert!(
            as_uint(field(row, "artifacts")) >= entries as u64,
            "formulas/models/assertions ride on top of the entries"
        );
        let touched = as_uint(field(row, "touched_per_commit"));
        assert_eq!(touched, ((entries / 100).max(1)) as u64, "1%-touch commits");
        assert_eq!(as_uint(field(row, "commits")), scale.commits as u64);
        assert!(as_float(field(row, "full_millis")) > 0.0);
        let mean = as_float(field(row, "incr_mean_millis"));
        let max = as_float(field(row, "incr_max_millis"));
        assert!(mean > 0.0);
        assert!(max >= mean, "max tick bounds the mean");
        assert!(as_float(field(row, "speedup")) > 0.0);
        assert!(
            as_float(field(row, "mean_dirty_units")) > 0.0,
            "every commit dirties the slice it touches"
        );
        assert!(
            as_uint(field(row, "misses")) > 0,
            "revised artifacts must re-run their lints"
        );
        assert!(matches!(field(row, "reports_identical"), Value::Bool(true)));
    }

    // -- smoke: the CI gate's contract. ---------------------------------
    let smoke = field(&doc, "smoke");
    assert_eq!(as_uint(field(smoke, "entries")), scale.smoke_entries as u64);
    assert_eq!(as_uint(field(smoke, "commits")), scale.smoke_commits as u64);
    let fraction = as_float(field(smoke, "latency_fraction"));
    assert!(fraction <= SMOKE_LATENCY_FRACTION_BUDGET);
    assert!(
        (as_float(field(smoke, "fraction_budget")) - SMOKE_LATENCY_FRACTION_BUDGET).abs() < 1e-9
    );
    assert!(
        (fraction
            - as_float(field(smoke, "incr_mean_millis")) / as_float(field(smoke, "full_millis")))
        .abs()
            < 1e-6,
        "fraction = incremental mean / full"
    );
    assert!(matches!(
        field(smoke, "reports_identical"),
        Value::Bool(true)
    ));
    assert!(matches!(field(smoke, "within_budget"), Value::Bool(true)));

    // The section must survive JSON rendering (CI reads it from disk).
    let rendered = serde::json::to_string(&doc);
    assert!(rendered.contains("\"within_budget\":true"), "{rendered}");
    assert!(rendered.contains("\"latency_fraction\""));
}
