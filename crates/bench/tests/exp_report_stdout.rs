//! End-to-end check of the `exp_report --json -` machine mode: the
//! JSON document must own stdout byte-for-byte while the human tables
//! move to stderr, because CI pipes stdout straight into a parser.
//! The compat `serde` has no JSON *parser*, so purity is asserted
//! structurally: stdout is one JSON object and carries none of the
//! `== ` table banners the sections narrate with.

use std::process::Command;

fn exp_report() -> Command {
    Command::new(env!("CARGO_BIN_EXE_exp_report"))
}

#[test]
fn json_dash_keeps_stdout_pure_and_moves_tables_to_stderr() {
    // e8 is the cheapest section: pure requirement-matrix counting,
    // no fleet simulation, so the test stays fast in debug builds.
    let out = exp_report()
        .args(["--json", "-", "--only", "e8_gwt_coverage"])
        .output()
        .expect("spawning exp_report");
    assert!(out.status.success(), "exit: {:?}", out.status);

    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");

    // Stdout is exactly one JSON object holding the requested section.
    let trimmed = stdout.trim();
    assert!(trimmed.starts_with('{'), "stdout must open a JSON object");
    assert!(trimmed.ends_with('}'), "stdout must close the JSON object");
    assert!(trimmed.contains("\"e8_gwt_coverage\""));
    assert!(
        !stdout.contains("== "),
        "table banners leaked onto stdout:\n{stdout}"
    );

    // The narration did not vanish — it landed on stderr.
    assert!(
        stderr.contains("== "),
        "expected the section table on stderr, got:\n{stderr}"
    );
}

#[test]
fn json_to_file_keeps_tables_on_stdout() {
    let dir = std::env::temp_dir().join(format!("vdo-exp-report-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("creating temp dir");
    let path = dir.join("report.json");

    let out = exp_report()
        .args(["--json", path.to_str().expect("utf-8 temp path")])
        .args(["--only", "e8_gwt_coverage"])
        .output()
        .expect("spawning exp_report");
    assert!(out.status.success(), "exit: {:?}", out.status);

    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    assert!(
        stdout.contains("== "),
        "file mode keeps tables on stdout, got:\n{stdout}"
    );
    let written = std::fs::read_to_string(&path).expect("reading the report");
    assert!(written.trim().starts_with('{'));
    assert!(written.contains("\"e8_gwt_coverage\""));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_only_section_exits_two_and_lists_the_sections() {
    let out = exp_report()
        .args(["--only", "no_such_section"])
        .output()
        .expect("spawning exp_report");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");
    assert!(stderr.contains("no such section"));
    assert!(stderr.contains("e19_telemetry_plane"), "{stderr}");
}
