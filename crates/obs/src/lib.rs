//! # vdo-obs — unified observability for the VeriDevOps closed loop
//!
//! The DATE 2021 paper's thesis is that the VeriDevOps loop makes
//! security *observable* end to end: requirements are formalised,
//! gates enforce them at development, monitors detect violations at
//! operations with measurable latency. This crate is the one
//! vocabulary every stage reports in:
//!
//! * [`Counter`] / [`Gauge`] — relaxed-atomic load and high-water
//!   metrics;
//! * [`Histogram`] — fixed-bucket latency distributions (promoted from
//!   the formerly crate-private `vdo-soc` implementation);
//! * [`SpanGuard`] — hierarchical timing spans over a monotonic
//!   [`Clock`] that is either wall time or a simulation-advanced
//!   counter;
//! * [`Registry`] — the thread-safe namespace that owns them all and
//!   freezes into a serde-serialisable [`Snapshot`].
//!
//! Two properties the rest of the workspace depends on:
//!
//! 1. **Near-zero cost when disabled.** [`Registry::disabled`] (also
//!    the `Default`) hands out inert instruments whose every operation
//!    is a branch on `None` — experiment E12 bounds the overhead on
//!    the SOC fleet workload at under 5%.
//! 2. **Determinism.** Counter values, histogram observation counts,
//!    and span entry counts depend only on the instrumented workload,
//!    never on scheduling; equal-seed runs produce identical
//!    [`Snapshot::deterministic_fingerprint`]s at any worker count.
//!    Durations follow the clock — use [`Clock::simulated`] to make
//!    them reproducible too.
//!
//! ```
//! use vdo_obs::Registry;
//!
//! let obs = Registry::new();
//! let checks = obs.counter("core.checks");
//! {
//!     let _phase = obs.span("pipeline/ops");
//!     checks.add(17);
//! }
//! let snapshot = obs.snapshot();
//! assert_eq!(snapshot.counter("core.checks"), Some(17));
//! let json = serde::json::to_string(&snapshot);
//! assert!(json.contains("pipeline/ops"));
//! ```

pub mod clock;
pub mod metrics;
pub mod registry;
pub mod span;
pub mod window;

pub use clock::Clock;
pub use metrics::{
    Counter, Exemplar, Gauge, Histogram, HistogramSnapshot, FINE_MICROS_BOUNDS, MICROS_BOUNDS,
    NANOS_BOUNDS, TICK_BOUNDS,
};
pub use registry::{Registry, Snapshot};
pub use span::{SpanGuard, SpanSnapshot};
pub use window::{Ewma, WindowCounter, WindowHistogram};
