//! Hierarchical timing spans.
//!
//! A span measures one region of code: entering creates a
//! [`SpanGuard`], dropping it records the elapsed clock time into the
//! registry under the span's `/`-separated path. Spans nest —
//! [`SpanGuard::child`] opens a sub-span whose path extends the
//! parent's — so a snapshot reads like a profile tree:
//!
//! ```text
//! pipeline              1 call   812µs
//! pipeline/dev          1 call   343µs
//! pipeline/dev/gates   60 calls  281µs
//! pipeline/ops          1 call   455µs
//! ```
//!
//! Aggregation is by path: the *count* of recordings per path is
//! deterministic for seeded workloads, while durations follow the
//! registry's [`Clock`](crate::Clock) (wall or simulated).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::Serialize;

use crate::registry::RegistryInner;

/// Shared per-path aggregate behind every recorded span.
#[derive(Debug, Default)]
pub(crate) struct SpanCore {
    pub(crate) count: AtomicU64,
    pub(crate) total_nanos: AtomicU64,
    pub(crate) max_nanos: AtomicU64,
}

impl SpanCore {
    pub(crate) fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> SpanSnapshot {
        SpanSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_nanos: self.total_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Frozen aggregate for one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Times the span was entered and exited.
    pub count: u64,
    /// Total nanoseconds across all recordings.
    pub total_nanos: u64,
    /// Longest single recording in nanoseconds.
    pub max_nanos: u64,
}

impl SpanSnapshot {
    /// Mean recording duration in nanoseconds (0 when never entered).
    #[must_use]
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.count as f64
        }
    }
}

impl Serialize for SpanSnapshot {
    fn to_value(&self) -> serde::json::Value {
        serde::json::object([
            ("count", self.count.to_value()),
            ("total_nanos", self.total_nanos.to_value()),
            ("max_nanos", self.max_nanos.to_value()),
            ("mean_nanos", self.mean_nanos().to_value()),
        ])
    }
}

/// An open span; dropping it records the elapsed time. Obtained from
/// [`Registry::span`](crate::Registry::span) or [`SpanGuard::child`].
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    inner: Arc<RegistryInner>,
    path: String,
    start_nanos: u64,
}

impl SpanGuard {
    pub(crate) fn disabled() -> Self {
        SpanGuard { active: None }
    }

    pub(crate) fn start(inner: Arc<RegistryInner>, path: String) -> Self {
        let start_nanos = inner.clock.now_nanos();
        SpanGuard {
            active: Some(ActiveSpan {
                inner,
                path,
                start_nanos,
            }),
        }
    }

    /// Opens a nested span at `parent_path/name`.
    #[must_use]
    pub fn child(&self, name: &str) -> SpanGuard {
        match &self.active {
            Some(span) => {
                SpanGuard::start(Arc::clone(&span.inner), format!("{}/{}", span.path, name))
            }
            None => SpanGuard::disabled(),
        }
    }

    /// The span's full path, when enabled.
    #[must_use]
    pub fn path(&self) -> Option<&str> {
        self.active.as_ref().map(|s| s.path.as_str())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(span) = self.active.take() {
            let elapsed = span
                .inner
                .clock
                .now_nanos()
                .saturating_sub(span.start_nanos);
            span.inner.span_core(&span.path).record(elapsed);
        }
    }
}
