//! Atomic metric primitives: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Every primitive is a cheap-to-clone *handle*. An enabled handle
//! points at shared atomic state (updated with relaxed ordering from
//! any thread); a disabled handle points at nothing and every operation
//! is a branch-on-`None` no-op — that is the "no-op recorder" the E12
//! experiment measures. Handles come either standalone (constructors
//! here) or registered by name in a [`Registry`](crate::Registry).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Serialize;

/// Upper bucket bounds (inclusive) for tick-valued latencies.
pub const TICK_BOUNDS: [u64; 10] = [0, 1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Upper bucket bounds (inclusive) for microsecond-valued durations.
pub const MICROS_BOUNDS: [u64; 10] = [
    10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000,
];

/// Upper bucket bounds (inclusive) for nanosecond-valued durations —
/// the sub-millisecond preset per-request service latency needs: the
/// [`MICROS_BOUNDS`] preset's first bucket (10µs) already swallows an
/// entire fast request, so this ladder resolves 250ns…1ms instead.
pub const NANOS_BOUNDS: [u64; 12] = [
    250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000,
];

/// Upper bucket bounds (inclusive) for microsecond-valued durations
/// below one millisecond — a finer companion to [`MICROS_BOUNDS`] for
/// service latencies that live in the 1µs–1ms band.
pub const FINE_MICROS_BOUNDS: [u64; 10] = [1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000];

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A fresh enabled counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter {
            cell: Some(Arc::new(AtomicU64::new(0))),
        }
    }

    /// A no-op counter: increments vanish, reads return zero.
    #[must_use]
    pub fn disabled() -> Self {
        Counter { cell: None }
    }

    pub(crate) fn from_cell(cell: Arc<AtomicU64>) -> Self {
        Counter { cell: Some(cell) }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (zero when disabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }

    /// `true` when increments are recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }
}

/// A last-value / high-water-mark gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A fresh enabled gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge {
            cell: Some(Arc::new(AtomicU64::new(0))),
        }
    }

    /// A no-op gauge: writes vanish, reads return zero.
    #[must_use]
    pub fn disabled() -> Self {
        Gauge { cell: None }
    }

    pub(crate) fn from_cell(cell: Arc<AtomicU64>) -> Self {
        Gauge { cell: Some(cell) }
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the value to `v` if larger (high-water mark).
    pub fn record_max(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (zero when disabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A representative observation attached to a histogram bucket: the
/// value plus the trace id of the causal chain that produced it, so a
/// tail-latency spike links directly to a replayable trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed value.
    pub value: u64,
    /// Trace id of the observation's causal chain.
    pub trace_id: u64,
}

/// Shared histogram state behind enabled handles.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    bounds: &'static [u64],
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// One optional exemplar slot per bucket, kept as the
    /// lexicographic maximum of `(value, trace_id)` so the retained
    /// representative is order-independent — equal observation
    /// multisets yield equal exemplars at any thread interleaving.
    exemplars: Mutex<Vec<Option<Exemplar>>>,
}

impl HistogramCore {
    pub(crate) fn with_bounds(bounds: &'static [u64]) -> Self {
        HistogramCore {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            exemplars: Mutex::new(vec![None; bounds.len() + 1]),
        }
    }

    fn bucket_of(&self, value: u64) -> usize {
        self.bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len())
    }

    fn record(&self, value: u64) {
        let idx = self.bucket_of(value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn record_traced(&self, value: u64, trace_id: u64) {
        self.record(value);
        let idx = self.bucket_of(value);
        let mut slots = self.exemplars.lock().expect("exemplar slots poisoned");
        let candidate = Exemplar { value, trace_id };
        let keep = match slots[idx] {
            Some(cur) => (candidate.value, candidate.trace_id) > (cur.value, cur.trace_id),
            None => true,
        };
        if keep {
            slots[idx] = Some(candidate);
        }
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            exemplars: self
                .exemplars
                .lock()
                .expect("exemplar slots poisoned")
                .clone(),
        }
    }
}

/// A fixed-bucket histogram with atomic buckets. Values above the last
/// bound land in the overflow bucket.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A histogram over caller-chosen inclusive upper bounds.
    #[must_use]
    pub fn with_bounds(bounds: &'static [u64]) -> Self {
        Histogram {
            core: Some(Arc::new(HistogramCore::with_bounds(bounds))),
        }
    }

    /// A histogram bucketed for tick-valued latencies (0..=256+).
    #[must_use]
    pub fn ticks() -> Self {
        Histogram::with_bounds(&TICK_BOUNDS)
    }

    /// A histogram bucketed for microsecond durations (10µs..=500ms+).
    #[must_use]
    pub fn micros() -> Self {
        Histogram::with_bounds(&MICROS_BOUNDS)
    }

    /// A histogram bucketed for sub-millisecond nanosecond durations
    /// (250ns..=1ms+) — per-request service latency resolution.
    #[must_use]
    pub fn nanos() -> Self {
        Histogram::with_bounds(&NANOS_BOUNDS)
    }

    /// A histogram bucketed for sub-millisecond microsecond durations
    /// (1µs..=1ms+).
    #[must_use]
    pub fn fine_micros() -> Self {
        Histogram::with_bounds(&FINE_MICROS_BOUNDS)
    }

    /// A no-op histogram: observations vanish, the snapshot is empty.
    #[must_use]
    pub fn disabled() -> Self {
        Histogram { core: None }
    }

    pub(crate) fn from_core(core: Arc<HistogramCore>) -> Self {
        Histogram { core: Some(core) }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.core {
            core.record(value);
        }
    }

    /// Records one observation carrying the trace id of its causal
    /// chain; the bucket's exemplar slot retains the largest
    /// `(value, trace_id)` seen, so dashboards can jump from a
    /// latency spike straight to the trace that caused it.
    pub fn record_traced(&self, value: u64, trace_id: u64) {
        if let Some(core) = &self.core {
            core.record_traced(value, trace_id);
        }
    }

    /// Immutable copy of the current state (all-empty when disabled).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.core {
            Some(core) => core.snapshot(),
            None => HistogramSnapshot {
                bounds: Vec::new(),
                counts: Vec::new(),
                count: 0,
                sum: 0,
                max: 0,
                exemplars: Vec::new(),
            },
        }
    }

    /// `true` when observations are recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }
}

/// Frozen histogram state. `counts` has one more entry than `bounds`
/// (the overflow bucket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds per bucket.
    pub bounds: Vec<u64>,
    /// Observations per bucket (last entry = overflow).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Optional representative observation per bucket (empty when the
    /// histogram never saw a traced observation; see
    /// [`Histogram::record_traced`]).
    pub exemplars: Vec<Option<Exemplar>>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) estimated by linear interpolation
    /// inside the bucket holding the target rank — the same estimator
    /// Prometheus's `histogram_quantile` uses, so `quantile(0.95)` is
    /// the p95 a dashboard would report. Values in the overflow bucket
    /// interpolate between the last bound and the observed maximum.
    /// Returns `None` for an empty histogram; `q` is clamped.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0.0_f64;
        let mut lower = 0u64;
        for (i, &bound) in self.bounds.iter().enumerate() {
            let n = self.counts[i] as f64;
            if n > 0.0 && cumulative + n >= target {
                let within = ((target - cumulative) / n).clamp(0.0, 1.0);
                return Some(lower as f64 + (bound - lower) as f64 * within);
            }
            cumulative += n;
            lower = bound;
        }
        let overflow = *self.counts.last()? as f64;
        if overflow > 0.0 {
            let within = ((target - cumulative) / overflow).clamp(0.0, 1.0);
            let upper = self.max.max(lower);
            Some(lower as f64 + (upper - lower) as f64 * within)
        } else {
            Some(self.max as f64)
        }
    }

    /// The observations recorded since `earlier` was taken, assuming
    /// `earlier` is a previous snapshot of the same histogram (same
    /// bounds, monotonically grown counts): bucket counts, total count,
    /// and sum subtract saturating. `max` keeps the lifetime maximum —
    /// a high-water mark cannot be windowed — so window quantiles that
    /// reach the overflow bucket stay conservative.
    #[must_use]
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        if self.bounds != earlier.bounds {
            return self.clone();
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            // Like `max`, exemplars are lifetime representatives — a
            // window cannot un-see the best-linked observation.
            exemplars: self.exemplars.clone(),
        }
    }
}

impl Serialize for HistogramSnapshot {
    fn to_value(&self) -> serde::json::Value {
        let exemplars: Vec<serde::json::Value> = self
            .exemplars
            .iter()
            .enumerate()
            .filter_map(|(bucket, slot)| {
                slot.map(|e| {
                    serde::json::object([
                        ("bucket", (bucket as u64).to_value()),
                        ("value", e.value.to_value()),
                        ("trace_id", e.trace_id.to_value()),
                    ])
                })
            })
            .collect();
        serde::json::object([
            ("bounds", self.bounds.to_value()),
            ("counts", self.counts.to_value()),
            ("count", self.count.to_value()),
            ("sum", self.sum.to_value()),
            ("max", self.max.to_value()),
            ("mean", self.mean().to_value()),
            ("exemplars", exemplars.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::ticks();
        h.record(0);
        h.record(3);
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.counts[0], 1, "0 lands in the first bucket");
        assert_eq!(s.counts[3], 1, "3 lands in the <=4 bucket");
        assert_eq!(*s.counts.last().unwrap(), 1, "overflow bucket");
        assert_eq!(s.max, 1_000_000);
        assert!((s.mean() - (1_000_003.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn sub_millisecond_presets_resolve_fast_requests() {
        // Every preset ladder must be strictly increasing (the bucket
        // search relies on it) and top out at or below 1ms.
        for bounds in [&NANOS_BOUNDS[..], &FINE_MICROS_BOUNDS[..]] {
            assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
        }
        assert_eq!(*NANOS_BOUNDS.last().unwrap(), 1_000_000, "1ms in ns");
        assert_eq!(*FINE_MICROS_BOUNDS.last().unwrap(), 1_000, "1ms in µs");

        // A 3µs request is indistinguishable from a 9µs one under the
        // coarse preset (both land in the first <=10µs bucket)…
        let coarse = Histogram::micros();
        coarse.record(3);
        coarse.record(9);
        let s = coarse.snapshot();
        assert_eq!(s.counts[0], 2, "coarse preset merges sub-10µs values");

        // …but the sub-millisecond presets separate them.
        let fine = Histogram::fine_micros();
        fine.record(3);
        fine.record(9);
        let s = fine.snapshot();
        assert_eq!(s.counts[2], 1, "3µs lands in the <=5µs bucket");
        assert_eq!(s.counts[3], 1, "9µs lands in the <=10µs bucket");

        let nanos = Histogram::nanos();
        nanos.record(400); // 400ns
        nanos.record(90_000); // 90µs
        nanos.record(2_000_000); // 2ms -> overflow
        let s = nanos.snapshot();
        assert_eq!(s.counts[1], 1, "400ns lands in the <=500ns bucket");
        assert_eq!(s.counts[8], 1, "90µs lands in the <=100µs bucket");
        assert_eq!(*s.counts.last().unwrap(), 1, ">1ms overflows");
        // Quantiles stay sub-bucket-accurate at this resolution.
        let p50 = s.quantile(0.5).unwrap();
        assert!(p50 < 100_000.0, "median must stay sub-0.1ms: {p50}");
    }

    #[test]
    fn disabled_primitives_are_inert() {
        let c = Counter::disabled();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        assert!(!c.is_enabled());
        let g = Gauge::disabled();
        g.set(5);
        g.record_max(9);
        assert_eq!(g.get(), 0);
        let h = Histogram::disabled();
        h.record(42);
        assert_eq!(h.snapshot().count, 0);
        assert!(h.snapshot().bounds.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c.add(3);
        c2.add(4);
        assert_eq!(c.get(), 7);
        let g = Gauge::new();
        g.record_max(3);
        g.record_max(9);
        g.record_max(1);
        assert_eq!(g.get(), 9);
        g.set(2);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn quantile_matches_known_uniform_distribution() {
        static DECADES: [u64; 10] = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        let h = Histogram::with_bounds(&DECADES);
        for v in 1..=100 {
            h.record(v);
        }
        let s = h.snapshot();
        // Uniform 1..=100: the q-quantile is 100q under linear
        // interpolation.
        assert_eq!(s.quantile(0.5), Some(50.0));
        assert_eq!(s.quantile(0.95), Some(95.0));
        assert_eq!(s.quantile(0.1), Some(10.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        assert_eq!(s.quantile(0.0), Some(0.0), "q=0 is the bucket floor");
        assert_eq!(s.quantile(2.0), Some(100.0), "q clamps high");
    }

    #[test]
    fn quantile_interpolates_overflow_against_max() {
        let h = Histogram::ticks();
        h.record(1);
        h.record(1_000);
        let s = h.snapshot();
        // p100 reaches the overflow bucket, bounded by the observed max.
        assert_eq!(s.quantile(1.0), Some(1_000.0));
        let p75 = s.quantile(0.75).unwrap();
        assert!(p75 > 256.0 && p75 <= 1_000.0, "{p75}");
    }

    #[test]
    fn quantile_of_empty_or_skewed_histograms() {
        let h = Histogram::ticks();
        assert_eq!(h.snapshot().quantile(0.5), None);
        for _ in 0..100 {
            h.record(0);
        }
        assert_eq!(h.snapshot().quantile(0.99), Some(0.0), "all-zero mass");
    }

    #[test]
    fn histogram_delta_isolates_the_window() {
        let h = Histogram::ticks();
        h.record(2);
        h.record(300);
        let earlier = h.snapshot();
        h.record(2);
        h.record(7);
        let d = h.snapshot().delta(&earlier);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 9);
        assert_eq!(d.counts[2], 1, "one new observation <=2");
        assert_eq!(
            *d.counts.last().unwrap(),
            0,
            "overflow was before the window"
        );
        assert_eq!(d.max, 300, "max stays the lifetime high-water mark");
        assert_eq!(d.bounds, earlier.bounds);
    }

    #[test]
    fn exemplars_link_buckets_to_traces_deterministically() {
        let h = Histogram::ticks();
        h.record(3); // untraced: no exemplar
        h.record_traced(4, 0xAAAA);
        h.record_traced(3, 0xBBBB); // same bucket (<=4), smaller value loses
        h.record_traced(500, 0x1111); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        let in_bucket = s.exemplars[3].unwrap();
        assert_eq!(
            in_bucket,
            Exemplar {
                value: 4,
                trace_id: 0xAAAA
            },
            "bucket keeps the lexicographically largest (value, trace)"
        );
        assert_eq!(s.exemplars.last().unwrap().unwrap().trace_id, 0x1111);
        assert_eq!(s.exemplars[0], None, "untouched buckets stay empty");

        // Order independence: reversed feed retains the same exemplar.
        let h2 = Histogram::ticks();
        h2.record_traced(3, 0xBBBB);
        h2.record_traced(4, 0xAAAA);
        assert_eq!(h2.snapshot().exemplars[3], s.exemplars[3]);

        // Ties on value resolve by trace id.
        let h3 = Histogram::ticks();
        h3.record_traced(4, 1);
        h3.record_traced(4, 9);
        h3.record_traced(4, 5);
        assert_eq!(h3.snapshot().exemplars[3].unwrap().trace_id, 9);

        // Disabled histograms stay inert.
        let d = Histogram::disabled();
        d.record_traced(4, 7);
        assert!(d.snapshot().exemplars.is_empty());
    }

    #[test]
    fn histogram_snapshot_serialises() {
        let h = Histogram::micros();
        h.record(30);
        let json = serde::json::to_string(&h.snapshot());
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"mean\":30"));
    }
}
