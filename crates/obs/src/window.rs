//! Incremental windowed aggregation under the simulated clock.
//!
//! The snapshot-diffing path ([`Snapshot::delta`](crate::Snapshot))
//! re-walks the whole registry to isolate a window — fine for a
//! post-hoc report, wrong for a resident evaluator that runs every
//! tick. The aggregators here are fed *per event* instead: each keeps
//! a ring of per-tick cells sized to its horizon, so feeding an
//! observation is O(1), a trailing-window query is O(window), and the
//! result depends only on the observation stream — deterministic at
//! any worker count when fed from the engine's main thread.
//!
//! Three shapes cover the burn-rate rules downstream:
//!
//! * [`WindowCounter`] — windowed sums and rates over an event count;
//! * [`WindowHistogram`] — windowed bucket counts frozen into an
//!   ordinary [`HistogramSnapshot`], so window quantiles and
//!   fraction-above come from the same estimators the cumulative
//!   histograms use;
//! * [`Ewma`] — exponentially weighted smoothing for trend readouts.
//!
//! Sliding windows are the primary API (`sum`, `rate`,
//! `window_snapshot` over the trailing `window` ticks); tumbling
//! windows fall out of the same rings via [`WindowCounter::tumbling`].

use crate::metrics::HistogramSnapshot;

/// Sentinel tick marking a ring cell as never written.
const EMPTY: u64 = u64::MAX;

/// A per-tick event counter with O(1) feed and O(window) trailing
/// sums.
///
/// The ring holds one cell per tick over the configured `horizon`;
/// cells are lazily reused as the clock advances, so out-of-order
/// feeds within the horizon are fine and ticks older than the horizon
/// are silently forgotten.
#[derive(Debug, Clone)]
pub struct WindowCounter {
    /// `(tick, value)` cells indexed by `tick % capacity`.
    slots: Vec<(u64, u64)>,
}

impl WindowCounter {
    /// A counter able to answer windows up to `horizon` ticks long.
    ///
    /// # Panics
    /// When `horizon` is zero.
    #[must_use]
    pub fn new(horizon: usize) -> Self {
        assert!(horizon > 0, "window horizon must be at least one tick");
        WindowCounter {
            slots: vec![(EMPTY, 0); horizon],
        }
    }

    /// The longest window this counter can answer.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.slots.len()
    }

    /// Adds `n` events at `tick`.
    pub fn incr(&mut self, tick: u64, n: u64) {
        let cap = self.slots.len() as u64;
        let slot = &mut self.slots[(tick % cap) as usize];
        if slot.0 != tick {
            *slot = (tick, 0);
        }
        slot.1 += n;
    }

    /// Events in the trailing window `(now - window, now]` — the last
    /// `window` ticks, inclusive of `now`. `window` is clamped to the
    /// horizon.
    #[must_use]
    pub fn sum(&self, now: u64, window: u64) -> u64 {
        let window = window.min(self.slots.len() as u64).max(1);
        self.slots
            .iter()
            .filter(|(t, _)| *t != EMPTY && *t <= now && now - *t < window)
            .map(|(_, v)| v)
            .sum()
    }

    /// Events per tick over the trailing window.
    #[must_use]
    pub fn rate(&self, now: u64, window: u64) -> f64 {
        let window = window.min(self.slots.len() as u64).max(1);
        self.sum(now, window) as f64 / window as f64
    }

    /// The tumbling window containing `now`: non-overlapping buckets
    /// `[k·window, (k+1)·window)`. Returns `(bucket_start, sum)` for
    /// the (possibly still filling) current bucket.
    #[must_use]
    pub fn tumbling(&self, now: u64, window: u64) -> (u64, u64) {
        let window = window.min(self.slots.len() as u64).max(1);
        let start = (now / window) * window;
        let sum = self
            .slots
            .iter()
            .filter(|(t, _)| *t != EMPTY && *t >= start && *t <= now)
            .map(|(_, v)| v)
            .sum();
        (start, sum)
    }
}

/// Per-tick cell of a [`WindowHistogram`].
#[derive(Debug, Clone)]
struct TickCell {
    tick: u64,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

/// A fixed-bucket histogram whose observations are bucketed *per
/// tick*, so any trailing window freezes into an ordinary
/// [`HistogramSnapshot`] — window quantiles and fraction-above reuse
/// the cumulative estimators unchanged.
#[derive(Debug, Clone)]
pub struct WindowHistogram {
    bounds: &'static [u64],
    slots: Vec<TickCell>,
}

impl WindowHistogram {
    /// A histogram over `bounds` able to answer windows up to
    /// `horizon` ticks long.
    ///
    /// # Panics
    /// When `horizon` is zero.
    #[must_use]
    pub fn new(bounds: &'static [u64], horizon: usize) -> Self {
        assert!(horizon > 0, "window horizon must be at least one tick");
        WindowHistogram {
            bounds,
            slots: vec![
                TickCell {
                    tick: EMPTY,
                    counts: vec![0; bounds.len() + 1],
                    count: 0,
                    sum: 0,
                    max: 0,
                };
                horizon
            ],
        }
    }

    /// The longest window this histogram can answer.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.slots.len()
    }

    /// Records one observation at `tick`.
    pub fn record(&mut self, tick: u64, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        let cap = self.slots.len() as u64;
        let cell = &mut self.slots[(tick % cap) as usize];
        if cell.tick != tick {
            cell.tick = tick;
            cell.counts.iter_mut().for_each(|c| *c = 0);
            cell.count = 0;
            cell.sum = 0;
            cell.max = 0;
        }
        cell.counts[idx] += 1;
        cell.count += 1;
        cell.sum += value;
        cell.max = cell.max.max(value);
    }

    /// The trailing window `(now - window, now]` frozen as a snapshot.
    /// Unlike the cumulative [`HistogramSnapshot::delta`], `max` here
    /// is the true window maximum (the ring keeps per-tick maxima).
    /// `window` is clamped to the horizon.
    #[must_use]
    pub fn window_snapshot(&self, now: u64, window: u64) -> HistogramSnapshot {
        let window = window.min(self.slots.len() as u64).max(1);
        let mut counts = vec![0u64; self.bounds.len() + 1];
        let mut count = 0;
        let mut sum = 0;
        let mut max = 0;
        for cell in &self.slots {
            if cell.tick == EMPTY || cell.tick > now || now - cell.tick >= window {
                continue;
            }
            for (acc, c) in counts.iter_mut().zip(&cell.counts) {
                *acc += c;
            }
            count += cell.count;
            sum += cell.sum;
            max = max.max(cell.max);
        }
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts,
            count,
            sum,
            max,
            exemplars: Vec::new(),
        }
    }
}

/// Exponentially weighted moving average: `v ← α·x + (1-α)·v`, seeded
/// by the first observation.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// An EWMA with smoothing factor `alpha` (clamped to `(0, 1]`).
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        Ewma {
            alpha: alpha.clamp(f64::EPSILON, 1.0),
            value: None,
        }
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
            None => x,
        });
    }

    /// The smoothed value (`None` before any observation).
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TICK_BOUNDS;

    #[test]
    fn window_counter_sums_the_trailing_window_only() {
        let mut c = WindowCounter::new(10);
        for t in 0..20 {
            c.incr(t, t + 1); // tick t contributes t+1
        }
        // Window (14, 19]: ticks 15..=19 contribute 16+17+18+19+20.
        assert_eq!(c.sum(19, 5), 90);
        assert_eq!(c.sum(19, 1), 20, "window of one tick");
        assert!((c.rate(19, 5) - 18.0).abs() < 1e-12);
        // A window longer than the horizon clamps to the horizon.
        assert_eq!(c.sum(19, 100), c.sum(19, 10));
    }

    #[test]
    fn window_counter_forgets_ticks_past_the_horizon() {
        let mut c = WindowCounter::new(4);
        c.incr(0, 100);
        c.incr(10, 1);
        // Tick 0's cell was reused (or is out of range) — only tick 10
        // remains visible.
        assert_eq!(c.sum(10, 4), 1);
        // Sparse feeds: stale cells whose tick falls outside the
        // window never leak in.
        assert_eq!(c.sum(20, 4), 0);
    }

    #[test]
    fn window_counter_accepts_out_of_order_feeds_within_horizon() {
        let mut c = WindowCounter::new(8);
        c.incr(5, 1);
        c.incr(3, 2);
        c.incr(5, 1);
        assert_eq!(c.sum(5, 4), 4);
        assert_eq!(c.sum(5, 1), 2);
    }

    #[test]
    fn tumbling_buckets_do_not_overlap() {
        let mut c = WindowCounter::new(16);
        for t in 0..12 {
            c.incr(t, 1);
        }
        assert_eq!(c.tumbling(7, 4), (4, 4), "bucket [4,8) is full");
        assert_eq!(c.tumbling(9, 4), (8, 2), "bucket [8,12) is filling");
    }

    #[test]
    fn window_histogram_freezes_true_window_state() {
        let mut h = WindowHistogram::new(&TICK_BOUNDS, 10);
        h.record(0, 1_000); // an old spike
        for t in 5..10 {
            h.record(t, 2);
        }
        let recent = h.window_snapshot(9, 5);
        assert_eq!(recent.count, 5);
        assert_eq!(recent.max, 2, "window max excludes the old spike");
        let p50 = recent.quantile(0.5).unwrap();
        assert!(
            p50 > 1.0 && p50 <= 2.0,
            "median interpolates inside the (1,2] bucket: {p50}"
        );
        let all = h.window_snapshot(9, 10);
        assert_eq!(all.count, 6);
        assert_eq!(all.max, 1_000, "full horizon sees the spike");
        assert_eq!(*all.counts.last().unwrap(), 1, "spike overflowed");
    }

    #[test]
    fn window_histogram_reuses_cells_deterministically() {
        let run = || {
            let mut h = WindowHistogram::new(&TICK_BOUNDS, 4);
            for t in 0..50 {
                h.record(t, t % 7);
            }
            h.window_snapshot(49, 4)
        };
        assert_eq!(run(), run());
        assert_eq!(run().count, 4);
    }

    #[test]
    fn ewma_converges_toward_a_step() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.observe(0.0);
        assert_eq!(e.value(), Some(0.0));
        for _ in 0..20 {
            e.observe(10.0);
        }
        let v = e.value().unwrap();
        assert!(v > 9.99, "converged: {v}");
    }
}
