//! The thread-safe metric registry and its exportable snapshot.

use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};

use serde::Serialize;

use crate::clock::Clock;
use crate::metrics::{Counter, Gauge, Histogram, HistogramCore, HistogramSnapshot};
use crate::span::{SpanCore, SpanGuard, SpanSnapshot};

/// A named collection of counters, gauges, histograms, and spans.
///
/// The registry is a cheap-to-clone handle; clones share state, so one
/// registry can be threaded through a whole closed-loop run and
/// snapshotted once at the end. Instruments are registered by name on
/// first use and looked up on subsequent calls, so hot paths should
/// obtain a handle once and update it directly — handle updates are
/// single relaxed atomic operations and never touch the registry lock.
///
/// [`Registry::disabled`] is the no-op recorder: every instrument it
/// hands out is inert and [`snapshot`](Registry::snapshot) is empty.
/// The default registry is disabled, so embedding a `Registry` field in
/// a config or engine costs nothing until a caller opts in.
///
/// ```
/// use vdo_obs::Registry;
///
/// let obs = Registry::new();
/// let events = obs.counter("engine.events");
/// {
///     let _span = obs.span("engine/tick");
///     events.add(3);
/// }
/// let snap = obs.snapshot();
/// assert_eq!(snap.counter("engine.events"), Some(3));
/// assert_eq!(snap.span_count("engine/tick"), Some(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

/// Shared state behind an enabled registry.
#[derive(Debug)]
pub(crate) struct RegistryInner {
    pub(crate) clock: Clock,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    spans: Mutex<BTreeMap<String, Arc<SpanCore>>>,
}

impl RegistryInner {
    pub(crate) fn span_core(&self, path: &str) -> Arc<SpanCore> {
        Arc::clone(
            self.spans
                .lock()
                .expect("span table poisoned")
                .entry(path.to_string())
                .or_default(),
        )
    }
}

impl Registry {
    /// An enabled registry on a wall clock.
    #[must_use]
    pub fn new() -> Self {
        Registry::with_clock(Clock::wall())
    }

    /// An enabled registry on the given clock (use [`Clock::simulated`]
    /// for reproducible span durations).
    #[must_use]
    pub fn with_clock(clock: Clock) -> Self {
        Registry {
            inner: Some(Arc::new(RegistryInner {
                clock,
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// The no-op recorder: hands out inert instruments, records
    /// nothing, snapshots empty. This is also the [`Default`].
    #[must_use]
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// `true` when instruments actually record.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The registry's clock, when enabled.
    #[must_use]
    pub fn clock(&self) -> Option<Clock> {
        self.inner.as_ref().map(|i| i.clock.clone())
    }

    /// The counter registered under `name` (created at zero on first
    /// use; later calls return a handle to the same cell).
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => Counter::from_cell(Arc::clone(
                inner
                    .counters
                    .lock()
                    .expect("counter table poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )),
            None => Counter::disabled(),
        }
    }

    /// The gauge registered under `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => Gauge::from_cell(Arc::clone(
                inner
                    .gauges
                    .lock()
                    .expect("gauge table poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )),
            None => Gauge::disabled(),
        }
    }

    /// The histogram registered under `name`, created with `bounds` on
    /// first use (later calls ignore `bounds` and return the existing
    /// histogram).
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &'static [u64]) -> Histogram {
        match &self.inner {
            Some(inner) => Histogram::from_core(Arc::clone(
                inner
                    .histograms
                    .lock()
                    .expect("histogram table poisoned")
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::with_bounds(bounds))),
            )),
            None => Histogram::disabled(),
        }
    }

    /// Opens a span at `path` (use `/` separators for hierarchy;
    /// [`SpanGuard::child`] appends segments). Dropping the guard
    /// records the elapsed clock time.
    #[must_use]
    pub fn span(&self, path: &str) -> SpanGuard {
        match &self.inner {
            Some(inner) => SpanGuard::start(Arc::clone(inner), path.to_string()),
            None => SpanGuard::disabled(),
        }
    }

    /// Times `f` under a span at `path`.
    pub fn time<T>(&self, path: &str, f: impl FnOnce() -> T) -> T {
        let _guard = self.span(path);
        f()
    }

    /// Freezes every instrument into an immutable, serialisable
    /// [`Snapshot`]. Empty when disabled.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        Snapshot {
            counters: inner
                .counters
                .lock()
                .expect("counter table poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.load(std::sync::atomic::Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .lock()
                .expect("gauge table poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.load(std::sync::atomic::Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .lock()
                .expect("histogram table poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            spans: inner
                .spans
                .lock()
                .expect("span table poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Frozen registry state: every instrument by name, orderings stable
/// (BTreeMap), serialisable to one JSON object.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span aggregates by path.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

impl Snapshot {
    /// The value of one counter, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The value of one gauge, if registered.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// How many times the span at `path` was recorded, if ever opened.
    #[must_use]
    pub fn span_count(&self, path: &str) -> Option<u64> {
        self.spans.get(path).map(|s| s.count)
    }

    /// The activity between `earlier` and `self`, assuming `earlier`
    /// was taken from the same registry at an earlier moment: counters,
    /// histogram contents, and span count/total subtract saturating;
    /// gauges keep this snapshot's (instantaneous) value, and span
    /// `max_nanos` keeps the lifetime maximum. Instruments that only
    /// exist in `earlier` are dropped (a registry only grows, so that
    /// case means the snapshots are unrelated); instruments new since
    /// `earlier` carry their full value. This is what windowed SLO
    /// evaluation runs on: `now.delta(&then)` is "the last N ticks".
    #[must_use]
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.saturating_sub(earlier.counter(k).unwrap_or(0))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    let d = match earlier.histograms.get(k) {
                        Some(prev) => h.delta(prev),
                        None => h.clone(),
                    };
                    (k.clone(), d)
                })
                .collect(),
            spans: self
                .spans
                .iter()
                .map(|(k, s)| {
                    let prev = earlier.spans.get(k);
                    let d = SpanSnapshot {
                        count: s.count.saturating_sub(prev.map_or(0, |p| p.count)),
                        total_nanos: s
                            .total_nanos
                            .saturating_sub(prev.map_or(0, |p| p.total_nanos)),
                        max_nanos: s.max_nanos,
                    };
                    (k.clone(), d)
                })
                .collect(),
        }
    }

    /// A canonical rendering of everything that must be reproducible
    /// for seeded workloads: counter values, gauge values, histogram
    /// observation counts, and span entry counts — but no durations,
    /// which follow the (possibly wall) clock. Two equal-seed runs of
    /// an instrumented deterministic workload produce identical
    /// fingerprints at any worker count.
    #[must_use]
    pub fn deterministic_fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} = {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge {name} = {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "histogram {name} count = {}", h.count);
        }
        for (path, s) in &self.spans {
            let _ = writeln!(out, "span {path} count = {}", s.count);
        }
        out
    }
}

impl Serialize for Snapshot {
    fn to_value(&self) -> serde::json::Value {
        serde::json::object([
            ("counters", self.counters.to_value()),
            ("gauges", self.gauges.to_value()),
            ("histograms", self.histograms.to_value()),
            ("spans", self.spans.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TICK_BOUNDS;

    #[test]
    fn instruments_register_once_and_share_state() {
        let obs = Registry::new();
        obs.counter("a").add(2);
        obs.counter("a").add(3);
        obs.gauge("g").record_max(7);
        obs.histogram("h", &TICK_BOUNDS).record(1);
        obs.histogram("h", &TICK_BOUNDS).record(100);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("a"), Some(5));
        assert_eq!(snap.gauge("g"), Some(7));
        assert_eq!(snap.histograms["h"].count, 2);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn spans_nest_and_aggregate_by_path() {
        let clock = Clock::simulated();
        let obs = Registry::with_clock(clock.clone());
        for _ in 0..3 {
            let outer = obs.span("loop");
            clock.advance(10);
            {
                let _inner = outer.child("body");
                clock.advance(5);
            }
        }
        let snap = obs.snapshot();
        assert_eq!(snap.span_count("loop"), Some(3));
        assert_eq!(snap.span_count("loop/body"), Some(3));
        assert_eq!(snap.spans["loop/body"].total_nanos, 15);
        assert_eq!(snap.spans["loop"].total_nanos, 45);
        assert_eq!(snap.spans["loop"].max_nanos, 15);
        assert!((snap.spans["loop/body"].mean_nanos() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_registry_is_inert_and_empty() {
        let obs = Registry::disabled();
        assert!(!obs.is_enabled());
        assert!(obs.clock().is_none());
        obs.counter("a").inc();
        obs.gauge("g").set(4);
        obs.histogram("h", &TICK_BOUNDS).record(2);
        {
            let span = obs.span("s");
            assert!(span.path().is_none());
            let _child = span.child("c");
        }
        let snap = obs.snapshot();
        assert_eq!(snap, Snapshot::default());
        assert!(snap.deterministic_fingerprint().is_empty());
    }

    #[test]
    fn time_records_a_span_and_returns_the_value() {
        let obs = Registry::new();
        let v = obs.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(obs.snapshot().span_count("work"), Some(1));
    }

    #[test]
    fn delta_isolates_the_window_between_snapshots() {
        let clock = Clock::simulated();
        let obs = Registry::with_clock(clock.clone());
        obs.counter("c").add(5);
        obs.gauge("g").set(3);
        obs.histogram("h", &TICK_BOUNDS).record(100);
        obs.time("s", || clock.advance(10));
        let earlier = obs.snapshot();

        obs.counter("c").add(2);
        obs.counter("new").inc();
        obs.gauge("g").set(9);
        obs.histogram("h", &TICK_BOUNDS).record(1);
        obs.time("s", || clock.advance(4));
        let d = obs.snapshot().delta(&earlier);

        assert_eq!(d.counter("c"), Some(2));
        assert_eq!(
            d.counter("new"),
            Some(1),
            "new instruments carry full value"
        );
        assert_eq!(d.gauge("g"), Some(9), "gauges are instantaneous");
        assert_eq!(d.histograms["h"].count, 1);
        assert_eq!(d.histograms["h"].sum, 1);
        assert_eq!(d.span_count("s"), Some(1));
        assert_eq!(d.spans["s"].total_nanos, 4);

        let empty = obs.snapshot().delta(&obs.snapshot());
        assert_eq!(empty.counter("c"), Some(0));
        assert_eq!(empty.histograms["h"].count, 0);
    }

    #[test]
    fn snapshot_serialises_to_one_json_object() {
        let obs = Registry::with_clock(Clock::simulated());
        obs.counter("events").add(9);
        obs.time("phase", || ());
        let json = serde::json::to_string(&obs.snapshot());
        assert!(json.contains("\"counters\":{\"events\":9}"));
        assert!(json.contains("\"phase\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn fingerprint_excludes_durations() {
        let clock = Clock::simulated();
        let obs = Registry::with_clock(clock.clone());
        obs.counter("c").inc();
        obs.time("s", || clock.advance(100));
        let a = obs.snapshot().deterministic_fingerprint();

        let clock2 = Clock::simulated();
        let obs2 = Registry::with_clock(clock2.clone());
        obs2.counter("c").inc();
        obs2.time("s", || clock2.advance(999));
        let b = obs2.snapshot().deterministic_fingerprint();
        assert_eq!(a, b, "durations must not affect the fingerprint");
        assert!(a.contains("counter c = 1"));
        assert!(a.contains("span s count = 1"));
    }

    #[test]
    fn registry_is_thread_safe() {
        let obs = Registry::new();
        let counter = obs.counter("shared");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let counter = counter.clone();
                let obs = obs.clone();
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        counter.inc();
                    }
                    obs.counter("late").inc();
                });
            }
        });
        let snap = obs.snapshot();
        assert_eq!(snap.counter("shared"), Some(4_000));
        assert_eq!(snap.counter("late"), Some(4));
    }
}
