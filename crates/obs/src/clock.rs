//! The observability clock: wall time for real runs, a manually
//! advanced counter for simulations.
//!
//! Spans measure elapsed time between two `now_nanos()` reads. A
//! [`Clock::wall`] clock reads the OS monotonic clock; a
//! [`Clock::simulated`] clock is an atomic nanosecond counter that the
//! simulation advances explicitly (typically one fixed quantum per
//! tick), which makes span durations — not just counts — reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond clock, either wall or simulated.
///
/// Cloning is cheap and clones share the same time source: advancing a
/// simulated clock is visible through every clone.
#[derive(Debug, Clone)]
pub struct Clock {
    kind: ClockKind,
}

#[derive(Debug, Clone)]
enum ClockKind {
    Wall(Instant),
    Simulated(Arc<AtomicU64>),
}

impl Clock {
    /// A wall clock: `now_nanos` reads the OS monotonic clock relative
    /// to the moment this constructor ran.
    #[must_use]
    pub fn wall() -> Self {
        Clock {
            kind: ClockKind::Wall(Instant::now()),
        }
    }

    /// A simulated clock starting at zero. Time only moves when
    /// [`advance`](Clock::advance) or [`set`](Clock::set) is called.
    #[must_use]
    pub fn simulated() -> Self {
        Clock {
            kind: ClockKind::Simulated(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Nanoseconds since the clock's origin.
    #[must_use]
    pub fn now_nanos(&self) -> u64 {
        match &self.kind {
            ClockKind::Wall(origin) => origin.elapsed().as_nanos() as u64,
            ClockKind::Simulated(t) => t.load(Ordering::Relaxed),
        }
    }

    /// Advances a simulated clock by `nanos`. No-op on a wall clock.
    pub fn advance(&self, nanos: u64) {
        if let ClockKind::Simulated(t) = &self.kind {
            t.fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Moves a simulated clock forward to `nanos` (monotonic: a value
    /// in the past is ignored). No-op on a wall clock.
    pub fn set(&self, nanos: u64) {
        if let ClockKind::Simulated(t) = &self.kind {
            t.fetch_max(nanos, Ordering::Relaxed);
        }
    }

    /// `true` when this is a simulated clock.
    #[must_use]
    pub fn is_simulated(&self) -> bool {
        matches!(self.kind, ClockKind::Simulated(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_clock_only_moves_when_told() {
        let c = Clock::simulated();
        assert_eq!(c.now_nanos(), 0);
        c.advance(10);
        assert_eq!(c.now_nanos(), 10);
        c.set(5); // monotonic: ignored
        assert_eq!(c.now_nanos(), 10);
        c.set(25);
        assert_eq!(c.now_nanos(), 25);
    }

    #[test]
    fn clones_share_the_time_source() {
        let a = Clock::simulated();
        let b = a.clone();
        a.advance(7);
        assert_eq!(b.now_nanos(), 7);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = Clock::wall();
        let t0 = c.now_nanos();
        let t1 = c.now_nanos();
        assert!(t1 >= t0);
        assert!(!c.is_simulated());
        c.advance(1_000_000); // no-op
        c.set(u64::MAX); // no-op
    }
}
