//! Property tests for the snapshot algebra: `delta` recovers exactly
//! the window between two snapshots, and the deterministic fingerprint
//! ignores wall-clock durations (the worker-count-invariance contract
//! windowed SLO evaluation builds on).

use proptest::prelude::*;

use vdo_obs::{Clock, Registry, TICK_BOUNDS};

/// SplitMix64 — a tiny deterministic value stream for workloads.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    /// `now.delta(&then)` recovers exactly the observations recorded
    /// between the two snapshots: counter increments, histogram count,
    /// sum, and per-bucket totals.
    #[test]
    fn delta_recovers_exactly_the_window(
        seed in 0u64..5_000,
        early_n in 0usize..60,
        late_n in 0usize..60,
    ) {
        let obs = Registry::new();
        let counter = obs.counter("win.ops");
        let histogram = obs.histogram("win.latency", &TICK_BOUNDS);
        let mut state = seed;

        for _ in 0..early_n {
            counter.add(1);
            histogram.record(splitmix(&mut state) % 600);
        }
        let earlier = obs.snapshot();

        let mut late_sum = 0u64;
        for _ in 0..late_n {
            counter.add(1);
            let v = splitmix(&mut state) % 600;
            late_sum += v;
            histogram.record(v);
        }

        let delta = obs.snapshot().delta(&earlier);
        prop_assert_eq!(delta.counter("win.ops"), Some(late_n as u64));
        let h = delta.histograms.get("win.latency").expect("registered");
        prop_assert_eq!(h.count, late_n as u64);
        prop_assert_eq!(h.sum, late_sum);
        prop_assert_eq!(h.counts.iter().sum::<u64>(), late_n as u64);
    }

    /// The histogram-level delta composes with quantiles: the window
    /// quantile of `now.delta(&then)` only sees window observations.
    #[test]
    fn histogram_delta_quantile_sees_only_the_window(
        early_v in 0u64..4,
        late_v in 500u64..900,
        n in 1usize..40,
    ) {
        let obs = Registry::new();
        let histogram = obs.histogram("q.latency", &TICK_BOUNDS);
        for _ in 0..n {
            histogram.record(early_v);
        }
        let earlier = obs.snapshot();
        for _ in 0..n {
            histogram.record(late_v);
        }
        let now = obs.snapshot();
        let whole = now.histograms["q.latency"].clone();
        let window = whole.delta(&earlier.histograms["q.latency"]);
        prop_assert_eq!(window.count, n as u64);
        // All window mass sits in high buckets, so even the median
        // clears the early values.
        let p50 = window.quantile(0.5).expect("non-empty");
        prop_assert!(p50 > f64::from(4u32), "window p50 {p50} leaked early data");
    }

    /// Two runs of the same logical workload fingerprint identically
    /// even when their span durations differ wildly — durations are
    /// wall-clock and must not affect the deterministic digest.
    #[test]
    fn equal_workloads_fingerprint_identically_despite_timing(
        seed in 0u64..5_000,
        n in 1usize..60,
        fast in 1u64..100,
        slow in 10_000u64..1_000_000,
    ) {
        let run = |advance: u64| {
            let clock = Clock::simulated();
            let obs = Registry::with_clock(clock.clone());
            let mut state = seed;
            for i in 0..n {
                obs.counter("fp.ops").add(splitmix(&mut state) % 9);
                obs.gauge("fp.depth").record_max(splitmix(&mut state) % 32);
                obs.histogram("fp.latency", &TICK_BOUNDS)
                    .record(splitmix(&mut state) % 600);
                let span = obs.span("fp/work");
                clock.advance(advance + i as u64);
                drop(span);
            }
            obs.snapshot().deterministic_fingerprint()
        };
        prop_assert_eq!(run(fast), run(slow));
    }
}
