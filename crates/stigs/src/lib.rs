//! # vdo-stigs — executable STIG requirement catalogues
//!
//! The concrete security requirements of the VeriDevOps patterns
//! catalogue (D2.7 packages `rqcode.stigs.ubuntu`, `rqcode.stigs.win10`
//! and `rqcode.patterns.win10`), implemented as Rust values over the
//! simulated hosts of `vdo-host`:
//!
//! * [`ubuntu`] — Canonical Ubuntu 18.04 LTS STIG findings
//!   (`V-219157` "no NIS package", `V-219158` "no rsh-server", …) built
//!   from reusable patterns like [`ubuntu::UbuntuPackagePattern`] — the
//!   flagship example of RQCODE reuse: one pattern class, many findings;
//! * [`win10`] — Windows 10 STIG audit-policy findings (`V-63447`,
//!   `V-63449`, `V-63463`, `V-63467`, `V-63483`, `V-63487`) built from
//!   [`win10::AuditPolicyPattern`], the Rust counterpart of the Java
//!   `AuditPolicyRequirement` hierarchy that forks `auditpol.exe`.
//!
//! Every finding registers into a [`vdo_core::Catalog`], so the
//! remediation planner can sweep a whole guide:
//!
//! ```
//! use vdo_core::{PlannerConfig, PlannerOutcome, RemediationPlanner};
//! use vdo_host::UnixHost;
//!
//! let catalog = vdo_stigs::ubuntu::catalog();
//! let mut host = UnixHost::baseline_ubuntu_1804();   // stock, non-compliant
//! let run = RemediationPlanner::new(PlannerConfig::default()).run(&catalog, &mut host);
//! assert_eq!(run.outcome, PlannerOutcome::Compliant);
//! assert!(!host.is_package_installed("telnetd"));
//! ```

pub mod sweep;
pub mod ubuntu;
pub mod win10;
