//! Windows 10 STIG requirements.
//!
//! The Java catalogue's `rqcode.patterns.win10` hierarchy
//! (`AuditPolicyRequirement` → `AccountManagementRequirement` /
//! `LogonLogoffRequirement` / `PrivilegeUseRequirement` → concrete
//! `V-634xx` classes) flattens in Rust into one reusable
//! [`AuditPolicyPattern`] parameterised by category, subcategory, and the
//! required [`AuditSetting`]; the inheritance levels become constructor
//! helpers. Where the Java implementation forks `auditpol.exe`, this one
//! queries/mutates the simulated [`WindowsHost`] audit-policy table —
//! the same check/enforce code path, no process spawning.

use vdo_core::{
    Catalog, CheckStatus, Checkable, Enforceable, EnforcementStatus, RequirementSpec, Severity,
};
use vdo_host::{AuditSetting, HostRead, HostWrite, RegistryValue, WindowsHost};

/// Audit-policy requirement: the subcategory must audit at least the
/// required success/failure events.
///
/// ```
/// use vdo_core::{Checkable, CheckStatus, Enforceable};
/// use vdo_host::{AuditSetting, WindowsHost};
/// use vdo_stigs::win10::AuditPolicyPattern;
///
/// let req = AuditPolicyPattern::user_account_management(AuditSetting::FAILURE);
/// let mut host = WindowsHost::new("ws");
/// assert_eq!(req.check(&host), CheckStatus::Fail);
/// req.enforce(&mut host);
/// assert_eq!(req.check(&host), CheckStatus::Pass);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditPolicyPattern {
    category: String,
    subcategory: String,
    required: AuditSetting,
}

impl AuditPolicyPattern {
    /// General constructor.
    #[must_use]
    pub fn new(
        category: impl Into<String>,
        subcategory: impl Into<String>,
        required: AuditSetting,
    ) -> Self {
        AuditPolicyPattern {
            category: category.into(),
            subcategory: subcategory.into(),
            required,
        }
    }

    /// `Account Management / User Account Management` — the
    /// `UserAccountManagementRequirement` pattern.
    #[must_use]
    pub fn user_account_management(required: AuditSetting) -> Self {
        AuditPolicyPattern::new("Account Management", "User Account Management", required)
    }

    /// `Logon/Logoff / Logon` — the `LogonRequirement` pattern.
    #[must_use]
    pub fn logon(required: AuditSetting) -> Self {
        AuditPolicyPattern::new("Logon/Logoff", "Logon", required)
    }

    /// `Privilege Use / Sensitive Privilege Use` — the
    /// `SensitivePrivilegeUseRequirement` pattern.
    #[must_use]
    pub fn sensitive_privilege_use(required: AuditSetting) -> Self {
        AuditPolicyPattern::new("Privilege Use", "Sensitive Privilege Use", required)
    }

    /// Audit category (e.g. `"Account Management"`).
    #[must_use]
    pub fn category(&self) -> &str {
        &self.category
    }

    /// Audit subcategory (e.g. `"User Account Management"`).
    #[must_use]
    pub fn subcategory(&self) -> &str {
        &self.subcategory
    }

    /// Required setting.
    #[must_use]
    pub fn required(&self) -> AuditSetting {
        self.required
    }
}

impl<H: HostRead> Checkable<H> for AuditPolicyPattern {
    fn check(&self, host: &H) -> CheckStatus {
        let current = host.audit_setting(&self.category, &self.subcategory);
        CheckStatus::from(current.covers(self.required))
    }
}

impl<H: HostWrite> Enforceable<H> for AuditPolicyPattern {
    fn enforce(&self, host: &mut H) -> EnforcementStatus {
        // Union with the current setting: enforcing "audit failures" must
        // not disable success auditing someone else required.
        let current = host.audit_setting(&self.category, &self.subcategory);
        host.set_audit(
            &self.category,
            &self.subcategory,
            current.union(self.required),
        );
        EnforcementStatus::Success
    }
}

/// Registry-value requirement: a named value under a key must equal an
/// expected DWORD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryDwordPattern {
    key: String,
    name: String,
    expected: u32,
}

impl RegistryDwordPattern {
    /// Creates the pattern.
    #[must_use]
    pub fn new(key: impl Into<String>, name: impl Into<String>, expected: u32) -> Self {
        RegistryDwordPattern {
            key: key.into(),
            name: name.into(),
            expected,
        }
    }

    /// Registry key path (e.g. `HKLM\...\Policies\System`).
    #[must_use]
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Value name under the key.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Expected DWORD payload.
    #[must_use]
    pub fn expected(&self) -> u32 {
        self.expected
    }
}

impl<H: HostRead> Checkable<H> for RegistryDwordPattern {
    fn check(&self, host: &H) -> CheckStatus {
        match host.registry_value(&self.key, &self.name) {
            Some(v) => CheckStatus::from(v.as_dword() == Some(self.expected)),
            None => CheckStatus::Fail,
        }
    }
}

impl<H: HostWrite> Enforceable<H> for RegistryDwordPattern {
    fn enforce(&self, host: &mut H) -> EnforcementStatus {
        host.set_registry_value(&self.key, &self.name, RegistryValue::Dword(self.expected));
        EnforcementStatus::Success
    }
}

/// Account-lockout requirement: threshold must be non-zero and at most
/// `max_attempts`, with a minimum lockout duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockoutPolicyPattern {
    max_attempts: u32,
    min_duration_minutes: u32,
}

impl LockoutPolicyPattern {
    /// Creates the pattern (STIG default: 3 attempts, 15 minutes).
    #[must_use]
    pub fn new(max_attempts: u32, min_duration_minutes: u32) -> Self {
        LockoutPolicyPattern {
            max_attempts,
            min_duration_minutes,
        }
    }

    /// Maximum tolerated failed-attempt threshold.
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Minimum required lockout duration in minutes.
    #[must_use]
    pub fn min_duration_minutes(&self) -> u32 {
        self.min_duration_minutes
    }
}

impl<H: HostRead> Checkable<H> for LockoutPolicyPattern {
    fn check(&self, host: &H) -> CheckStatus {
        let t = host.lockout_threshold();
        let ok = t != 0
            && t <= self.max_attempts
            && host.lockout_duration_minutes() >= self.min_duration_minutes;
        CheckStatus::from(ok)
    }
}

impl<H: HostWrite> Enforceable<H> for LockoutPolicyPattern {
    fn enforce(&self, host: &mut H) -> EnforcementStatus {
        host.set_lockout_threshold(self.max_attempts);
        if host.lockout_duration_minutes() < self.min_duration_minutes {
            host.set_lockout_duration_minutes(self.min_duration_minutes);
        }
        EnforcementStatus::Success
    }
}

const STIG_NAME: &str = "Windows 10 STIG";
const STIG_DATE: &str = "2016-10-28";
const PACKAGE: &str = "rqcode.stigs.win10";

fn audit_spec(id: &str, title: &str, subcat_doc: &str) -> RequirementSpec {
    RequirementSpec::builder(id)
        .title(title)
        .severity(Severity::Medium)
        .stig(STIG_NAME)
        .date(STIG_DATE)
        .rule_id(format!("SV-{}r1_rule", id.trim_start_matches("V-")))
        .description(format!(
            "Maintaining an audit trail of system activity logs can help identify \
             configuration errors, troubleshoot service disruptions, and analyze compromises \
             that have occurred, as well as detect attacks. {subcat_doc}"
        ))
        .check_text("Run: auditpol /get /category:* and verify the subcategory setting.")
        .fix_text("Configure the policy via auditpol /set (or group policy).")
        .build()
}

/// Builds the Windows 10 STIG catalogue: the six audit-policy findings of
/// the D2.7 annex plus lockout and registry hardening entries.
#[must_use]
pub fn catalog() -> Catalog<WindowsHost> {
    let mut cat = Catalog::new();
    cat.register_enforceable(
        PACKAGE,
        audit_spec(
            "V-63447",
            "The system must be configured to audit Account Management - User Account \
             Management successes",
            "User Account Management records events such as creating, changing, deleting, \
             renaming, disabling, or enabling user accounts.",
        ),
        AuditPolicyPattern::user_account_management(AuditSetting::SUCCESS),
    );
    cat.register_enforceable(
        PACKAGE,
        audit_spec(
            "V-63449",
            "The system must be configured to audit Account Management - User Account \
             Management failures",
            "User Account Management records events such as creating, changing, deleting, \
             renaming, disabling, or enabling user accounts.",
        ),
        AuditPolicyPattern::user_account_management(AuditSetting::FAILURE),
    );
    cat.register_enforceable(
        PACKAGE,
        audit_spec(
            "V-63463",
            "The system must be configured to audit Logon/Logoff - Logon failures",
            "Logon records user logons; failed interactive logons indicate credential attacks.",
        ),
        AuditPolicyPattern::logon(AuditSetting::FAILURE),
    );
    cat.register_enforceable(
        PACKAGE,
        audit_spec(
            "V-63467",
            "The system must be configured to audit Logon/Logoff - Logon successes",
            "Logon records user logons; successful logons establish the audit trail baseline.",
        ),
        AuditPolicyPattern::logon(AuditSetting::SUCCESS),
    );
    cat.register_enforceable(
        PACKAGE,
        audit_spec(
            "V-63483",
            "The system must be configured to audit Privilege Use - Sensitive Privilege Use \
             failures",
            "Sensitive Privilege Use records events related to use of sensitive privileges, \
             such as \"Act as part of the operating system\" or \"Debug programs\".",
        ),
        AuditPolicyPattern::sensitive_privilege_use(AuditSetting::FAILURE),
    );
    cat.register_enforceable(
        PACKAGE,
        audit_spec(
            "V-63487",
            "The system must be configured to audit Privilege Use - Sensitive Privilege Use \
             successes",
            "Sensitive Privilege Use records events related to use of sensitive privileges, \
             such as \"Act as part of the operating system\" or \"Debug programs\".",
        ),
        AuditPolicyPattern::sensitive_privilege_use(AuditSetting::SUCCESS),
    );
    cat.register_enforceable(
        PACKAGE,
        audit_spec(
            "V-63431",
            "The system must be configured to audit Account Logon - Credential Validation \
             failures",
            "Credential Validation records results of validation tests on credentials \
             submitted for user account logon requests.",
        ),
        AuditPolicyPattern::new(
            "Account Logon",
            "Credential Validation",
            AuditSetting::FAILURE,
        ),
    );
    cat.register_enforceable(
        PACKAGE,
        audit_spec(
            "V-63443",
            "The system must be configured to audit Logon/Logoff - Account Lockout events",
            "Account Lockout records events when an account fails to log on and is locked \
             out — the direct signal of password-guessing attacks.",
        ),
        AuditPolicyPattern::new("Logon/Logoff", "Account Lockout", AuditSetting::BOTH),
    );
    cat.register_enforceable(
        PACKAGE,
        RequirementSpec::builder("V-63405")
            .title(
                "Windows 10 account lockout threshold must be configured to 3 or fewer \
                    invalid logon attempts",
            )
            .severity(Severity::Medium)
            .stig(STIG_NAME)
            .date(STIG_DATE)
            .description(
                "The account lockout feature, when enabled, prevents brute-force password \
                 attacks on the system.",
            )
            .check_text("Verify Account lockout threshold is 1-3 attempts and duration ≥ 15 min.")
            .fix_text("Configure the lockout policy under Account Policies.")
            .build(),
        LockoutPolicyPattern::new(3, 15),
    );
    cat.register_enforceable(
        PACKAGE,
        RequirementSpec::builder("V-63321")
            .title("User Account Control must be enabled (EnableLUA)")
            .severity(Severity::High)
            .stig(STIG_NAME)
            .date(STIG_DATE)
            .description(
                "UAC mediates privilege elevation; disabling it removes the consent \
                          boundary between standard and administrative operations.",
            )
            .check_text(r"Verify EnableLUA = 1 under HKLM\...\Policies\System.")
            .fix_text("Set the EnableLUA registry value to 1.")
            .build(),
        RegistryDwordPattern::new(
            r"HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Policies\System",
            "EnableLUA",
            1,
        ),
    );
    cat
}

/// The whole Windows 10 guide as a single composite requirement — the
/// counterpart of the Java
/// `Windows10SecurityTechnicalImplementationGuide.allSTIGs()` aggregate:
/// checking it checks every finding, enforcing it hardens the host in one
/// call.
///
/// ```
/// use vdo_core::{Checkable, CheckStatus, Enforceable};
/// use vdo_host::WindowsHost;
///
/// let guide = vdo_stigs::win10::full_guide();
/// let mut host = WindowsHost::baseline_win10();
/// assert_eq!(guide.check(&host), CheckStatus::Fail);
/// guide.enforce(&mut host);
/// assert_eq!(guide.check(&host), CheckStatus::Pass);
/// ```
#[must_use]
pub fn full_guide() -> vdo_core::composite::EnforceAll<WindowsHost> {
    vdo_core::composite::EnforceAll::new()
        .with(AuditPolicyPattern::user_account_management(
            AuditSetting::SUCCESS,
        ))
        .with(AuditPolicyPattern::user_account_management(
            AuditSetting::FAILURE,
        ))
        .with(AuditPolicyPattern::logon(AuditSetting::FAILURE))
        .with(AuditPolicyPattern::logon(AuditSetting::SUCCESS))
        .with(AuditPolicyPattern::sensitive_privilege_use(
            AuditSetting::FAILURE,
        ))
        .with(AuditPolicyPattern::sensitive_privilege_use(
            AuditSetting::SUCCESS,
        ))
        .with(AuditPolicyPattern::new(
            "Account Logon",
            "Credential Validation",
            AuditSetting::FAILURE,
        ))
        .with(AuditPolicyPattern::new(
            "Logon/Logoff",
            "Account Lockout",
            AuditSetting::BOTH,
        ))
        .with(LockoutPolicyPattern::new(3, 15))
        .with(RegistryDwordPattern::new(
            r"HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Policies\System",
            "EnableLUA",
            1,
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdo_core::{PlannerConfig, PlannerOutcome, RemediationPlanner};

    #[test]
    fn full_guide_matches_catalog_verdicts() {
        let guide = full_guide();
        let cat = catalog();
        let mut host = WindowsHost::baseline_win10();
        // Aggregate fails exactly when some catalogue entry fails.
        assert_eq!(guide.check(&host), CheckStatus::Fail);
        assert!(cat.check_all(&host).iter().any(|(_, v)| v.is_fail()));
        guide.enforce(&mut host);
        assert_eq!(guide.check(&host), CheckStatus::Pass);
        assert!(cat.check_all(&host).iter().all(|(_, v)| v.is_pass()));
        assert_eq!(guide.len(), cat.len());
    }

    #[test]
    fn audit_pattern_check_covers_semantics() {
        let req = AuditPolicyPattern::logon(AuditSetting::FAILURE);
        let mut host = WindowsHost::new("t");
        assert_eq!(req.check(&host), CheckStatus::Fail);
        host.audit_policy_mut()
            .set("Logon/Logoff", "Logon", AuditSetting::BOTH);
        assert_eq!(
            req.check(&host),
            CheckStatus::Pass,
            "auditing more than required passes"
        );
    }

    #[test]
    fn audit_enforce_unions_with_existing() {
        let success = AuditPolicyPattern::logon(AuditSetting::SUCCESS);
        let failure = AuditPolicyPattern::logon(AuditSetting::FAILURE);
        let mut host = WindowsHost::new("t");
        success.enforce(&mut host);
        failure.enforce(&mut host);
        assert_eq!(
            host.audit_policy().get("Logon/Logoff", "Logon"),
            AuditSetting::BOTH,
            "second enforcement must not clobber the first"
        );
        assert_eq!(success.check(&host), CheckStatus::Pass);
        assert_eq!(failure.check(&host), CheckStatus::Pass);
    }

    #[test]
    fn registry_pattern() {
        let req = RegistryDwordPattern::new(r"HKLM\K", "V", 1);
        let mut host = WindowsHost::new("t");
        assert_eq!(req.check(&host), CheckStatus::Fail);
        host.set_registry_value(r"HKLM\K", "V", RegistryValue::Dword(0));
        assert_eq!(req.check(&host), CheckStatus::Fail);
        req.enforce(&mut host);
        assert_eq!(req.check(&host), CheckStatus::Pass);
        host.set_registry_value(r"HKLM\K", "V", RegistryValue::Sz("1".into()));
        assert_eq!(
            req.check(&host),
            CheckStatus::Fail,
            "wrong value type fails"
        );
    }

    #[test]
    fn lockout_pattern() {
        let req = LockoutPolicyPattern::new(3, 15);
        let mut host = WindowsHost::new("t");
        assert_eq!(
            req.check(&host),
            CheckStatus::Fail,
            "threshold 0 means no lockout"
        );
        host.set_lockout_threshold(10);
        host.set_lockout_duration_minutes(30);
        assert_eq!(
            req.check(&host),
            CheckStatus::Fail,
            "10 attempts is too lax"
        );
        req.enforce(&mut host);
        assert_eq!(req.check(&host), CheckStatus::Pass);
        assert_eq!(host.lockout_duration_minutes(), 30, "longer duration kept");
    }

    #[test]
    fn catalog_contains_annex_findings() {
        let cat = catalog();
        for id in [
            "V-63447", "V-63449", "V-63463", "V-63467", "V-63483", "V-63487",
        ] {
            assert!(cat.find(id).is_some(), "{id} missing");
        }
        assert!(cat.len() >= 8);
        assert!(cat.iter().all(|e| e.is_enforceable()));
    }

    #[test]
    fn baseline_win10_becomes_compliant() {
        let cat = catalog();
        let mut host = WindowsHost::baseline_win10();
        let run = RemediationPlanner::new(PlannerConfig::default()).run(&cat, &mut host);
        assert_eq!(run.outcome, PlannerOutcome::Compliant);
        assert_eq!(
            host.audit_policy()
                .get("Privilege Use", "Sensitive Privilege Use"),
            AuditSetting::BOTH
        );
        assert!(host.lockout_threshold() > 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use vdo_host::DriftInjector;

        proptest! {
            #[test]
            fn enforcement_converges_and_is_idempotent(seed in 0u64..500, events in 0usize..10) {
                let cat = catalog();
                let mut host = WindowsHost::baseline_win10();
                DriftInjector::new(seed).drift_windows(&mut host, events);
                let planner = RemediationPlanner::new(PlannerConfig::default());
                let first = planner.run(&cat, &mut host);
                prop_assert_eq!(first.outcome, PlannerOutcome::Compliant);
                let snapshot = host.clone();
                let second = planner.run(&cat, &mut host);
                prop_assert_eq!(second.enforcements, 0);
                prop_assert_eq!(host, snapshot);
            }
        }
    }
}
