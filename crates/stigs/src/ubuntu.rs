//! Canonical Ubuntu 18.04 LTS STIG requirements.
//!
//! Reusable pattern types first (the RQCODE idea: one class, many
//! findings), then the concrete catalogue. The finding set covers the
//! eight findings the D2.7 annex documents (`V-219157`, `V-219158`,
//! `V-219161`, `V-219177`, `V-219304`, `V-219318`, `V-219319`,
//! `V-219343`) plus an extended hardening set exercised by the
//! experiments.

use vdo_core::{
    Catalog, CheckStatus, Checkable, Enforceable, EnforcementStatus, RequirementSpec, Severity,
};
use vdo_host::{FileMode, HostRead, HostWrite, UnixHost};

/// Package presence/absence pattern — the literal counterpart of
/// `rqcode.stigs.ubuntu.UbuntuPackagePattern(name, mustBeInstalled)`.
///
/// ```
/// use vdo_core::{Checkable, CheckStatus, Enforceable};
/// use vdo_host::UnixHost;
/// use vdo_stigs::ubuntu::UbuntuPackagePattern;
///
/// let no_nis = UbuntuPackagePattern::new("nis", false);
/// let mut host = UnixHost::new("h");
/// host.install_package("nis", "3.17");
/// assert_eq!(no_nis.check(&host), CheckStatus::Fail);
/// no_nis.enforce(&mut host);
/// assert_eq!(no_nis.check(&host), CheckStatus::Pass);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UbuntuPackagePattern {
    name: String,
    must_be_installed: bool,
}

impl UbuntuPackagePattern {
    /// Creates the pattern: `must_be_installed = false` prohibits the
    /// package, `true` requires it.
    #[must_use]
    pub fn new(name: impl Into<String>, must_be_installed: bool) -> Self {
        UbuntuPackagePattern {
            name: name.into(),
            must_be_installed,
        }
    }

    /// The package this pattern governs.
    #[must_use]
    pub fn package_name(&self) -> &str {
        &self.name
    }

    /// `true` if the package must be present, `false` if prohibited.
    #[must_use]
    pub fn must_be_installed(&self) -> bool {
        self.must_be_installed
    }
}

impl<H: HostRead> Checkable<H> for UbuntuPackagePattern {
    fn check(&self, host: &H) -> CheckStatus {
        CheckStatus::from(host.is_package_installed(&self.name) == self.must_be_installed)
    }
}

impl<H: HostWrite> Enforceable<H> for UbuntuPackagePattern {
    fn enforce(&self, host: &mut H) -> EnforcementStatus {
        if self.must_be_installed {
            if !host.is_package_installed(&self.name) {
                host.install_package(&self.name, "stig-enforced");
            }
        } else {
            host.remove_package(&self.name);
        }
        EnforcementStatus::Success
    }
}

/// Configuration-directive pattern: `key` in `path` must equal
/// `expected` (sshd_config, login.defs, PAM files…).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectivePattern {
    path: String,
    key: String,
    expected: String,
}

impl DirectivePattern {
    /// Creates the pattern.
    #[must_use]
    pub fn new(
        path: impl Into<String>,
        key: impl Into<String>,
        expected: impl Into<String>,
    ) -> Self {
        DirectivePattern {
            path: path.into(),
            key: key.into(),
            expected: expected.into(),
        }
    }

    /// The config file this pattern inspects.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The directive key.
    #[must_use]
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The required value.
    #[must_use]
    pub fn expected(&self) -> &str {
        &self.expected
    }
}

impl<H: HostRead> Checkable<H> for DirectivePattern {
    fn check(&self, host: &H) -> CheckStatus {
        match host.directive(&self.path, &self.key) {
            Some(v) => CheckStatus::from(v.eq_ignore_ascii_case(&self.expected)),
            None => CheckStatus::Fail,
        }
    }
}

impl<H: HostWrite> Enforceable<H> for DirectivePattern {
    fn enforce(&self, host: &mut H) -> EnforcementStatus {
        host.write_directive(&self.path, &self.key, &self.expected);
        EnforcementStatus::Success
    }
}

/// File-permission pattern: `path` must be mode `max` or more
/// restrictive. A file missing from the simulation is `Incomplete` (the
/// checker cannot decide), and enforcement creates the mode record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileModePattern {
    path: String,
    max: FileMode,
}

impl FileModePattern {
    /// Creates the pattern.
    #[must_use]
    pub fn new(path: impl Into<String>, max: FileMode) -> Self {
        FileModePattern {
            path: path.into(),
            max,
        }
    }

    /// The path this pattern inspects.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The most permissive acceptable mode.
    #[must_use]
    pub fn max_mode(&self) -> FileMode {
        self.max
    }
}

impl<H: HostRead> Checkable<H> for FileModePattern {
    fn check(&self, host: &H) -> CheckStatus {
        match host.file_mode(&self.path) {
            Some(mode) => CheckStatus::from(mode.at_most(self.max)),
            None => CheckStatus::Incomplete,
        }
    }
}

impl<H: HostWrite> Enforceable<H> for FileModePattern {
    fn enforce(&self, host: &mut H) -> EnforcementStatus {
        host.set_file_mode(&self.path, self.max);
        EnforcementStatus::Success
    }
}

/// Password-storage pattern for `V-219177`: every account's password must
/// be stored encrypted and `login.defs` must select SHA-512 hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EncryptedPasswordsPattern;

impl<H: HostRead> Checkable<H> for EncryptedPasswordsPattern {
    fn check(&self, host: &H) -> CheckStatus {
        let hashing_ok = host
            .directive("/etc/login.defs", "ENCRYPT_METHOD")
            .is_some_and(|v| v.eq_ignore_ascii_case("SHA512"));
        CheckStatus::from(host.all_passwords_encrypted() && hashing_ok)
    }
}

impl<H: HostWrite> Enforceable<H> for EncryptedPasswordsPattern {
    fn enforce(&self, host: &mut H) -> EnforcementStatus {
        host.encrypt_all_passwords();
        host.write_directive("/etc/login.defs", "ENCRYPT_METHOD", "SHA512");
        EnforcementStatus::Success
    }
}

/// Service-state pattern: a service must (not) be enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServicePattern {
    name: String,
    must_be_enabled: bool,
}

impl ServicePattern {
    /// Creates the pattern.
    #[must_use]
    pub fn new(name: impl Into<String>, must_be_enabled: bool) -> Self {
        ServicePattern {
            name: name.into(),
            must_be_enabled,
        }
    }

    /// The service this pattern governs.
    #[must_use]
    pub fn service_name(&self) -> &str {
        &self.name
    }

    /// `true` if the service must be enabled, `false` if prohibited.
    #[must_use]
    pub fn must_be_enabled(&self) -> bool {
        self.must_be_enabled
    }
}

impl<H: HostRead> Checkable<H> for ServicePattern {
    fn check(&self, host: &H) -> CheckStatus {
        let enabled = host.service(&self.name).is_some_and(|s| s.enabled);
        CheckStatus::from(enabled == self.must_be_enabled)
    }
}

impl<H: HostWrite> Enforceable<H> for ServicePattern {
    fn enforce(&self, host: &mut H) -> EnforcementStatus {
        if self.must_be_enabled {
            host.enable_service(&self.name);
        } else {
            host.disable_service(&self.name);
        }
        EnforcementStatus::Success
    }
}

const STIG_NAME: &str = "Canonical Ubuntu 18.04 LTS STIG";
const STIG_DATE: &str = "2021-06-16";
const PACKAGE: &str = "rqcode.stigs.ubuntu";

fn spec(
    id: &str,
    title: &str,
    severity: Severity,
    description: &str,
    check: &str,
    fix: &str,
) -> RequirementSpec {
    RequirementSpec::builder(id)
        .title(title)
        .severity(severity)
        .stig(STIG_NAME)
        .date(STIG_DATE)
        .rule_id(format!("SV-{}_rule", id.trim_start_matches("V-")))
        .description(description)
        .check_text(check)
        .fix_text(fix)
        .build()
}

/// Builds the Ubuntu 18.04 STIG catalogue (D2.7 findings + extended
/// hardening set), all enforceable.
#[must_use]
pub fn catalog() -> Catalog<UnixHost> {
    let mut cat = Catalog::new();

    // ---- The eight findings documented in the D2.7 annex ----
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219157",
            "The Ubuntu operating system must not have the NIS package installed",
            Severity::Medium,
            "Removing the Network Information Service (NIS) package decreases the risk of \
             the accidental (or intentional) activation of NIS or NIS+ services.",
            "Run: dpkg -l | grep nis — no output expected.",
            "Run: sudo apt-get remove nis",
        ),
        UbuntuPackagePattern::new("nis", false),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219158",
            "The Ubuntu operating system must not have the rsh-server package installed",
            Severity::High,
            "The rsh-server service provides an unencrypted remote access service that does \
             not provide for the confidentiality and integrity of user passwords or the \
             remote session.",
            "Run: dpkg -l | grep rsh-server — no output expected.",
            "Run: sudo apt-get remove rsh-server",
        ),
        UbuntuPackagePattern::new("rsh-server", false),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219161",
            "The Ubuntu operating system must not have the telnet daemon installed",
            Severity::High,
            "Remote access services that lack automated control capabilities increase risk. \
             Unencrypted telnet sessions expose credentials to interception.",
            "Run: dpkg -l | grep telnetd — no output expected.",
            "Run: sudo apt-get remove telnetd",
        ),
        UbuntuPackagePattern::new("telnetd", false),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219177",
            "The Ubuntu operating system must store only encrypted representations of passwords",
            Severity::Medium,
            "Passwords need to be protected at all times, and encryption is the standard \
             method for protecting passwords. Unencrypted passwords are easily compromised.",
            "Verify ENCRYPT_METHOD SHA512 in /etc/login.defs and no clear-text entries in \
             /etc/shadow.",
            "Set ENCRYPT_METHOD SHA512 in /etc/login.defs and re-hash stored credentials.",
        ),
        EncryptedPasswordsPattern,
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219304",
            "The Ubuntu operating system must have the vlock package installed for session locking",
            Severity::Medium,
            "A session lock lets users secure their console session when stepping away without \
             logging out; vlock provides the manual lock capability.",
            "Run: dpkg -l | grep vlock — package must be listed as installed.",
            "Run: sudo apt-get install vlock",
        ),
        UbuntuPackagePattern::new("vlock", true),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219318",
            "The Ubuntu operating system must have the smart-card PAM module installed for \
             multifactor remote authentication",
            Severity::Medium,
            "Using an authentication device separate from the information system ensures that \
             a system compromise does not affect credentials stored on the device (e.g. DoD \
             Common Access Card).",
            "Run: dpkg -l | grep libpam-pkcs11 — package must be installed.",
            "Run: sudo apt-get install libpam-pkcs11",
        ),
        UbuntuPackagePattern::new("libpam-pkcs11", true),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219319",
            "The Ubuntu operating system must accept Personal Identity Verification (PIV) \
             credentials",
            Severity::Medium,
            "PIV credentials facilitate standardization and reduce the risk of unauthorized \
             access; opensc-pkcs11 supplies the PIV driver stack.",
            "Run: dpkg -l | grep opensc-pkcs11 — package must be installed.",
            "Run: sudo apt-get install opensc-pkcs11",
        ),
        UbuntuPackagePattern::new("opensc-pkcs11", true),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219343",
            "The Ubuntu operating system must notify designated personnel if baseline \
             configurations are changed in an unauthorized manner (security function \
             verification)",
            Severity::Medium,
            "Without verification of the security functions, security functions may not \
             operate correctly and the failure may go unnoticed; AIDE provides the \
             integrity-verification capability.",
            "Run: dpkg -l | grep aide — package must be installed.",
            "Run: sudo apt-get install aide",
        ),
        UbuntuPackagePattern::new("aide", true),
    );

    // ---- Extended hardening set (exercised by the experiments) ----
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219166",
            "The Ubuntu operating system must not allow unattended or automatic login via SSH \
             with empty passwords",
            Severity::High,
            "Empty-password SSH logins defeat authentication entirely.",
            "Verify PermitEmptyPasswords no in /etc/ssh/sshd_config.",
            "Set PermitEmptyPasswords no and restart sshd.",
        ),
        DirectivePattern::new("/etc/ssh/sshd_config", "PermitEmptyPasswords", "no"),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219167",
            "The Ubuntu operating system must not permit direct root logins over SSH",
            Severity::Medium,
            "Direct root logins remove individual accountability for privileged actions.",
            "Verify PermitRootLogin no in /etc/ssh/sshd_config.",
            "Set PermitRootLogin no and restart sshd.",
        ),
        DirectivePattern::new("/etc/ssh/sshd_config", "PermitRootLogin", "no"),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219165",
            "The Ubuntu operating system must use SSH protocol 2",
            Severity::High,
            "SSH protocol 1 has known cryptographic weaknesses.",
            "Verify Protocol 2 in /etc/ssh/sshd_config.",
            "Set Protocol 2 and restart sshd.",
        ),
        DirectivePattern::new("/etc/ssh/sshd_config", "Protocol", "2"),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219188",
            "The Ubuntu operating system must terminate idle SSH sessions within 10 minutes",
            Severity::Medium,
            "Idle sessions left unlocked are an opportunity for session hijacking.",
            "Verify ClientAliveInterval 600 in /etc/ssh/sshd_config.",
            "Set ClientAliveInterval 600 and restart sshd.",
        ),
        DirectivePattern::new("/etc/ssh/sshd_config", "ClientAliveInterval", "600"),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219201",
            "The /etc/shadow file must be mode 0640 or less permissive",
            Severity::Medium,
            "The shadow file contains password hashes; lax permissions expose them to \
             offline cracking.",
            "Run: stat -c %a /etc/shadow — must be 640 or stricter.",
            "Run: sudo chmod 0640 /etc/shadow",
        ),
        FileModePattern::new("/etc/shadow", FileMode::new(0o640)),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219149",
            "The Ubuntu operating system must have the rsyslog service enabled",
            Severity::Medium,
            "Without centralized logging, audit trails required for incident analysis are \
             incomplete.",
            "Run: systemctl is-enabled rsyslog — must report enabled.",
            "Run: sudo systemctl enable --now rsyslog",
        ),
        ServicePattern::new("rsyslog", true),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219155",
            "The Ubuntu operating system must restrict kernel message buffer access",
            Severity::Low,
            "dmesg output can leak kernel addresses used to defeat ASLR.",
            "Run: sysctl kernel.dmesg_restrict — must be 1.",
            "Set kernel.dmesg_restrict = 1 in /etc/sysctl.d and reload.",
        ),
        KernelParamPattern::new("kernel.dmesg_restrict", "1"),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219156",
            "The Ubuntu operating system must disable core dumps of setuid programs",
            Severity::Low,
            "Core dumps of privileged processes can contain credential material.",
            "Run: sysctl fs.suid_dumpable — must be 0.",
            "Set fs.suid_dumpable = 0 in /etc/sysctl.d and reload.",
        ),
        KernelParamPattern::new("fs.suid_dumpable", "0"),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219159",
            "The Ubuntu operating system must not have the rsh-client package installed",
            Severity::Medium,
            "rsh-client transmits credentials in clear text.",
            "Run: dpkg -l | grep rsh-client — no output expected.",
            "Run: sudo apt-get remove rsh-client",
        ),
        UbuntuPackagePattern::new("rsh-client", false),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219147",
            "The Ubuntu operating system must have the auditd package installed",
            Severity::Medium,
            "Without audit record generation, security-relevant events on the system \
             cannot be attributed or reconstructed.",
            "Run: dpkg -l | grep auditd — package must be installed.",
            "Run: sudo apt-get install auditd",
        ),
        UbuntuPackagePattern::new("auditd", true),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219180",
            "The Ubuntu operating system must enforce a 60-day maximum password lifetime",
            Severity::Low,
            "Passwords used beyond their lifetime give adversaries an extended window to \
             crack and reuse them.",
            "Verify PASS_MAX_DAYS 60 in /etc/login.defs.",
            "Set PASS_MAX_DAYS 60 in /etc/login.defs.",
        ),
        DirectivePattern::new("/etc/login.defs", "PASS_MAX_DAYS", "60"),
    );
    cat.register_enforceable(
        PACKAGE,
        spec(
            "V-219151",
            "The Ubuntu operating system must have the sudo package installed for \
             privilege delegation",
            Severity::Medium,
            "Direct root usage removes individual accountability; sudo provides audited \
             privilege delegation.",
            "Run: dpkg -l | grep sudo — package must be installed.",
            "Run: apt-get install sudo",
        ),
        UbuntuPackagePattern::new("sudo", true),
    );

    cat
}

/// Kernel-parameter pattern: a sysctl key must hold an exact value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelParamPattern {
    key: String,
    expected: String,
}

impl KernelParamPattern {
    /// Creates the pattern.
    #[must_use]
    pub fn new(key: impl Into<String>, expected: impl Into<String>) -> Self {
        KernelParamPattern {
            key: key.into(),
            expected: expected.into(),
        }
    }

    /// The sysctl key this pattern inspects.
    #[must_use]
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The required value.
    #[must_use]
    pub fn expected(&self) -> &str {
        &self.expected
    }
}

impl<H: HostRead> Checkable<H> for KernelParamPattern {
    fn check(&self, host: &H) -> CheckStatus {
        match host.kernel_param(&self.key) {
            Some(v) => CheckStatus::from(v == self.expected),
            None => CheckStatus::Fail,
        }
    }
}

impl<H: HostWrite> Enforceable<H> for KernelParamPattern {
    fn enforce(&self, host: &mut H) -> EnforcementStatus {
        host.set_kernel_param(&self.key, &self.expected);
        EnforcementStatus::Success
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdo_core::{PlannerConfig, PlannerOutcome, RemediationPlanner};

    #[test]
    fn package_pattern_prohibition() {
        let p = UbuntuPackagePattern::new("nis", false);
        let mut h = UnixHost::new("t");
        assert_eq!(
            p.check(&h),
            CheckStatus::Pass,
            "absent prohibited package passes"
        );
        h.install_package("nis", "3.17");
        assert_eq!(p.check(&h), CheckStatus::Fail);
        assert_eq!(p.enforce(&mut h), EnforcementStatus::Success);
        assert_eq!(p.check(&h), CheckStatus::Pass);
    }

    #[test]
    fn package_pattern_requirement() {
        let p = UbuntuPackagePattern::new("vlock", true);
        let mut h = UnixHost::new("t");
        assert_eq!(p.check(&h), CheckStatus::Fail);
        p.enforce(&mut h);
        assert_eq!(p.check(&h), CheckStatus::Pass);
        assert_eq!(h.package_version("vlock"), Some("stig-enforced"));
        // Enforcing an already-installed package must not clobber version.
        h.install_package("vlock", "2.2.2");
        p.enforce(&mut h);
        assert_eq!(h.package_version("vlock"), Some("2.2.2"));
    }

    #[test]
    fn directive_pattern_case_insensitive_value() {
        let p = DirectivePattern::new("/etc/ssh/sshd_config", "PermitRootLogin", "no");
        let mut h = UnixHost::new("t");
        assert_eq!(p.check(&h), CheckStatus::Fail, "missing directive fails");
        h.write_directive("/etc/ssh/sshd_config", "permitrootlogin", "NO");
        assert_eq!(p.check(&h), CheckStatus::Pass);
        h.write_directive("/etc/ssh/sshd_config", "PermitRootLogin", "yes");
        assert_eq!(p.check(&h), CheckStatus::Fail);
        p.enforce(&mut h);
        assert_eq!(p.check(&h), CheckStatus::Pass);
    }

    #[test]
    fn file_mode_pattern_incomplete_when_unknown() {
        let p = FileModePattern::new("/etc/shadow", FileMode::new(0o640));
        let mut h = UnixHost::new("t");
        assert_eq!(p.check(&h), CheckStatus::Incomplete);
        h.set_file_mode("/etc/shadow", FileMode::new(0o644));
        assert_eq!(p.check(&h), CheckStatus::Fail);
        p.enforce(&mut h);
        assert_eq!(p.check(&h), CheckStatus::Pass);
        assert_eq!(h.file_mode("/etc/shadow"), Some(FileMode::new(0o640)));
    }

    #[test]
    fn encrypted_passwords_pattern() {
        let p = EncryptedPasswordsPattern;
        let mut h = UnixHost::new("t");
        h.add_account("a", 1000, false, true);
        assert_eq!(p.check(&h), CheckStatus::Fail, "hashing method not set");
        h.write_directive("/etc/login.defs", "ENCRYPT_METHOD", "SHA512");
        assert_eq!(p.check(&h), CheckStatus::Pass);
        h.corrupt_password_storage("a");
        assert_eq!(p.check(&h), CheckStatus::Fail);
        p.enforce(&mut h);
        assert_eq!(p.check(&h), CheckStatus::Pass);
    }

    #[test]
    fn service_pattern() {
        let p = ServicePattern::new("rsyslog", true);
        let mut h = UnixHost::new("t");
        assert_eq!(p.check(&h), CheckStatus::Fail);
        p.enforce(&mut h);
        assert_eq!(p.check(&h), CheckStatus::Pass);
        let off = ServicePattern::new("telnet", false);
        assert_eq!(
            off.check(&h),
            CheckStatus::Pass,
            "unknown unit counts as disabled"
        );
    }

    #[test]
    fn kernel_param_pattern() {
        let p = KernelParamPattern::new("fs.suid_dumpable", "0");
        let mut h = UnixHost::new("t");
        assert_eq!(p.check(&h), CheckStatus::Fail);
        p.enforce(&mut h);
        assert_eq!(p.check(&h), CheckStatus::Pass);
    }

    #[test]
    fn catalog_shape() {
        let cat = catalog();
        assert!(cat.len() >= 20, "8 annex findings + extended set");
        assert!(cat.iter().all(|e| e.is_enforceable()));
        assert!(cat.find("V-219157").is_some());
        assert!(cat.find("V-219343").is_some());
        let inv = cat.inventory();
        let stats = inv.values().next().unwrap();
        assert_eq!(stats.total, cat.len());
    }

    #[test]
    fn baseline_host_becomes_compliant() {
        let cat = catalog();
        let mut host = UnixHost::baseline_ubuntu_1804();
        let before: Vec<_> = cat
            .check_all(&host)
            .into_iter()
            .filter(|(_, v)| !v.is_pass())
            .map(|(e, _)| e.spec().finding_id().to_string())
            .collect();
        assert!(!before.is_empty(), "stock baseline must violate something");
        let run = RemediationPlanner::new(PlannerConfig::default()).run(&cat, &mut host);
        assert_eq!(run.outcome, PlannerOutcome::Compliant);
        assert!(run.report.summary().remediated >= before.len() - 1);
        assert!(!host.is_package_installed("telnetd"));
        assert!(host.is_package_installed("aide"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use vdo_host::DriftInjector;

        proptest! {
            /// After arbitrary drift, one planner run restores compliance,
            /// and enforcement is idempotent (a second run changes nothing).
            #[test]
            fn enforcement_converges_and_is_idempotent(seed in 0u64..500, events in 0usize..12) {
                let cat = catalog();
                let mut host = UnixHost::baseline_ubuntu_1804();
                DriftInjector::new(seed).drift_unix(&mut host, events);
                let planner = RemediationPlanner::new(PlannerConfig::default());
                let first = planner.run(&cat, &mut host);
                prop_assert_eq!(first.outcome, PlannerOutcome::Compliant);
                let snapshot = host.clone();
                let second = planner.run(&cat, &mut host);
                prop_assert_eq!(second.outcome, PlannerOutcome::Compliant);
                prop_assert_eq!(second.enforcements, 0, "second run must be a no-op");
                prop_assert_eq!(host, snapshot);
            }
        }
    }
}
