//! Vectorized fleet-wide STIG sweeps over the columnar [`FleetStore`].
//!
//! A naive fleet audit is `hosts × findings` pattern evaluations — at a
//! million hosts that dwarfs the real work, because almost every host
//! answers every check exactly like the shared baseline. This module
//! compiles a STIG catalogue into [`CompiledCheck`]s whose
//! [`CheckOp::affected_hosts`] maps each finding onto the columnar
//! overlay table it reads, so a full-fleet sweep costs:
//!
//! * one pattern evaluation against the **baseline** host, plus
//! * one evaluation per **overriding host** per finding — work
//!   proportional to total drift, not fleet size.
//!
//! [`FleetAuditor`] keeps the resulting verdicts as per-host bitmasks
//! (one bit per finding) and re-evaluates **only the dirty hosts** each
//! tick ([`FleetAuditor::refresh`]), optionally fanned out over worker
//! threads with a deterministic merge so the verdict state is
//! byte-identical at any worker count.

use std::collections::BTreeSet;

use vdo_core::{CheckStatus, Checkable, Enforceable, EnforcementStatus};
use vdo_host::{FleetStore, HostRead, HostWrite, Platform};

use crate::ubuntu::{
    DirectivePattern, EncryptedPasswordsPattern, FileModePattern, KernelParamPattern,
    ServicePattern, UbuntuPackagePattern,
};
use crate::win10::{AuditPolicyPattern, LockoutPolicyPattern, RegistryDwordPattern};

/// A pattern evaluation compiled to its columnar access path.
///
/// Each variant wraps one reusable RQCODE pattern type and knows which
/// overlay table that pattern's `check()` reads, so the sweep can ask
/// the store for exactly the hosts whose verdict can differ from the
/// baseline's.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckOp {
    /// Package presence/absence (reads the package column).
    Package(UbuntuPackagePattern),
    /// Config-file directive equality (reads the directive column).
    Directive(DirectivePattern),
    /// File permission ceiling (reads the file-mode column).
    FileMode(FileModePattern),
    /// Password-storage hygiene (reads the account column *and* the
    /// `ENCRYPT_METHOD` directive).
    EncryptedPasswords(EncryptedPasswordsPattern),
    /// Service enablement (reads the service column).
    Service(ServicePattern),
    /// Kernel parameter equality (reads the sysctl column).
    KernelParam(KernelParamPattern),
    /// Windows audit-policy coverage (reads the audit column).
    Audit(AuditPolicyPattern),
    /// Windows registry DWORD equality (reads the registry column).
    RegistryDword(RegistryDwordPattern),
    /// Windows account-lockout policy (reads the lockout column).
    Lockout(LockoutPolicyPattern),
}

impl CheckOp {
    /// Evaluates the wrapped pattern against any host representation.
    pub fn check<H: HostRead>(&self, host: &H) -> CheckStatus {
        match self {
            CheckOp::Package(p) => p.check(host),
            CheckOp::Directive(p) => p.check(host),
            CheckOp::FileMode(p) => p.check(host),
            CheckOp::EncryptedPasswords(p) => p.check(host),
            CheckOp::Service(p) => p.check(host),
            CheckOp::KernelParam(p) => p.check(host),
            CheckOp::Audit(p) => p.check(host),
            CheckOp::RegistryDword(p) => p.check(host),
            CheckOp::Lockout(p) => p.check(host),
        }
    }

    /// Enforces the wrapped pattern against any writable host.
    pub fn enforce<H: HostWrite>(&self, host: &mut H) -> EnforcementStatus {
        match self {
            CheckOp::Package(p) => p.enforce(host),
            CheckOp::Directive(p) => p.enforce(host),
            CheckOp::FileMode(p) => p.enforce(host),
            CheckOp::EncryptedPasswords(p) => p.enforce(host),
            CheckOp::Service(p) => p.enforce(host),
            CheckOp::KernelParam(p) => p.enforce(host),
            CheckOp::Audit(p) => p.enforce(host),
            CheckOp::RegistryDword(p) => p.enforce(host),
            CheckOp::Lockout(p) => p.enforce(host),
        }
    }

    /// The hosts whose verdict for this check **can** differ from the
    /// baseline verdict — exactly the hosts holding an overlay in the
    /// column(s) the check reads. Ascending, duplicate-free.
    #[must_use]
    pub fn affected_hosts(&self, store: &FleetStore) -> Vec<u32> {
        match self {
            CheckOp::Package(p) => store.hosts_with_package_override(p.package_name()),
            CheckOp::Directive(p) => store.hosts_with_directive_override(p.path(), p.key()),
            CheckOp::FileMode(p) => store.hosts_with_mode_override(p.path()),
            CheckOp::EncryptedPasswords(_) => {
                // The check reads both account hygiene and the hashing
                // directive; union the two overlay host sets.
                let mut hosts: BTreeSet<u32> =
                    store.hosts_with_account_overrides().into_iter().collect();
                hosts.extend(
                    store.hosts_with_directive_override("/etc/login.defs", "ENCRYPT_METHOD"),
                );
                hosts.into_iter().collect()
            }
            CheckOp::Service(p) => store.hosts_with_service_override(p.service_name()),
            CheckOp::KernelParam(p) => store.hosts_with_kernel_override(p.key()),
            CheckOp::Audit(p) => store.hosts_with_audit_override(p.category(), p.subcategory()),
            CheckOp::RegistryDword(p) => store.hosts_with_registry_override(p.key(), p.name()),
            CheckOp::Lockout(_) => store.hosts_with_lockout_override(),
        }
    }
}

/// One catalogue finding compiled for the vectorized sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCheck {
    finding_id: String,
    op: CheckOp,
}

impl CompiledCheck {
    /// Pairs a finding id with its compiled op.
    #[must_use]
    pub fn new(finding_id: impl Into<String>, op: CheckOp) -> Self {
        CompiledCheck {
            finding_id: finding_id.into(),
            op,
        }
    }

    /// The STIG finding id (e.g. `V-219157`).
    #[must_use]
    pub fn finding_id(&self) -> &str {
        &self.finding_id
    }

    /// The compiled evaluation op.
    #[must_use]
    pub fn op(&self) -> &CheckOp {
        &self.op
    }
}

/// The Ubuntu 18.04 catalogue compiled for sweeping, in the exact order
/// of [`crate::ubuntu::catalog`] (a unit test enforces the parity).
#[must_use]
pub fn compiled_ubuntu() -> Vec<CompiledCheck> {
    use CheckOp as Op;
    vec![
        CompiledCheck::new(
            "V-219157",
            Op::Package(UbuntuPackagePattern::new("nis", false)),
        ),
        CompiledCheck::new(
            "V-219158",
            Op::Package(UbuntuPackagePattern::new("rsh-server", false)),
        ),
        CompiledCheck::new(
            "V-219161",
            Op::Package(UbuntuPackagePattern::new("telnetd", false)),
        ),
        CompiledCheck::new(
            "V-219177",
            Op::EncryptedPasswords(EncryptedPasswordsPattern),
        ),
        CompiledCheck::new(
            "V-219304",
            Op::Package(UbuntuPackagePattern::new("vlock", true)),
        ),
        CompiledCheck::new(
            "V-219318",
            Op::Package(UbuntuPackagePattern::new("libpam-pkcs11", true)),
        ),
        CompiledCheck::new(
            "V-219319",
            Op::Package(UbuntuPackagePattern::new("opensc-pkcs11", true)),
        ),
        CompiledCheck::new(
            "V-219343",
            Op::Package(UbuntuPackagePattern::new("aide", true)),
        ),
        CompiledCheck::new(
            "V-219166",
            Op::Directive(DirectivePattern::new(
                "/etc/ssh/sshd_config",
                "PermitEmptyPasswords",
                "no",
            )),
        ),
        CompiledCheck::new(
            "V-219167",
            Op::Directive(DirectivePattern::new(
                "/etc/ssh/sshd_config",
                "PermitRootLogin",
                "no",
            )),
        ),
        CompiledCheck::new(
            "V-219165",
            Op::Directive(DirectivePattern::new(
                "/etc/ssh/sshd_config",
                "Protocol",
                "2",
            )),
        ),
        CompiledCheck::new(
            "V-219188",
            Op::Directive(DirectivePattern::new(
                "/etc/ssh/sshd_config",
                "ClientAliveInterval",
                "600",
            )),
        ),
        CompiledCheck::new(
            "V-219201",
            Op::FileMode(FileModePattern::new(
                "/etc/shadow",
                vdo_host::FileMode::new(0o640),
            )),
        ),
        CompiledCheck::new(
            "V-219149",
            Op::Service(ServicePattern::new("rsyslog", true)),
        ),
        CompiledCheck::new(
            "V-219155",
            Op::KernelParam(KernelParamPattern::new("kernel.dmesg_restrict", "1")),
        ),
        CompiledCheck::new(
            "V-219156",
            Op::KernelParam(KernelParamPattern::new("fs.suid_dumpable", "0")),
        ),
        CompiledCheck::new(
            "V-219159",
            Op::Package(UbuntuPackagePattern::new("rsh-client", false)),
        ),
        CompiledCheck::new(
            "V-219147",
            Op::Package(UbuntuPackagePattern::new("auditd", true)),
        ),
        CompiledCheck::new(
            "V-219180",
            Op::Directive(DirectivePattern::new(
                "/etc/login.defs",
                "PASS_MAX_DAYS",
                "60",
            )),
        ),
        CompiledCheck::new(
            "V-219151",
            Op::Package(UbuntuPackagePattern::new("sudo", true)),
        ),
    ]
}

/// The Windows 10 catalogue compiled for sweeping, in the exact order
/// of [`crate::win10::catalog`] (a unit test enforces the parity).
#[must_use]
pub fn compiled_win10() -> Vec<CompiledCheck> {
    use vdo_host::AuditSetting;
    use CheckOp as Op;
    vec![
        CompiledCheck::new(
            "V-63447",
            Op::Audit(AuditPolicyPattern::user_account_management(
                AuditSetting::SUCCESS,
            )),
        ),
        CompiledCheck::new(
            "V-63449",
            Op::Audit(AuditPolicyPattern::user_account_management(
                AuditSetting::FAILURE,
            )),
        ),
        CompiledCheck::new(
            "V-63463",
            Op::Audit(AuditPolicyPattern::logon(AuditSetting::FAILURE)),
        ),
        CompiledCheck::new(
            "V-63467",
            Op::Audit(AuditPolicyPattern::logon(AuditSetting::SUCCESS)),
        ),
        CompiledCheck::new(
            "V-63483",
            Op::Audit(AuditPolicyPattern::sensitive_privilege_use(
                AuditSetting::FAILURE,
            )),
        ),
        CompiledCheck::new(
            "V-63487",
            Op::Audit(AuditPolicyPattern::sensitive_privilege_use(
                AuditSetting::SUCCESS,
            )),
        ),
        CompiledCheck::new(
            "V-63431",
            Op::Audit(AuditPolicyPattern::new(
                "Account Logon",
                "Credential Validation",
                AuditSetting::FAILURE,
            )),
        ),
        CompiledCheck::new(
            "V-63443",
            Op::Audit(AuditPolicyPattern::new(
                "Logon/Logoff",
                "Account Lockout",
                AuditSetting::BOTH,
            )),
        ),
        CompiledCheck::new("V-63405", Op::Lockout(LockoutPolicyPattern::new(3, 15))),
        CompiledCheck::new(
            "V-63321",
            Op::RegistryDword(RegistryDwordPattern::new(
                r"HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Policies\System",
                "EnableLUA",
                1,
            )),
        ),
    ]
}

/// The compiled catalogue for a platform.
#[must_use]
pub fn compiled_for(platform: Platform) -> Vec<CompiledCheck> {
    match platform {
        Platform::Unix => compiled_ubuntu(),
        Platform::Windows => compiled_win10(),
    }
}

/// Evaluates every check against one host, returning `(pass, incomplete)`
/// bitmasks (bit *i* describes check *i*).
fn eval_masks<H: HostRead>(checks: &[CompiledCheck], host: &H) -> (u64, u64) {
    let mut pass = 0u64;
    let mut incomplete = 0u64;
    for (i, c) in checks.iter().enumerate() {
        match c.op().check(host) {
            CheckStatus::Pass => pass |= 1 << i,
            CheckStatus::Incomplete => incomplete |= 1 << i,
            CheckStatus::Fail => {}
        }
    }
    (pass, incomplete)
}

/// Incremental, vectorized fleet auditor.
///
/// Holds one verdict bit pair per `(host, finding)`. Construction does
/// the delta-proportional initial sweep; [`refresh`](FleetAuditor::refresh)
/// re-evaluates only the hosts a drift tick touched (the store's dirty
/// set), and [`refresh_with_workers`](FleetAuditor::refresh_with_workers)
/// parallelizes that with a chunk-ordered merge so results are identical
/// at any worker count.
#[derive(Debug, Clone)]
pub struct FleetAuditor {
    checks: Vec<CompiledCheck>,
    pass: Vec<u64>,
    incomplete: Vec<u64>,
    all_bits: u64,
}

impl FleetAuditor {
    /// Compiles the store's platform catalogue and runs the initial
    /// vectorized sweep: one baseline evaluation plus one evaluation per
    /// overriding host per finding.
    ///
    /// # Panics
    /// If the compiled catalogue exceeds 64 findings (the bitmask width).
    #[must_use]
    pub fn new(store: &FleetStore) -> FleetAuditor {
        let checks = compiled_for(store.platform());
        assert!(
            checks.len() <= 64,
            "FleetAuditor packs verdicts into u64 bitmasks; got {} checks",
            checks.len()
        );
        let all_bits = if checks.len() == 64 {
            u64::MAX
        } else {
            (1u64 << checks.len()) - 1
        };
        let (base_pass, base_inc) = match store.platform() {
            Platform::Unix => eval_masks(&checks, store.baseline_unix().expect("unix baseline")),
            Platform::Windows => {
                eval_masks(&checks, store.baseline_windows().expect("windows baseline"))
            }
        };
        let n = store.len();
        let mut auditor = FleetAuditor {
            checks,
            pass: vec![base_pass; n],
            incomplete: vec![base_inc; n],
            all_bits,
        };
        // Vectorized correction pass: per finding, touch only the hosts
        // holding an overlay in the column(s) that finding reads.
        for i in 0..auditor.checks.len() {
            for h in auditor.checks[i].op().affected_hosts(store) {
                let status = auditor.checks[i].op().check(&store.host(h as usize));
                auditor.set_status(h as usize, i, status);
            }
        }
        auditor
    }

    /// The compiled checks, in catalogue order.
    #[must_use]
    pub fn checks(&self) -> &[CompiledCheck] {
        &self.checks
    }

    /// Number of hosts tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pass.len()
    }

    /// `true` iff the auditor tracks no hosts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pass.is_empty()
    }

    fn set_status(&mut self, host: usize, check: usize, status: CheckStatus) {
        let bit = 1u64 << check;
        match status {
            CheckStatus::Pass => {
                self.pass[host] |= bit;
                self.incomplete[host] &= !bit;
            }
            CheckStatus::Incomplete => {
                self.pass[host] &= !bit;
                self.incomplete[host] |= bit;
            }
            CheckStatus::Fail => {
                self.pass[host] &= !bit;
                self.incomplete[host] &= !bit;
            }
        }
    }

    /// The verdict for one `(host, check)` pair.
    #[must_use]
    pub fn status(&self, host: usize, check: usize) -> CheckStatus {
        let bit = 1u64 << check;
        if self.pass[host] & bit != 0 {
            CheckStatus::Pass
        } else if self.incomplete[host] & bit != 0 {
            CheckStatus::Incomplete
        } else {
            CheckStatus::Fail
        }
    }

    /// `true` iff every check passes on `host`.
    #[must_use]
    pub fn host_compliant(&self, host: usize) -> bool {
        self.pass[host] == self.all_bits
    }

    /// Hosts with at least one non-passing check, ascending.
    #[must_use]
    pub fn failing_hosts(&self) -> Vec<u32> {
        self.pass
            .iter()
            .enumerate()
            .filter(|(_, p)| **p != self.all_bits)
            .map(|(h, _)| u32::try_from(h).expect("host id fits u32"))
            .collect()
    }

    /// Total `(host, check)` pairs currently failing or incomplete.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.pass
            .iter()
            .map(|p| u64::from((*p ^ self.all_bits).count_ones()))
            .sum()
    }

    /// Re-evaluates every check for exactly the given hosts (typically
    /// the store's drained dirty set).
    pub fn refresh(&mut self, store: &FleetStore, dirty: &[u32]) {
        for &h in dirty {
            let (p, inc) = eval_masks(&self.checks, &store.host(h as usize));
            self.pass[h as usize] = p;
            self.incomplete[h as usize] = inc;
        }
    }

    /// [`refresh`](FleetAuditor::refresh) fanned out over `workers`
    /// scoped threads. Hosts are split into contiguous chunks and each
    /// worker's results are applied to disjoint rows, so the final
    /// verdict state is byte-identical for any worker count.
    pub fn refresh_with_workers(&mut self, store: &FleetStore, dirty: &[u32], workers: usize) {
        let workers = workers.max(1);
        if workers == 1 || dirty.len() < 2 {
            self.refresh(store, dirty);
            return;
        }
        let chunk = dirty.len().div_ceil(workers);
        let checks = &self.checks;
        let results: Vec<Vec<(u32, u64, u64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = dirty
                .chunks(chunk)
                .map(|hosts| {
                    scope.spawn(move || {
                        hosts
                            .iter()
                            .map(|&h| {
                                let (p, inc) = eval_masks(checks, &store.host(h as usize));
                                (h, p, inc)
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|j| j.join().expect("sweep worker panicked"))
                .collect()
        });
        for (h, p, inc) in results.into_iter().flatten() {
            self.pass[h as usize] = p;
            self.incomplete[h as usize] = inc;
        }
    }

    /// Brute-force re-evaluation of **every** host — the ground truth
    /// the incremental path is tested against. O(hosts × checks); test
    /// and verification use only.
    pub fn rescan_full(&mut self, store: &FleetStore) {
        for h in 0..store.len() {
            let (p, inc) = eval_masks(&self.checks, &store.host(h));
            self.pass[h] = p;
            self.incomplete[h] = inc;
        }
    }

    /// The raw `(pass, incomplete)` mask pair per host — for equivalence
    /// assertions in tests.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        self.pass
            .iter()
            .zip(&self.incomplete)
            .map(|(p, i)| (*p, *i))
            .collect()
    }

    /// Deterministic verdict lines for the given hosts: one line per
    /// host naming every finding and its verdict, in catalogue order.
    /// Used by experiments to assert byte-identical results across
    /// worker counts.
    #[must_use]
    pub fn verdict_lines(&self, hosts: &[u32]) -> Vec<String> {
        hosts
            .iter()
            .map(|&h| {
                let mut line = format!("host {h}");
                for (i, c) in self.checks.iter().enumerate() {
                    let s = match self.status(h as usize, i) {
                        CheckStatus::Pass => "pass",
                        CheckStatus::Fail => "FAIL",
                        CheckStatus::Incomplete => "incomplete",
                    };
                    line.push_str(&format!(" {}={s}", c.finding_id()));
                }
                line
            })
            .collect()
    }

    /// Enforces every non-passing check on one host through the store's
    /// copy-on-write write path, then re-evaluates the host. Returns the
    /// number of enforcement actions applied.
    pub fn enforce_host(&mut self, store: &mut FleetStore, host: u32) -> usize {
        let h = host as usize;
        let mut applied = 0;
        for i in 0..self.checks.len() {
            if self.status(h, i) != CheckStatus::Pass {
                let op = self.checks[i].op().clone();
                op.enforce(&mut store.host_mut(h));
                applied += 1;
            }
        }
        if applied > 0 {
            let (p, inc) = eval_masks(&self.checks, &store.host(h));
            self.pass[h] = p;
            self.incomplete[h] = inc;
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdo_host::{DriftInjector, FleetConfig};

    fn store_cfg(size: usize, seed: u64, p: f64, platform: Platform) -> FleetConfig {
        FleetConfig::builder()
            .size(size)
            .seed(seed)
            .drift_probability(p)
            .drift_events_per_host(4)
            .platform(platform)
            .build()
            .expect("valid config")
    }

    #[test]
    fn compiled_ubuntu_matches_catalog_order_and_verdicts() {
        let compiled = compiled_ubuntu();
        let cat = crate::ubuntu::catalog();
        assert_eq!(compiled.len(), cat.len());
        let mut host = vdo_host::UnixHost::baseline_ubuntu_1804();
        DriftInjector::new(99).drift(&mut host, Platform::Unix, 6);
        for (c, entry) in compiled.iter().zip(cat.iter()) {
            assert_eq!(c.finding_id(), entry.spec().finding_id());
            assert_eq!(
                c.op().check(&host),
                entry.check(&host),
                "verdict parity for {}",
                c.finding_id()
            );
        }
    }

    #[test]
    fn compiled_win10_matches_catalog_order_and_verdicts() {
        let compiled = compiled_win10();
        let cat = crate::win10::catalog();
        assert_eq!(compiled.len(), cat.len());
        let mut host = vdo_host::WindowsHost::baseline_win10();
        DriftInjector::new(5).drift(&mut host, Platform::Windows, 4);
        for (c, entry) in compiled.iter().zip(cat.iter()) {
            assert_eq!(c.finding_id(), entry.spec().finding_id());
            assert_eq!(c.op().check(&host), entry.check(&host));
        }
    }

    #[test]
    fn initial_sweep_matches_per_host_evaluation() {
        let store = FleetStore::generate(&store_cfg(40, 11, 0.5, Platform::Unix));
        let auditor = FleetAuditor::new(&store);
        let mut brute = auditor.clone();
        brute.rescan_full(&store);
        assert_eq!(auditor.snapshot(), brute.snapshot());
    }

    #[test]
    fn initial_sweep_matches_on_windows_too() {
        let store = FleetStore::generate(&store_cfg(25, 3, 0.6, Platform::Windows));
        let auditor = FleetAuditor::new(&store);
        let mut brute = auditor.clone();
        brute.rescan_full(&store);
        assert_eq!(auditor.snapshot(), brute.snapshot());
    }

    #[test]
    fn refresh_tracks_drift_and_enforcement_repairs_it() {
        let mut store = FleetStore::generate(&store_cfg(30, 7, 0.0, Platform::Unix));
        let mut auditor = FleetAuditor::new(&store);
        assert!(
            auditor.total_violations() > 0,
            "stock baseline must start non-compliant"
        );

        // Drift two hosts through the copy-on-write write path.
        let mut inj = DriftInjector::new(21);
        inj.drift(&mut store.host_mut(4), Platform::Unix, 3);
        inj.drift(&mut store.host_mut(17), Platform::Unix, 3);
        let dirty = store.take_dirty();
        assert!(!dirty.is_empty() && dirty.iter().all(|h| [4, 17].contains(h)));

        auditor.refresh(&store, &dirty);
        let mut brute = auditor.clone();
        brute.rescan_full(&store);
        assert_eq!(auditor.snapshot(), brute.snapshot());

        // Enforcing every failing host drives the whole fleet compliant.
        for h in auditor.failing_hosts() {
            auditor.enforce_host(&mut store, h);
        }
        assert_eq!(auditor.total_violations(), 0);
        assert!((0..store.len()).all(|h| auditor.host_compliant(h)));
    }

    #[test]
    fn worker_counts_do_not_change_verdicts() {
        let mut store = FleetStore::generate(&store_cfg(64, 13, 0.0, Platform::Unix));
        let mut inj = DriftInjector::new(2);
        for h in (0..64).step_by(3) {
            inj.drift(&mut store.host_mut(h), Platform::Unix, 2);
        }
        let dirty = store.take_dirty();
        let base = FleetAuditor::new(&store);
        let mut reference = base.clone();
        reference.refresh(&store, &dirty);
        for workers in [1, 2, 3, 4, 8] {
            let mut a = base.clone();
            a.refresh_with_workers(&store, &dirty, workers);
            assert_eq!(
                a.snapshot(),
                reference.snapshot(),
                "verdicts diverged at {workers} workers"
            );
            assert_eq!(a.verdict_lines(&dirty), reference.verdict_lines(&dirty));
        }
    }

    #[test]
    fn verdict_lines_are_stable_and_readable() {
        let store = FleetStore::generate(&store_cfg(3, 1, 0.0, Platform::Unix));
        let auditor = FleetAuditor::new(&store);
        let lines = auditor.verdict_lines(&[1]);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("host 1 V-219157="));
        // Stock baseline is non-compliant (telnetd installed, aide missing).
        assert!(lines[0].contains("V-219161=FAIL"));
        assert!(lines[0].contains("V-219343=FAIL"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Incremental (dirty-set) detection finds exactly what a
            /// full rescan finds, across multiple drift/enforce rounds.
            #[test]
            fn incremental_equals_full_rescan(
                seed in 0u64..200,
                size in 5usize..40,
                rounds in 1usize..4,
            ) {
                let mut store =
                    FleetStore::generate(&store_cfg(size, seed, 0.3, Platform::Unix));
                let mut auditor = FleetAuditor::new(&store);
                let mut inj = DriftInjector::new(seed.wrapping_mul(31));
                for r in 0..rounds {
                    let victim = (seed as usize + r * 7) % size;
                    inj.drift(&mut store.host_mut(victim), Platform::Unix, 2);
                    let dirty = store.take_dirty();
                    auditor.refresh_with_workers(&store, &dirty, 1 + r % 3);
                    let mut brute = auditor.clone();
                    brute.rescan_full(&store);
                    prop_assert_eq!(auditor.snapshot(), brute.snapshot());
                }
            }

            /// The columnar sweep agrees with the legacy per-host
            /// catalogue evaluation at equal seeds.
            #[test]
            fn columnar_sweep_equals_legacy_catalog(
                seed in 0u64..200,
                size in 1usize..25,
                p in 0.0f64..1.0,
            ) {
                let cfg = store_cfg(size, seed, p, Platform::Unix);
                let store = FleetStore::generate(&cfg);
                let fleet = vdo_host::Fleet::generate(&cfg);
                let auditor = FleetAuditor::new(&store);
                let cat = crate::ubuntu::catalog();
                for (i, host) in fleet.hosts().enumerate() {
                    let legacy = host.as_unix().expect("unix fleet");
                    for (j, (_, verdict)) in cat.check_all(legacy).iter().enumerate() {
                        prop_assert_eq!(auditor.status(i, j), *verdict);
                    }
                }
            }
        }
    }
}
