//! # vdo-soc — event-driven security-operations engine
//!
//! The VeriDevOps operations story ("protection at operations") is a
//! monitor that *reacts* to what happens on the fleet. The polling
//! [`MonitoringLoop`](vdo_temporal::MonitoringLoop) re-checks on a
//! fixed period and therefore pays a mean detection latency of
//! `(period - 1) / 2` ticks; this crate is the event-driven
//! alternative: every host mutation becomes a typed [`SecEvent`] on a
//! sharded bus, and monitors run *per event*, detecting violations on
//! the tick they happen.
//!
//! Four layers:
//!
//! * **bus** ([`ShardedBus`]) — bounded crossbeam queues, one per
//!   shard; hosts map to shards by a fixed hash; every event carries a
//!   per-shard sequence number; a full queue pushes back on the
//!   publisher ([`PublishError::Backpressure`]);
//! * **runtime** ([`TaskQueues`]) — a work-stealing worker pool
//!   (injector + per-worker deques + sibling stealing) that dispatches
//!   shard batches; one shard is processed by exactly one worker per
//!   tick, preserving per-host event order under any schedule;
//! * **monitors** — STIG catalogue re-checks, the owned temporal
//!   compliance monitor [`ComplianceUniversality`], and per-host TEARS
//!   guarded assertions ([`TearsHostMonitor`]);
//! * **remediation** ([`Dispatcher`]) — bounded retries with
//!   exponential backoff and a dead-letter incident queue, exercised
//!   by seeded fault injection;
//!
//! plus lock-free **metrics** ([`SocMetrics`]) with fixed-bucket
//! latency histograms that snapshot to JSON.
//!
//! Determinism contract: a fixed seed yields a byte-identical incident
//! log ([`SocReport::incident_log`]) for *any* worker count.
//!
//! ```
//! use vdo_soc::{SocConfig, SocEngine};
//! use vdo_core::RemediationPlanner;
//! use vdo_host::UnixHost;
//!
//! let catalog = vdo_stigs::ubuntu::catalog();
//! let mut host = UnixHost::baseline_ubuntu_1804();
//! RemediationPlanner::default().run(&catalog, &mut host);
//! let mut fleet = vec![host];
//! let engine = SocEngine::new(&catalog, SocConfig {
//!     duration: 100,
//!     drift_rate: 0.1,
//!     seed: 7,
//!     ..SocConfig::default()
//! }).unwrap();
//! let report = engine.run(&mut fleet);
//! // Every detection lands on the tick its drift happened.
//! assert!(report.incidents.iter().all(|i| i.latency() == 0));
//! ```

pub mod bus;
pub mod engine;
pub mod event;
pub mod metrics;
pub mod monitors;
pub mod remediation;
pub mod runtime;

pub use bus::{PublishError, ShardedBus};
pub use engine::{SloPolicy, SocConfig, SocConfigError, SocEngine, SocHost, SocReport, SocTracing};
pub use event::{shard_of, Envelope, HostId, SecEvent};
pub use metrics::{MetricsSnapshot, SocMetrics};
pub use monitors::{
    ComplianceUniversality, Detection, DetectionKind, HostMonitors, TearsHostMonitor,
};
pub use remediation::{DeadLetter, Dispatcher, RemediationConfig, RemediationTask, SocIncident};
pub use runtime::{Batch, TaskQueues, TaskSource};
