//! SOC runtime metrics, built on the [`vdo_obs`] primitives.
//!
//! Everything here is updated with relaxed atomics from publisher,
//! worker, and dispatcher threads, and read out as an immutable
//! [`MetricsSnapshot`] that serialises to JSON. Counters measure load
//! (events, batches, steals, retries); the histograms capture the two
//! latency distributions the E11 experiment reports — detection latency
//! in ticks and per-batch processing time in microseconds.
//!
//! The concrete counter/histogram types live in `vdo-obs`; what remains
//! here is the SOC-specific instrument set. [`SocMetrics::disabled`]
//! wires every instrument to the no-op recorder, which is what
//! experiment E12 benchmarks against the enabled default.

use serde::Serialize;
use vdo_obs::{Counter, Gauge};

/// Live counters for one engine run. Shared by reference across the
/// publisher, the worker pool, and the remediation dispatcher.
#[derive(Debug)]
pub struct SocMetrics {
    /// Events accepted onto the bus.
    pub events_published: Counter,
    /// Events deferred at least once due to a full shard queue.
    pub events_deferred: Counter,
    /// Events consumed by workers (including follow-ups).
    pub events_processed: Counter,
    /// Shard batches executed.
    pub batches: Counter,
    /// Batches a worker obtained by stealing (injector or sibling).
    pub steals: Counter,
    /// Catalogue rule checks performed.
    pub checks_run: Counter,
    /// High-water mark of any shard queue depth.
    pub max_queue_depth: Gauge,
    /// Remediation attempts that were retried after an injected fault.
    pub retries: Counter,
    /// Remediations abandoned to the dead-letter queue.
    pub dead_letters: Counter,
    /// Successful remediations.
    pub remediations: Counter,
    /// Detection latency in ticks (drift tick to detection tick).
    pub detection_latency: vdo_obs::Histogram,
    /// Wall-clock batch processing time in microseconds.
    pub batch_micros: vdo_obs::Histogram,
}

impl SocMetrics {
    /// Fresh, all-zero metrics.
    #[must_use]
    pub fn new() -> Self {
        SocMetrics {
            events_published: Counter::new(),
            events_deferred: Counter::new(),
            events_processed: Counter::new(),
            batches: Counter::new(),
            steals: Counter::new(),
            checks_run: Counter::new(),
            max_queue_depth: Gauge::new(),
            retries: Counter::new(),
            dead_letters: Counter::new(),
            remediations: Counter::new(),
            detection_latency: vdo_obs::Histogram::ticks(),
            batch_micros: vdo_obs::Histogram::micros(),
        }
    }

    /// The no-op recorder: every instrument is inert, the snapshot is
    /// all zeros. Pass to
    /// [`SocEngine::run_with_metrics`](crate::SocEngine::run_with_metrics)
    /// to measure the engine with observability off (experiment E12).
    #[must_use]
    pub fn disabled() -> Self {
        SocMetrics {
            events_published: Counter::disabled(),
            events_deferred: Counter::disabled(),
            events_processed: Counter::disabled(),
            batches: Counter::disabled(),
            steals: Counter::disabled(),
            checks_run: Counter::disabled(),
            max_queue_depth: Gauge::disabled(),
            retries: Counter::disabled(),
            dead_letters: Counter::disabled(),
            remediations: Counter::disabled(),
            detection_latency: vdo_obs::Histogram::disabled(),
            batch_micros: vdo_obs::Histogram::disabled(),
        }
    }

    /// `true` when the instruments record (see [`SocMetrics::disabled`]).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.events_published.is_enabled()
    }

    /// Records a shard queue depth observation.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.max_queue_depth.record_max(depth);
    }

    /// Registers every instrument into `registry` under
    /// `<prefix>.<name>`, so an engine run surfaces in a unified
    /// [`vdo_obs::Snapshot`] alongside the rest of the closed loop.
    /// Only deterministic instruments are exported: `steals`,
    /// `max_queue_depth`, and `batch_micros` depend on scheduling and
    /// stay engine-local so equal-seed snapshots stay identical at any
    /// worker count.
    #[must_use]
    pub fn in_registry(registry: &vdo_obs::Registry, prefix: &str) -> Self {
        SocMetrics {
            events_published: registry.counter(&format!("{prefix}.events_published")),
            events_deferred: registry.counter(&format!("{prefix}.events_deferred")),
            events_processed: registry.counter(&format!("{prefix}.events_processed")),
            batches: registry.counter(&format!("{prefix}.batches")),
            steals: Counter::new(),
            checks_run: registry.counter(&format!("{prefix}.checks_run")),
            max_queue_depth: Gauge::new(),
            retries: registry.counter(&format!("{prefix}.retries")),
            dead_letters: registry.counter(&format!("{prefix}.dead_letters")),
            remediations: registry.counter(&format!("{prefix}.remediations")),
            detection_latency: registry.histogram(
                &format!("{prefix}.detection_latency"),
                &vdo_obs::TICK_BOUNDS,
            ),
            batch_micros: vdo_obs::Histogram::micros(),
        }
    }

    /// Immutable copy of all counters and histograms.
    #[must_use]
    pub fn snapshot(&self, wall_secs: f64) -> MetricsSnapshot {
        let processed = self.events_processed.get();
        MetricsSnapshot {
            events_published: self.events_published.get(),
            events_deferred: self.events_deferred.get(),
            events_processed: processed,
            batches: self.batches.get(),
            steals: self.steals.get(),
            checks_run: self.checks_run.get(),
            max_queue_depth: self.max_queue_depth.get(),
            retries: self.retries.get(),
            dead_letters: self.dead_letters.get(),
            remediations: self.remediations.get(),
            events_per_sec: if wall_secs > 0.0 {
                processed as f64 / wall_secs
            } else {
                0.0
            },
            detection_latency: self.detection_latency.snapshot(),
            batch_micros: self.batch_micros.snapshot(),
        }
    }
}

impl Default for SocMetrics {
    fn default() -> Self {
        SocMetrics::new()
    }
}

/// Frozen metrics for one run; serialises to JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Events accepted onto the bus.
    pub events_published: u64,
    /// Events deferred at least once by backpressure.
    pub events_deferred: u64,
    /// Events consumed by workers.
    pub events_processed: u64,
    /// Shard batches executed.
    pub batches: u64,
    /// Batches obtained by stealing.
    pub steals: u64,
    /// Catalogue rule checks performed.
    pub checks_run: u64,
    /// High-water mark of shard queue depth.
    pub max_queue_depth: u64,
    /// Remediation retries.
    pub retries: u64,
    /// Remediations dead-lettered.
    pub dead_letters: u64,
    /// Successful remediations.
    pub remediations: u64,
    /// Worker throughput over the run's wall-clock time.
    pub events_per_sec: f64,
    /// Detection latency distribution (ticks).
    pub detection_latency: vdo_obs::HistogramSnapshot,
    /// Batch processing time distribution (µs).
    pub batch_micros: vdo_obs::HistogramSnapshot,
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> serde::json::Value {
        serde::json::object([
            ("events_published", self.events_published.to_value()),
            ("events_deferred", self.events_deferred.to_value()),
            ("events_processed", self.events_processed.to_value()),
            ("batches", self.batches.to_value()),
            ("steals", self.steals.to_value()),
            ("checks_run", self.checks_run.to_value()),
            ("max_queue_depth", self.max_queue_depth.to_value()),
            ("retries", self.retries.to_value()),
            ("dead_letters", self.dead_letters.to_value()),
            ("remediations", self.remediations.to_value()),
            ("events_per_sec", self.events_per_sec.to_value()),
            ("detection_latency", self.detection_latency.to_value()),
            ("batch_micros", self.batch_micros.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = vdo_obs::Histogram::ticks();
        h.record(0);
        h.record(3);
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.counts[0], 1, "0 lands in the first bucket");
        assert_eq!(s.counts[3], 1, "3 lands in the <=4 bucket");
        assert_eq!(*s.counts.last().unwrap(), 1, "overflow bucket");
        assert_eq!(s.max, 1_000_000);
        assert!((s.mean() - (1_000_003.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn snapshot_serialises_to_json() {
        let m = SocMetrics::new();
        m.events_published.add(5);
        m.detection_latency.record(2);
        let json = serde::json::to_string(&m.snapshot(1.0));
        assert!(json.contains("\"events_published\":5"));
        assert!(json.contains("\"detection_latency\""));
    }

    #[test]
    fn queue_depth_keeps_the_high_water_mark() {
        let m = SocMetrics::new();
        m.observe_queue_depth(3);
        m.observe_queue_depth(9);
        m.observe_queue_depth(1);
        assert_eq!(m.max_queue_depth.get(), 9);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let m = SocMetrics::disabled();
        assert!(!m.is_enabled());
        m.events_published.add(5);
        m.observe_queue_depth(9);
        m.detection_latency.record(2);
        let s = m.snapshot(1.0);
        assert_eq!(s.events_published, 0);
        assert_eq!(s.max_queue_depth, 0);
        assert_eq!(s.detection_latency.count, 0);
    }

    #[test]
    fn registry_backed_metrics_surface_in_the_snapshot() {
        let registry = vdo_obs::Registry::new();
        let m = SocMetrics::in_registry(&registry, "soc");
        m.events_published.add(2);
        m.checks_run.add(17);
        m.detection_latency.record(0);
        m.steals.inc(); // engine-local: deliberately not exported
        let snap = registry.snapshot();
        assert_eq!(snap.counter("soc.events_published"), Some(2));
        assert_eq!(snap.counter("soc.checks_run"), Some(17));
        assert_eq!(snap.histograms["soc.detection_latency"].count, 1);
        assert_eq!(snap.counter("soc.steals"), None);
    }
}
