//! SOC runtime metrics: lock-free counters and fixed-bucket histograms.
//!
//! Everything here is updated with relaxed atomics from publisher,
//! worker, and dispatcher threads, and read out as an immutable
//! [`MetricsSnapshot`] that serialises to JSON. Counters measure load
//! (events, batches, steals, retries); the histograms capture the two
//! latency distributions the E11 experiment reports — detection latency
//! in ticks and per-batch processing time in microseconds.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// Upper bucket bounds (inclusive) for tick-valued latencies.
const TICK_BOUNDS: [u64; 10] = [0, 1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Upper bucket bounds (inclusive) for microsecond-valued durations.
const MICROS_BOUNDS: [u64; 10] = [
    10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000,
];

/// A fixed-bucket histogram with atomic buckets. Values above the last
/// bound land in the overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn with_bounds(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// A histogram bucketed for tick-valued latencies (0..=256+).
    #[must_use]
    pub fn ticks() -> Self {
        Histogram::with_bounds(&TICK_BOUNDS)
    }

    /// A histogram bucketed for microsecond durations (10µs..=500ms+).
    #[must_use]
    pub fn micros() -> Self {
        Histogram::with_bounds(&MICROS_BOUNDS)
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Immutable copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Frozen histogram state. `counts` has one more entry than `bounds`
/// (the overflow bucket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds per bucket.
    pub bounds: Vec<u64>,
    /// Observations per bucket (last entry = overflow).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Serialize for HistogramSnapshot {
    fn to_value(&self) -> serde::json::Value {
        serde::json::object([
            ("bounds", self.bounds.to_value()),
            ("counts", self.counts.to_value()),
            ("count", self.count.to_value()),
            ("sum", self.sum.to_value()),
            ("max", self.max.to_value()),
            ("mean", self.mean().to_value()),
        ])
    }
}

/// Live counters for one engine run. Shared by reference across the
/// publisher, the worker pool, and the remediation dispatcher.
#[derive(Debug)]
pub struct SocMetrics {
    /// Events accepted onto the bus.
    pub events_published: AtomicU64,
    /// Events deferred at least once due to a full shard queue.
    pub events_deferred: AtomicU64,
    /// Events consumed by workers (including follow-ups).
    pub events_processed: AtomicU64,
    /// Shard batches executed.
    pub batches: AtomicU64,
    /// Batches a worker obtained by stealing (injector or sibling).
    pub steals: AtomicU64,
    /// Catalogue rule checks performed.
    pub checks_run: AtomicU64,
    /// High-water mark of any shard queue depth.
    pub max_queue_depth: AtomicU64,
    /// Remediation attempts that were retried after an injected fault.
    pub retries: AtomicU64,
    /// Remediations abandoned to the dead-letter queue.
    pub dead_letters: AtomicU64,
    /// Successful remediations.
    pub remediations: AtomicU64,
    /// Detection latency in ticks (drift tick to detection tick).
    pub detection_latency: Histogram,
    /// Wall-clock batch processing time in microseconds.
    pub batch_micros: Histogram,
}

impl SocMetrics {
    /// Fresh, all-zero metrics.
    #[must_use]
    pub fn new() -> Self {
        SocMetrics {
            events_published: AtomicU64::new(0),
            events_deferred: AtomicU64::new(0),
            events_processed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            checks_run: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            dead_letters: AtomicU64::new(0),
            remediations: AtomicU64::new(0),
            detection_latency: Histogram::ticks(),
            batch_micros: Histogram::micros(),
        }
    }

    /// Records a shard queue depth observation.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Immutable copy of all counters and histograms.
    #[must_use]
    pub fn snapshot(&self, wall_secs: f64) -> MetricsSnapshot {
        let processed = self.events_processed.load(Ordering::Relaxed);
        MetricsSnapshot {
            events_published: self.events_published.load(Ordering::Relaxed),
            events_deferred: self.events_deferred.load(Ordering::Relaxed),
            events_processed: processed,
            batches: self.batches.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            checks_run: self.checks_run.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            dead_letters: self.dead_letters.load(Ordering::Relaxed),
            remediations: self.remediations.load(Ordering::Relaxed),
            events_per_sec: if wall_secs > 0.0 {
                processed as f64 / wall_secs
            } else {
                0.0
            },
            detection_latency: self.detection_latency.snapshot(),
            batch_micros: self.batch_micros.snapshot(),
        }
    }
}

impl Default for SocMetrics {
    fn default() -> Self {
        SocMetrics::new()
    }
}

/// Frozen metrics for one run; serialises to JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Events accepted onto the bus.
    pub events_published: u64,
    /// Events deferred at least once by backpressure.
    pub events_deferred: u64,
    /// Events consumed by workers.
    pub events_processed: u64,
    /// Shard batches executed.
    pub batches: u64,
    /// Batches obtained by stealing.
    pub steals: u64,
    /// Catalogue rule checks performed.
    pub checks_run: u64,
    /// High-water mark of shard queue depth.
    pub max_queue_depth: u64,
    /// Remediation retries.
    pub retries: u64,
    /// Remediations dead-lettered.
    pub dead_letters: u64,
    /// Successful remediations.
    pub remediations: u64,
    /// Worker throughput over the run's wall-clock time.
    pub events_per_sec: f64,
    /// Detection latency distribution (ticks).
    pub detection_latency: HistogramSnapshot,
    /// Batch processing time distribution (µs).
    pub batch_micros: HistogramSnapshot,
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> serde::json::Value {
        serde::json::object([
            ("events_published", self.events_published.to_value()),
            ("events_deferred", self.events_deferred.to_value()),
            ("events_processed", self.events_processed.to_value()),
            ("batches", self.batches.to_value()),
            ("steals", self.steals.to_value()),
            ("checks_run", self.checks_run.to_value()),
            ("max_queue_depth", self.max_queue_depth.to_value()),
            ("retries", self.retries.to_value()),
            ("dead_letters", self.dead_letters.to_value()),
            ("remediations", self.remediations.to_value()),
            ("events_per_sec", self.events_per_sec.to_value()),
            ("detection_latency", self.detection_latency.to_value()),
            ("batch_micros", self.batch_micros.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::ticks();
        h.record(0);
        h.record(3);
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.counts[0], 1, "0 lands in the first bucket");
        assert_eq!(s.counts[3], 1, "3 lands in the <=4 bucket");
        assert_eq!(*s.counts.last().unwrap(), 1, "overflow bucket");
        assert_eq!(s.max, 1_000_000);
        assert!((s.mean() - (1_000_003.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn snapshot_serialises_to_json() {
        let m = SocMetrics::new();
        m.events_published.fetch_add(5, Ordering::Relaxed);
        m.detection_latency.record(2);
        let json = serde::json::to_string(&m.snapshot(1.0));
        assert!(json.contains("\"events_published\":5"));
        assert!(json.contains("\"detection_latency\""));
    }

    #[test]
    fn queue_depth_keeps_the_high_water_mark() {
        let m = SocMetrics::new();
        m.observe_queue_depth(3);
        m.observe_queue_depth(9);
        m.observe_queue_depth(1);
        assert_eq!(m.max_queue_depth.load(Ordering::Relaxed), 9);
    }
}
