//! The sharded security-event bus.
//!
//! `shards` independent bounded queues (crossbeam MPMC channels), each
//! with its own sequence counter. Routing is by host ([`shard_of`]), so
//! all events of one host flow through one shard in a gap-free total
//! order — the serialization unit the work-stealing runtime preserves.
//!
//! Publishing never blocks: a full shard queue reports
//! [`PublishError::Backpressure`] and hands the event back, letting the
//! publisher apply its own deferral policy (the engine re-publishes
//! deferred events at the start of the next tick, which is where nonzero
//! detection latency comes from in an overloaded SOC).

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use vdo_trace::TraceContext;

use crate::event::{shard_of, Envelope, SecEvent};

/// Why a publish did not land.
#[derive(Debug, PartialEq)]
pub enum PublishError {
    /// The target shard's queue is full; the event is handed back so the
    /// caller can defer or drop it.
    Backpressure(SecEvent),
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::Backpressure(e) => {
                write!(f, "shard queue full, event deferred (host {})", e.host())
            }
        }
    }
}

struct Shard {
    tx: Sender<Envelope>,
    rx: Receiver<Envelope>,
    /// Next sequence number. Held across assign-and-send so concurrent
    /// publishers cannot interleave a later seq before an earlier one.
    seq: Mutex<u64>,
}

/// The bus: `shards` bounded, sequenced event queues.
pub struct ShardedBus {
    shards: Vec<Shard>,
    capacity: usize,
}

impl ShardedBus {
    /// Creates a bus with `shards` queues of `capacity` events each.
    ///
    /// # Panics
    /// When `shards` or `capacity` is zero.
    #[must_use]
    pub fn new(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0, "bus needs at least one shard");
        assert!(capacity > 0, "shard queues must hold at least one event");
        let shards = (0..shards)
            .map(|_| {
                let (tx, rx) = bounded(capacity);
                Shard {
                    tx,
                    rx,
                    seq: Mutex::new(0),
                }
            })
            .collect();
        ShardedBus { shards, capacity }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard queue capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The shard `host`'s events route to.
    #[must_use]
    pub fn shard_for(&self, host: usize) -> usize {
        shard_of(host, self.shards.len())
    }

    /// Publishes `event` to its host's shard. Returns the `(shard, seq)`
    /// stamp on success; on a full queue the event comes back as
    /// [`PublishError::Backpressure`] and no sequence number is consumed.
    pub fn publish(&self, event: SecEvent) -> Result<(usize, u64), PublishError> {
        self.publish_traced(event, None)
    }

    /// Like [`publish`](Self::publish), but stamps the envelope with the
    /// publisher's causal context so consumers can chain their own spans
    /// off it. On backpressure the *event* is handed back; the caller
    /// still holds the context and re-attaches it on retry.
    pub fn publish_traced(
        &self,
        event: SecEvent,
        trace: Option<TraceContext>,
    ) -> Result<(usize, u64), PublishError> {
        let shard = self.shard_for(event.host());
        let s = &self.shards[shard];
        let mut seq = s.seq.lock();
        let envelope = Envelope {
            shard,
            seq: *seq,
            trace,
            event,
        };
        match s.tx.try_send(envelope) {
            Ok(()) => {
                let stamped = *seq;
                *seq += 1;
                Ok((shard, stamped))
            }
            Err(e) => Err(PublishError::Backpressure(e.into_inner().event)),
        }
    }

    /// Pops the next event from `shard`, if any.
    #[must_use]
    pub fn pop(&self, shard: usize) -> Option<Envelope> {
        self.shards[shard].rx.try_recv().ok()
    }

    /// Current depth of `shard`'s queue.
    #[must_use]
    pub fn depth(&self, shard: usize) -> usize {
        self.shards[shard].rx.len()
    }

    /// `true` iff every shard queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        (0..self.shards.len()).all(|s| self.depth(s) == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(host: usize, tick: u64) -> SecEvent {
        SecEvent::SignalTick {
            host,
            tick,
            signals: vec![("load", 0.1)],
        }
    }

    #[test]
    fn sequences_are_gap_free_per_shard() {
        let bus = ShardedBus::new(4, 512);
        for tick in 0..40 {
            for host in 0..8 {
                bus.publish(signal(host, tick)).unwrap();
            }
        }
        for shard in 0..4 {
            let mut expected = 0;
            while let Some(env) = bus.pop(shard) {
                assert_eq!(env.shard, shard);
                assert_eq!(env.seq, expected, "shard {shard} has a seq gap");
                expected += 1;
            }
        }
    }

    #[test]
    fn backpressure_hands_the_event_back_without_burning_a_seq() {
        let bus = ShardedBus::new(1, 2);
        bus.publish(signal(0, 0)).unwrap();
        bus.publish(signal(0, 1)).unwrap();
        let Err(PublishError::Backpressure(e)) = bus.publish(signal(0, 2)) else {
            panic!("third publish must hit backpressure");
        };
        assert_eq!(e.tick(), 2);
        // Drain one and retry: the seq continues gap-free.
        assert_eq!(bus.pop(0).unwrap().seq, 0);
        let (_, seq) = bus.publish(e).unwrap();
        assert_eq!(seq, 2);
    }

    #[test]
    fn envelopes_carry_the_publishers_trace_context() {
        let bus = ShardedBus::new(2, 8);
        let ctx = TraceContext::root(9, "V-1").child("drift");
        bus.publish_traced(signal(0, 0), Some(ctx)).unwrap();
        bus.publish(signal(0, 1)).unwrap();
        let shard = bus.shard_for(0);
        assert_eq!(bus.pop(shard).unwrap().trace, Some(ctx));
        assert_eq!(
            bus.pop(shard).unwrap().trace,
            None,
            "plain publish is untraced"
        );
    }

    #[test]
    fn one_hosts_events_always_share_a_shard() {
        let bus = ShardedBus::new(7, 16);
        let s = bus.shard_for(42);
        for tick in 0..5 {
            let (shard, _) = bus.publish(signal(42, tick)).unwrap();
            assert_eq!(shard, s);
        }
    }

    #[test]
    fn concurrent_publishers_keep_each_shard_ordered() {
        use std::sync::Arc;
        let bus = Arc::new(ShardedBus::new(2, 10_000));
        let handles: Vec<_> = (0..4)
            .map(|p| {
                let bus = Arc::clone(&bus);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        bus.publish(signal(p % 3, i)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for shard in 0..2 {
            let mut expected = 0;
            while let Some(env) = bus.pop(shard) {
                assert_eq!(env.seq, expected);
                expected += 1;
            }
        }
    }
}
