//! Per-host incremental monitors driven by bus events.
//!
//! Three detector families subscribe to the bus, mirroring the three
//! verification layers of the reproduced stack:
//!
//! * **STIG re-checks** — on `DriftApplied`/`ConfigChanged` the worker
//!   re-runs the compliance catalogue against the host and publishes a
//!   `CheckResult` follow-up per rule (see the runtime module);
//! * **temporal patterns** — [`ComplianceUniversality`] is an *owned*
//!   streaming `A[] compliant` monitor implementing
//!   [`vdo_temporal::PatternMonitor`], fed by the `CheckResult` stream
//!   (the borrowed monitors returned by `TemporalPattern::begin` cannot
//!   outlive their pattern, which a long-lived monitor registry needs);
//! * **TEARS guarded assertions** — [`TearsHostMonitor`] accumulates a
//!   host's `SignalTick` telemetry into a `SignalTrace` and streams it
//!   through [`vdo_tears::OwnedGaMonitor`].
//!
//! All three report [`Detection`]s, which the remediation dispatcher
//! turns into incidents.

use vdo_core::CheckStatus;
use vdo_tears::{GuardedAssertion, OwnedGaMonitor, SignalTrace};
use vdo_temporal::PatternMonitor;
use vdo_trace::TraceContext;

use crate::event::HostId;

/// What class of monitor raised a detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DetectionKind {
    /// A STIG catalogue rule failed on re-check.
    Stig,
    /// A TEARS guarded assertion confirmed a violation.
    Tears,
}

impl std::fmt::Display for DetectionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DetectionKind::Stig => "stig",
            DetectionKind::Tears => "tears",
        })
    }
}

/// One monitor finding, ordered by the `(shard, seq)` stamp of the
/// event that triggered it — the key that makes the merged detection
/// stream independent of worker scheduling.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Detection {
    /// Shard of the triggering event.
    pub shard: usize,
    /// Sequence number of the triggering event within its shard.
    pub seq: u64,
    /// Affected host.
    pub host: HostId,
    /// Finding id (STIG rule) or assertion name (TEARS).
    pub rule: String,
    /// Detector family.
    pub kind: DetectionKind,
    /// Tick the violation entered the system (drift tick / activation
    /// tick).
    pub introduced_at: u64,
    /// Tick the monitor confirmed it.
    pub detected_at: u64,
    /// Causal context when tracing is on: a child of the originating
    /// requirement's root trace, so the incident chain resolves back to
    /// the catalogue rule. Last field on purpose — the `(shard, seq)`
    /// prefix stays the derived sort key.
    pub trace: Option<TraceContext>,
}

/// Owned streaming monitor for `A[] compliant` over a host's
/// check-result stream. Implements the same latching prefix semantics
/// as `GlobalUniversality`'s borrowed monitor: `Fail` latches on the
/// first non-compliant observation, the prefix verdict is otherwise
/// `Incomplete`, and finishing a never-failed stream yields `Pass`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComplianceUniversality {
    observed: u64,
    failed_at: Option<u64>,
}

impl ComplianceUniversality {
    /// Fresh monitor with no observations.
    #[must_use]
    pub fn new() -> Self {
        ComplianceUniversality::default()
    }

    /// Tick index (0-based observation count) of the first violation.
    #[must_use]
    pub fn failed_at(&self) -> Option<u64> {
        self.failed_at
    }

    /// Number of observations fed so far.
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.observed
    }
}

impl PatternMonitor<bool> for ComplianceUniversality {
    fn observe(&mut self, state: &bool) -> CheckStatus {
        let t = self.observed;
        self.observed += 1;
        if self.failed_at.is_none() && !*state {
            self.failed_at = Some(t);
        }
        self.verdict()
    }

    fn verdict(&self) -> CheckStatus {
        if self.failed_at.is_some() {
            CheckStatus::Fail
        } else {
            CheckStatus::Incomplete
        }
    }

    fn finish(&mut self) -> CheckStatus {
        if self.failed_at.is_some() {
            CheckStatus::Fail
        } else {
            CheckStatus::Pass
        }
    }
}

/// Streams one host's telemetry through a TEARS guarded assertion.
///
/// Holds the growing [`SignalTrace`] (the G/A expression language reads
/// the newest tick) and an [`OwnedGaMonitor`]; each `SignalTick` event
/// appends one sample and advances the monitor by one tick.
#[derive(Debug, Clone)]
pub struct TearsHostMonitor {
    trace: SignalTrace,
    monitor: OwnedGaMonitor,
}

impl TearsHostMonitor {
    /// Starts monitoring `ga` on an empty trace.
    #[must_use]
    pub fn new(ga: GuardedAssertion) -> Self {
        TearsHostMonitor {
            trace: SignalTrace::new(),
            monitor: OwnedGaMonitor::new(ga),
        }
    }

    /// Feeds one tick of named signal samples; returns the activation
    /// ticks of any violations confirmed this tick.
    pub fn observe(&mut self, signals: &[(&'static str, f64)]) -> Vec<u64> {
        self.trace.push_sample(signals.iter().map(|&(n, v)| (n, v)));
        self.monitor.observe(&self.trace)
    }

    /// The monitored assertion's name.
    #[must_use]
    pub fn name(&self) -> &str {
        self.monitor.assertion().name()
    }

    /// Ticks observed so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.trace.len()
    }
}

/// All incremental monitor state for one host, owned by its shard.
#[derive(Debug, Clone)]
pub struct HostMonitors {
    /// `A[] compliant` over the host's check results.
    pub compliance: ComplianceUniversality,
    /// Optional guarded-assertion monitor over the host's telemetry.
    pub tears: Option<TearsHostMonitor>,
}

impl HostMonitors {
    /// Monitors for a host, with TEARS attached when `ga` is given.
    #[must_use]
    pub fn new(ga: Option<GuardedAssertion>) -> Self {
        HostMonitors {
            compliance: ComplianceUniversality::new(),
            tears: ga.map(TearsHostMonitor::new),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdo_temporal::{GlobalUniversality, Semantics, TemporalPattern, Trace};

    #[test]
    fn compliance_monitor_matches_global_universality() {
        // The owned streaming monitor must agree with vdo-temporal's
        // batch evaluation under both semantics on every prefix.
        let streams: [&[bool]; 4] = [
            &[true, true, true],
            &[true, false, true],
            &[false],
            &[true, true, false, false, true],
        ];
        let pattern = GlobalUniversality::new(|c: &bool| CheckStatus::from(*c));
        for bits in streams {
            let mut m = ComplianceUniversality::new();
            for (i, &b) in bits.iter().enumerate() {
                let verdict = m.observe(&b);
                let prefix: Trace<bool> = Trace::from_states(bits[..=i].iter().copied());
                assert_eq!(
                    verdict,
                    pattern.evaluate(&prefix, Semantics::Prefix),
                    "prefix {:?}",
                    &bits[..=i]
                );
            }
            let whole: Trace<bool> = Trace::from_states(bits.iter().copied());
            assert_eq!(m.finish(), pattern.evaluate(&whole, Semantics::Complete));
        }
    }

    #[test]
    fn compliance_monitor_records_first_failure_tick() {
        let mut m = ComplianceUniversality::new();
        for b in [true, true, false, true, false] {
            m.observe(&b);
        }
        assert_eq!(m.failed_at(), Some(2));
        assert_eq!(m.observed(), 5);
    }

    #[test]
    fn tears_monitor_flags_missing_lockout() {
        let ga = GuardedAssertion::parse(
            r#"ga "lockout": when failed_logins >= 3 then lockout == 1 within 2"#,
        )
        .unwrap();
        let mut m = TearsHostMonitor::new(ga);
        // Burst at tick 1, never answered: the window (ticks 1..=3)
        // closes at tick 3.
        let quiet: &[(&str, f64)] = &[("failed_logins", 0.0), ("lockout", 0.0)];
        let burst: &[(&str, f64)] = &[("failed_logins", 4.0), ("lockout", 0.0)];
        assert!(m.observe(quiet).is_empty());
        assert!(m.observe(burst).is_empty());
        assert!(m.observe(quiet).is_empty());
        assert_eq!(
            m.observe(quiet),
            vec![1],
            "violation confirmed at window close"
        );
        assert_eq!(m.name(), "lockout");
        assert_eq!(m.ticks(), 4);
    }

    #[test]
    fn tears_monitor_accepts_timely_lockout() {
        let ga = GuardedAssertion::parse(
            r#"ga "lockout": when failed_logins >= 3 then lockout == 1 within 2"#,
        )
        .unwrap();
        let mut m = TearsHostMonitor::new(ga);
        let burst: &[(&str, f64)] = &[("failed_logins", 4.0), ("lockout", 0.0)];
        let locked: &[(&str, f64)] = &[("failed_logins", 0.0), ("lockout", 1.0)];
        assert!(m.observe(burst).is_empty());
        assert!(m.observe(locked).is_empty());
        assert!(m.observe(locked).is_empty());
        assert!(m.observe(locked).is_empty());
    }
}
