//! Typed security events and their bus envelope.
//!
//! Every observable change in the operated fleet becomes one
//! [`SecEvent`]. Events are routed to a bus shard by their host (a fixed
//! hash, so one host's events always share a shard) and stamped with a
//! per-shard sequence number, which is the ordering authority for
//! everything downstream: monitors consume a shard's events in sequence
//! order and the incident log is sorted by `(shard, seq)`.

use vdo_core::CheckStatus;
use vdo_host::DriftKind;
use vdo_trace::TraceContext;

/// Fleet-wide host identifier (index into the engine's host slice).
pub type HostId = usize;

/// One security-relevant occurrence on a host.
#[derive(Debug, Clone, PartialEq)]
pub enum SecEvent {
    /// A drift event mutated the host's configuration state.
    DriftApplied {
        /// Affected host.
        host: HostId,
        /// Tick at which the drift landed.
        tick: u64,
        /// Drift category.
        kind: DriftKind,
        /// Human-readable drift detail.
        detail: String,
    },
    /// A configuration change that is not attributed to random drift
    /// (deploys, audits, manual edits). Triggers the same re-checks.
    ConfigChanged {
        /// Affected host.
        host: HostId,
        /// Tick of the change.
        tick: u64,
        /// What changed.
        detail: String,
    },
    /// One tick's worth of telemetry signals from a host, feeding the
    /// TEARS guarded-assertion monitors.
    SignalTick {
        /// Reporting host.
        host: HostId,
        /// Sample tick.
        tick: u64,
        /// Named signal values sampled this tick.
        signals: Vec<(&'static str, f64)>,
    },
    /// An SLO burn-rate alert fired by the tracing layer. Routed to a
    /// representative host (alerts are fleet-level) and handled like a
    /// configuration change: the alert triggers a catalogue re-audit,
    /// closing the observability loop back into reaction.
    SloAlert {
        /// Host whose shard carries the alert (audit target).
        host: HostId,
        /// Tick the alert fired.
        tick: u64,
        /// Name of the breached burn-rate rule.
        rule: String,
    },
    /// Outcome of re-checking one catalogue rule against a host.
    /// Published by the STIG monitor as a follow-up event so other
    /// monitors (e.g. the temporal compliance monitor) can consume it.
    CheckResult {
        /// Checked host.
        host: HostId,
        /// Tick of the check.
        tick: u64,
        /// Catalogue finding id of the rule.
        rule: String,
        /// Three-valued verdict.
        status: CheckStatus,
    },
}

impl SecEvent {
    /// The host this event concerns (and therefore its shard key).
    #[must_use]
    pub fn host(&self) -> HostId {
        match self {
            SecEvent::DriftApplied { host, .. }
            | SecEvent::ConfigChanged { host, .. }
            | SecEvent::SignalTick { host, .. }
            | SecEvent::SloAlert { host, .. }
            | SecEvent::CheckResult { host, .. } => *host,
        }
    }

    /// The tick the event happened at.
    #[must_use]
    pub fn tick(&self) -> u64 {
        match self {
            SecEvent::DriftApplied { tick, .. }
            | SecEvent::ConfigChanged { tick, .. }
            | SecEvent::SignalTick { tick, .. }
            | SecEvent::SloAlert { tick, .. }
            | SecEvent::CheckResult { tick, .. } => *tick,
        }
    }
}

/// A [`SecEvent`] as carried on the bus: routed, sequenced, and
/// (optionally) causally attributed.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Shard the event was routed to.
    pub shard: usize,
    /// Position in that shard's total order (0-based, gap-free).
    pub seq: u64,
    /// Causal context of the event's publisher, when tracing is on
    /// (see [`ShardedBus::publish_traced`](crate::ShardedBus::publish_traced)).
    pub trace: Option<TraceContext>,
    /// The event itself.
    pub event: SecEvent,
}

/// Fixed host-to-shard hash (SplitMix64 finalizer). Stable across runs
/// and worker counts, so a host's events always serialize through the
/// same shard.
#[must_use]
pub fn shard_of(host: HostId, shards: usize) -> usize {
    let mut z = (host as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    (z % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in [1usize, 2, 7, 16] {
            for host in 0..200 {
                let s = shard_of(host, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(host, shards), "must be a pure function");
            }
        }
    }

    #[test]
    fn shard_assignment_spreads_hosts() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for host in 0..800 {
            counts[shard_of(host, shards)] += 1;
        }
        // No shard should be empty or hold more than half the fleet.
        assert!(counts.iter().all(|&c| c > 0 && c < 400), "{counts:?}");
    }

    #[test]
    fn event_accessors() {
        let e = SecEvent::CheckResult {
            host: 4,
            tick: 9,
            rule: "V-1".into(),
            status: CheckStatus::Fail,
        };
        assert_eq!(e.host(), 4);
        assert_eq!(e.tick(), 9);
    }
}
