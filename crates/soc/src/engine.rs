//! The event-driven security-operations engine.
//!
//! One [`SocEngine::run`] simulates `duration` ticks over a fleet. Each
//! tick advances through fixed phases, coordinated by two barriers:
//!
//! 1. **publish** (main thread): seeded drift mutates hosts and every
//!    mutation becomes a bus event; telemetry signals are sampled;
//!    events deferred by backpressure on a previous tick re-publish
//!    first so per-host order survives overload;
//! 2. **process** (worker pool): each non-empty shard becomes one
//!    [`Batch`]; workers pull batches work-stealing style and drain
//!    their shard through the monitors, accumulating [`Detection`]s.
//!    Because monitors run *per event*, a violation is detected on the
//!    tick it happens — the polling baseline pays `(period - 1) / 2`
//!    ticks of mean latency for the same detection;
//! 3. **remediate** (main thread): detections merge in `(shard, seq)`
//!    order — making the incident log independent of worker count and
//!    scheduling — and feed the retry/backoff dispatcher.
//!
//! Determinism: with a fixed seed the incident log is byte-identical
//! across runs *and across worker counts*, because host→shard routing
//! is a fixed hash, one batch is processed by exactly one worker, the
//! detection merge is totally ordered, and remediation fault rolls are
//! pure hashes rather than draws from a shared RNG stream.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use crossbeam::deque::Worker;
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vdo_core::{Catalog, CheckStatus, RemediationPlanner};
use vdo_host::{DriftInjector, HostWrite};
use vdo_tears::GuardedAssertion;
use vdo_temporal::{PatternMonitor, Trace};
use vdo_trace::{BurnRateRule, Event, Journal, LiveSloEngine, Severity, SloAlert, TraceContext};

use crate::bus::{PublishError, ShardedBus};
use crate::event::{HostId, SecEvent};
use crate::metrics::{MetricsSnapshot, SocMetrics};
use crate::monitors::{Detection, DetectionKind, HostMonitors};
use crate::remediation::{DeadLetter, Dispatcher, RemediationConfig, RemediationTask, SocIncident};
use crate::runtime::{Batch, TaskQueues, TaskSource};

/// A host class the engine can operate: drift must be injectable and
/// the state must be shareable with the worker pool.
///
/// Blanket-implemented for every [`HostWrite`] type, so owned host
/// structs and store-backed views all qualify with one definition.
pub trait SocHost: Send + Sync {
    /// Applies `n` random drift events, reporting what changed.
    fn apply_drift(&mut self, injector: &mut DriftInjector, n: usize) -> Vec<vdo_host::DriftEvent>;
}

impl<H: HostWrite + Send + Sync> SocHost for H {
    fn apply_drift(&mut self, injector: &mut DriftInjector, n: usize) -> Vec<vdo_host::DriftEvent> {
        let platform = self.platform();
        injector.drift(self, platform, n)
    }
}

/// Engine parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SocConfig {
    /// Ticks to simulate.
    pub duration: u64,
    /// Per-host per-tick probability of one drift event.
    pub drift_rate: f64,
    /// Worker threads in the pool (must be >= 1).
    pub workers: usize,
    /// Bus shards (must be >= 1).
    pub shards: usize,
    /// Bounded capacity of each shard queue (must be >= 1).
    pub queue_capacity: usize,
    /// Master seed for drift timing, drift content, telemetry, and
    /// remediation faults.
    pub seed: u64,
    /// Simulated I/O latency per processed batch (agent round-trip);
    /// zero disables the sleep. This is what makes multi-worker
    /// scaling observable on the simulated clock.
    pub io_latency: Duration,
    /// TEARS guarded assertion (source text) monitored over per-host
    /// telemetry; `None` disables telemetry events entirely.
    pub tears_assertion: Option<String>,
    /// Per-host per-tick probability of a brute-force burst in the
    /// synthesized telemetry (only used when `tears_assertion` is set).
    pub attack_rate: f64,
    /// Retry/backoff/fault policy for remediation.
    pub remediation: RemediationConfig,
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig {
            duration: 1_000,
            drift_rate: 0.02,
            workers: 4,
            shards: 16,
            queue_capacity: 1_024,
            seed: 0,
            io_latency: Duration::ZERO,
            tears_assertion: None,
            attack_rate: 0.02,
            remediation: RemediationConfig::default(),
        }
    }
}

/// Causal-tracing and SLO wiring for one engine run.
///
/// A disabled journal (the [`Default`]) turns the whole layer off: no
/// events are emitted, no trace contexts are minted, and the run is
/// byte-identical to an untraced one. When enabled, `trace_seed` must
/// match the seed the ingestion side (the pipeline scenario) used to
/// mint requirement roots, so an incident detected here resolves to
/// the catalogue requirement that caused it.
#[derive(Debug, Clone, Default)]
pub struct SocTracing {
    /// The event journal; [`Journal::disabled`] makes this struct inert.
    pub journal: Journal,
    /// Seed for requirement-root [`TraceContext`]s.
    pub trace_seed: u64,
    /// Optional SLO burn-rate policy evaluated during the run.
    pub slo: Option<SloPolicy>,
}

impl SocTracing {
    /// Journal + seed, no SLO policy.
    #[must_use]
    pub fn new(journal: Journal, trace_seed: u64) -> Self {
        SocTracing {
            journal,
            trace_seed,
            slo: None,
        }
    }

    /// Journal + seed with a durable columnar sink: every accepted
    /// event streams into segment files under `dir` (the
    /// [`vdo_trace::colfmt`] format) *before* it enters the in-memory
    /// ring, so the on-disk record has no lossy tail even when the
    /// ring wraps. Call [`Journal::sync`] (or drop the journal) after
    /// the run to seal the open segment.
    pub fn persistent(
        dir: &std::path::Path,
        trace_seed: u64,
        config: vdo_trace::JournalConfig,
    ) -> std::io::Result<Self> {
        let sink = vdo_trace::DirWriter::create(dir, "vdo-journal v1\nsource=soc\n")?;
        Ok(SocTracing::new(
            Journal::with_sink(config, Box::new(sink)),
            trace_seed,
        ))
    }

    /// The inert layer: disabled journal, no tracing, no SLO.
    #[must_use]
    pub fn disabled() -> Self {
        SocTracing::default()
    }

    /// `true` when events and trace contexts are recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.journal.is_enabled()
    }
}

/// In-run SLO evaluation, streaming: the engine feeds a resident
/// [`LiveSloEngine`] per event from the main thread (published /
/// deferred volumes, detection latencies, retries, dead letters,
/// remediations) and evaluates every `period` ticks — no registry
/// snapshots anywhere in the loop. Alerts are journalled and published
/// as [`SecEvent::SloAlert`] on the bus (triggering a re-audit —
/// observability closing back into reaction).
///
/// Rules reference the engine's live signal names: the counters
/// `soc.events_published`, `soc.events_deferred`, `soc.retries`,
/// `soc.dead_letters`, `soc.remediations`, `soc.checks_run`, and the
/// histogram `soc.detection_latency` (tick-bucketed).
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// Burn-rate rules to evaluate.
    pub rules: Vec<BurnRateRule>,
    /// Evaluation cadence in ticks (zero disables evaluation; 1 — the
    /// [`Default`] — evaluates every tick).
    pub period: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            rules: Vec::new(),
            period: 1,
        }
    }
}

/// Rejected [`SocConfig`] values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocConfigError {
    /// `workers` was zero.
    ZeroWorkers,
    /// `shards` was zero.
    ZeroShards,
    /// `queue_capacity` was zero.
    ZeroQueueCapacity,
    /// `tears_assertion` failed to parse; the payload is the parser's
    /// message.
    InvalidAssertion(String),
}

impl std::fmt::Display for SocConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocConfigError::ZeroWorkers => f.write_str("worker pool needs at least one worker"),
            SocConfigError::ZeroShards => f.write_str("event bus needs at least one shard"),
            SocConfigError::ZeroQueueCapacity => {
                f.write_str("shard queues must hold at least one event")
            }
            SocConfigError::InvalidAssertion(e) => write!(f, "invalid TEARS assertion: {e}"),
        }
    }
}

impl std::error::Error for SocConfigError {}

/// Result of one engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct SocReport {
    /// All incidents in deterministic `(shard, seq)` detection order.
    pub incidents: Vec<SocIncident>,
    /// Remediations abandoned after exhausting retries.
    pub dead_letters: Vec<DeadLetter>,
    /// Drift events injected.
    pub drift_events: u64,
    /// Host-ticks spent with at least one open violation.
    pub noncompliant_host_ticks: u64,
    /// Ticks simulated.
    pub duration: u64,
    /// Per-tick "whole fleet compliant" bit, for post-hoc temporal
    /// evaluation.
    pub fleet_compliance_trace: Trace<bool>,
    /// SLO burn-rate alerts fired during the run (empty unless an
    /// [`SloPolicy`] was active).
    pub slo_alerts: Vec<SloAlert>,
    /// Counter and histogram snapshot.
    pub metrics: MetricsSnapshot,
}

impl SocReport {
    /// Mean detection latency over STIG incidents, in ticks.
    #[must_use]
    pub fn mean_detection_latency(&self) -> f64 {
        let stig: Vec<u64> = self
            .incidents
            .iter()
            .filter(|i| i.kind == DetectionKind::Stig)
            .map(SocIncident::latency)
            .collect();
        if stig.is_empty() {
            0.0
        } else {
            stig.iter().sum::<u64>() as f64 / stig.len() as f64
        }
    }

    /// Fraction of host-ticks spent out of compliance.
    #[must_use]
    pub fn exposure(&self, hosts: usize) -> f64 {
        let total = self.duration * hosts as u64;
        if total == 0 {
            0.0
        } else {
            self.noncompliant_host_ticks as f64 / total as f64
        }
    }

    /// Canonical JSON incident log. Runs with equal seeds produce
    /// byte-identical logs regardless of worker count.
    #[must_use]
    pub fn incident_log(&self) -> String {
        serde::json::to_string(&self.incidents)
    }
}

/// Per-host violation ledger entry: open rule -> incident index.
type OpenRules = BTreeMap<String, usize>;

/// Per-shard worker-side state: host monitors plus this tick's
/// detections, and the tracing seed (copied in so any worker derives
/// detection contexts locally without touching shared tracing state).
struct ShardLocal {
    hosts: BTreeMap<HostId, HostMonitors>,
    detections: Vec<Detection>,
    trace_seed: Option<u64>,
}

/// The engine: a catalogue plus a validated configuration.
pub struct SocEngine<'a, E> {
    catalog: &'a Catalog<E>,
    config: SocConfig,
    assertion: Option<GuardedAssertion>,
}

impl<E> std::fmt::Debug for SocEngine<'_, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocEngine")
            .field("catalog_rules", &self.catalog.len())
            .field("config", &self.config)
            .field("assertion", &self.assertion)
            .finish()
    }
}

impl<'a, E: SocHost> SocEngine<'a, E> {
    /// Validates `config` and builds the engine.
    ///
    /// # Errors
    /// On zero worker/shard/queue sizes or an unparseable assertion.
    pub fn new(catalog: &'a Catalog<E>, config: SocConfig) -> Result<Self, SocConfigError> {
        if config.workers == 0 {
            return Err(SocConfigError::ZeroWorkers);
        }
        if config.shards == 0 {
            return Err(SocConfigError::ZeroShards);
        }
        if config.queue_capacity == 0 {
            return Err(SocConfigError::ZeroQueueCapacity);
        }
        let assertion = match &config.tears_assertion {
            Some(src) => Some(
                GuardedAssertion::parse(src)
                    .map_err(|e| SocConfigError::InvalidAssertion(e.to_string()))?,
            ),
            None => None,
        };
        Ok(SocEngine {
            catalog,
            config,
            assertion,
        })
    }

    /// The validated configuration.
    #[must_use]
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// Runs the engine over `hosts`, mutating them in place (drift and
    /// remediation), and reports incidents plus metrics.
    pub fn run(&self, hosts: &mut [E]) -> SocReport {
        self.run_with_metrics(hosts, &SocMetrics::new())
    }

    /// Like [`run`](Self::run), but records into caller-owned
    /// instruments: pass [`SocMetrics::in_registry`] to surface the run
    /// in a unified [`vdo_obs`] snapshot, or [`SocMetrics::disabled`]
    /// to run with the no-op recorder (experiment E12 measures that
    /// overhead at under 5%). The returned report snapshots whatever
    /// the instruments captured.
    pub fn run_with_metrics(&self, hosts: &mut [E], metrics: &SocMetrics) -> SocReport {
        self.run_traced(hosts, metrics, &SocTracing::disabled())
    }

    /// Like [`run_with_metrics`](Self::run_with_metrics), plus causal
    /// tracing: requirement roots are journalled at tick 0, every
    /// detection/remediation step emits a journal event chained to the
    /// requirement's [`TraceContext`], bus envelopes carry their
    /// publisher's context, and an optional [`SloPolicy`] evaluates
    /// burn-rate rules in-run. With [`SocTracing::disabled`] this is
    /// byte-identical to an untraced run — experiment E14 measures the
    /// enabled overhead. Journal events are emitted from the main
    /// thread with purely derived contents, so equal-seed runs produce
    /// identical journal fingerprints at any worker count.
    pub fn run_traced(
        &self,
        hosts: &mut [E],
        metrics: &SocMetrics,
        tracing: &SocTracing,
    ) -> SocReport {
        let cfg = &self.config;
        let journal = &tracing.journal;
        let tracing_on = journal.is_enabled();
        let trace_seed = tracing_on.then_some(tracing.trace_seed);
        if tracing_on {
            // Requirement ingestion: one root per monitored artifact.
            // Incident traces minted later resolve back to these.
            for entry in self.catalog.iter() {
                let id = entry.spec().finding_id();
                journal.emit(
                    Event::info("requirement.ingested")
                        .trace(TraceContext::root(tracing.trace_seed, id))
                        .field("rule", id),
                );
            }
            if let Some(ga) = &self.assertion {
                journal.emit(
                    Event::info("requirement.ingested")
                        .trace(TraceContext::root(tracing.trace_seed, ga.name()))
                        .field("rule", ga.name()),
                );
            }
        }
        let n_hosts = hosts.len();
        let bus = ShardedBus::new(cfg.shards, cfg.queue_capacity);
        let shard_states: Vec<Mutex<ShardLocal>> = (0..cfg.shards)
            .map(|_| {
                Mutex::new(ShardLocal {
                    hosts: BTreeMap::new(),
                    detections: Vec::new(),
                    trace_seed,
                })
            })
            .collect();
        for host in 0..n_hosts {
            shard_states[bus.shard_for(host)]
                .lock()
                .hosts
                .insert(host, HostMonitors::new(self.assertion.clone()));
        }
        let fleet = RwLock::new(hosts);
        let locals: Vec<Worker<Batch>> = (0..cfg.workers).map(|_| Worker::new_fifo()).collect();
        let queues = TaskQueues::new(&locals, cfg.shards);
        let outstanding = AtomicUsize::new(0);
        let current_tick = AtomicU64::new(0);
        let shutdown = AtomicBool::new(false);
        let start_gate = Barrier::new(cfg.workers + 1);
        let end_gate = Barrier::new(cfg.workers + 1);
        let wall_start = Instant::now();

        let mut incidents: Vec<SocIncident> = Vec::new();
        let mut open: Vec<OpenRules> = vec![OpenRules::new(); n_hosts];
        let mut dispatcher = Dispatcher::new(cfg.remediation, cfg.seed ^ 0x0D15_EA5E);
        let planner = RemediationPlanner::default();
        let mut drift_events = 0u64;
        let mut noncompliant_host_ticks = 0u64;
        let mut fleet_trace = Trace::new();
        let mut live_slo = tracing
            .slo
            .as_ref()
            .filter(|_| tracing_on)
            .map(|p| LiveSloEngine::new(tracing.trace_seed, p.rules.clone()));
        let mut slo_alerts: Vec<SloAlert> = Vec::new();
        // Per-tick publish volumes for the streaming SLO feed: counted
        // in `Cell`s because the publish closure already borrows
        // `metrics` and `deferred`, then drained into the live engine
        // at phase 4.
        let published_now = std::cell::Cell::new(0u64);
        let deferred_now = std::cell::Cell::new(0u64);

        std::thread::scope(|scope| {
            for (me, local) in locals.into_iter().enumerate() {
                let bus = &bus;
                let shard_states = &shard_states;
                let queues = &queues;
                let fleet = &fleet;
                let outstanding = &outstanding;
                let current_tick = &current_tick;
                let shutdown = &shutdown;
                let start_gate = &start_gate;
                let end_gate = &end_gate;
                let catalog = self.catalog;
                let io_latency = cfg.io_latency;
                scope.spawn(move || loop {
                    start_gate.wait();
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let now = current_tick.load(Ordering::SeqCst);
                    loop {
                        match queues.find(me, &local) {
                            Some((batch, src)) => {
                                if src == TaskSource::Stolen {
                                    metrics.steals.inc();
                                }
                                let t0 = Instant::now();
                                {
                                    let fleet_guard = fleet.read();
                                    let mut state = shard_states[batch.shard].lock();
                                    process_batch(
                                        batch.shard,
                                        now,
                                        bus,
                                        catalog,
                                        &fleet_guard[..],
                                        &mut state,
                                        metrics,
                                    );
                                }
                                if io_latency > Duration::ZERO {
                                    std::thread::sleep(io_latency);
                                }
                                metrics.batch_micros.record(t0.elapsed().as_micros() as u64);
                                metrics.batches.inc();
                                outstanding.fetch_sub(1, Ordering::SeqCst);
                            }
                            None => {
                                if outstanding.load(Ordering::SeqCst) == 0 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    end_gate.wait();
                });
            }

            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let mut drifter = DriftInjector::new(cfg.seed.wrapping_mul(31).wrapping_add(7));
            // Hoisted out of the drift loop: the per-event context is a
            // child of this fixed root, so only the cheap child
            // derivation runs per drift event.
            let drift_root = trace_seed.map(|s| TraceContext::root(s, "drift"));
            // Telemetry roots (one per host, minted once): the signal
            // firehose journals as children of these, so tail-sampling
            // can drop a quiet host's whole stream by one decision.
            // Only minted when the journal's severity floor admits
            // `Debug` — at operational floors the firehose would be
            // rejected per event, so skip building it entirely.
            let telemetry_roots: Vec<TraceContext> = match (trace_seed, &self.assertion) {
                (Some(s), Some(_)) if journal.accepts(Severity::Debug) => (0..n_hosts)
                    .map(|h| TraceContext::root(s, &format!("telemetry:{h}")))
                    .collect(),
                _ => Vec::new(),
            };
            let mut deferred: VecDeque<(SecEvent, Option<TraceContext>)> = VecDeque::new();
            // Tick a brute-force burst started on, per host (telemetry).
            let mut attack_since: Vec<Option<u64>> = vec![None; n_hosts];

            for tick in 0..cfg.duration {
                current_tick.store(tick, Ordering::SeqCst);
                // --- Phase 1 (main): publish ------------------------
                let mut blocked = vec![false; cfg.shards];
                let mut publish = |event: SecEvent,
                                   trace: Option<TraceContext>,
                                   deferred: &mut VecDeque<(SecEvent, Option<TraceContext>)>| {
                    let shard = bus.shard_for(event.host());
                    if blocked[shard] {
                        metrics.events_deferred.inc();
                        deferred_now.set(deferred_now.get() + 1);
                        deferred.push_back((event, trace));
                        return;
                    }
                    match bus.publish_traced(event, trace) {
                        Ok(_) => {
                            metrics.events_published.inc();
                            published_now.set(published_now.get() + 1);
                        }
                        Err(PublishError::Backpressure(event)) => {
                            blocked[shard] = true;
                            metrics.events_deferred.inc();
                            deferred_now.set(deferred_now.get() + 1);
                            deferred.push_back((event, trace));
                        }
                    }
                };
                // Deferred events from the previous tick go first so
                // per-host order is preserved under overload.
                let mut replay = std::mem::take(&mut deferred);
                for (event, trace) in replay.drain(..) {
                    publish(event, trace, &mut deferred);
                }
                if tick == 0 {
                    // Baseline audit: surface pre-existing violations.
                    for host in 0..n_hosts {
                        publish(
                            SecEvent::ConfigChanged {
                                host,
                                tick,
                                detail: "baseline audit".to_string(),
                            },
                            trace_seed.map(|s| {
                                TraceContext::root(s, "audit").child_u64("host", host as u64)
                            }),
                            &mut deferred,
                        );
                    }
                }
                {
                    let mut guard = fleet.write();
                    for host in 0..n_hosts {
                        if rng.gen_bool(cfg.drift_rate) {
                            for ev in guard[host].apply_drift(&mut drifter, 1) {
                                drift_events += 1;
                                let ctx = drift_root.map(|r| {
                                    r.child_u64("host", host as u64).child_u64("tick", tick)
                                });
                                if tracing_on {
                                    let mut jev = Event::debug("soc.drift")
                                        .at(tick)
                                        .field("host", host)
                                        .field("detail", ev.detail.as_str());
                                    if let Some(t) = ctx {
                                        jev = jev.trace(t);
                                    }
                                    journal.emit(jev);
                                }
                                publish(
                                    SecEvent::DriftApplied {
                                        host,
                                        tick,
                                        kind: ev.kind,
                                        detail: ev.detail,
                                    },
                                    ctx,
                                    &mut deferred,
                                );
                            }
                        }
                    }
                }
                if self.assertion.is_some() {
                    for host in 0..n_hosts {
                        let burst = rng.gen_bool(cfg.attack_rate);
                        let mut failed_logins = 0.0;
                        let mut lockout = 0.0;
                        if burst {
                            failed_logins = 4.0;
                            attack_since[host] = Some(tick);
                        } else if let Some(t0) = attack_since[host] {
                            // A compliant host answers the burst with a
                            // lockout; a drifted one has lost the
                            // mechanism and stays silent.
                            if open[host].is_empty() {
                                lockout = 1.0;
                                attack_since[host] = None;
                            } else if tick.saturating_sub(t0) > 3 {
                                attack_since[host] = None;
                            }
                        }
                        if let Some(root) = telemetry_roots.get(host) {
                            // The per-host telemetry stream is Debug
                            // noise until an incident makes it evidence
                            // — exactly what adaptive tail-sampling is
                            // for.
                            journal.emit(
                                Event::debug("soc.signal")
                                    .at(tick)
                                    .trace(root.child_u64("sig", tick))
                                    .field("host", host)
                                    .field("failed_logins", failed_logins)
                                    .field("lockout", lockout),
                            );
                        }
                        publish(
                            SecEvent::SignalTick {
                                host,
                                tick,
                                signals: vec![
                                    ("failed_logins", failed_logins),
                                    ("lockout", lockout),
                                ],
                            },
                            None,
                            &mut deferred,
                        );
                    }
                }

                // --- Phase 2 (workers): process to quiescence --------
                let mut n_batches = 0usize;
                for shard in 0..cfg.shards {
                    let depth = bus.depth(shard);
                    if depth > 0 {
                        metrics.observe_queue_depth(depth as u64);
                        queues.push(Batch { shard });
                        n_batches += 1;
                    }
                }
                outstanding.store(n_batches, Ordering::SeqCst);
                start_gate.wait();
                end_gate.wait();

                // --- Phase 3 (main): merge detections, remediate -----
                let mut detections: Vec<Detection> = Vec::new();
                for state in &shard_states {
                    detections.append(&mut state.lock().detections);
                }
                detections.sort();
                for det in detections {
                    match det.kind {
                        DetectionKind::Tears => {
                            if tracing_on {
                                let mut ev = Event::warn("soc.tears_violation")
                                    .at(tick)
                                    .field("host", det.host)
                                    .field("rule", det.rule.as_str())
                                    .field("activated_at", det.introduced_at);
                                if let Some(t) = det.trace {
                                    ev = ev.trace(t);
                                }
                                journal.emit(ev);
                            }
                            incidents.push(SocIncident {
                                host: det.host,
                                rule: det.rule,
                                kind: DetectionKind::Tears,
                                introduced_at: det.introduced_at,
                                detected_at: det.detected_at,
                                resolved_at: None,
                                attempts: 0,
                                trace: det.trace,
                            });
                        }
                        DetectionKind::Stig => {
                            if open[det.host].contains_key(&det.rule) {
                                continue; // already being remediated
                            }
                            let latency = det.detected_at - det.introduced_at;
                            // The exemplar links the latency bucket to
                            // the incident's causal chain.
                            match det.trace {
                                Some(t) => metrics
                                    .detection_latency
                                    .record_traced(latency, t.trace_id.0),
                                None => metrics.detection_latency.record(latency),
                            }
                            if let Some(live) = live_slo.as_mut() {
                                live.observe_value("soc.detection_latency", tick, latency);
                            }
                            if tracing_on {
                                let mut ev = Event::warn("soc.detection")
                                    .at(tick)
                                    .field("host", det.host)
                                    .field("rule", det.rule.as_str())
                                    .field("latency", det.detected_at - det.introduced_at);
                                if let Some(t) = det.trace {
                                    ev = ev.trace(t);
                                }
                                journal.emit(ev);
                            }
                            open[det.host].insert(det.rule.clone(), incidents.len());
                            dispatcher.schedule(
                                tick,
                                RemediationTask {
                                    host: det.host,
                                    rule: det.rule.clone(),
                                    introduced_at: det.introduced_at,
                                    detected_at: det.detected_at,
                                    attempt: 0,
                                    trace: det.trace,
                                },
                            );
                            incidents.push(SocIncident {
                                host: det.host,
                                rule: det.rule,
                                kind: DetectionKind::Stig,
                                introduced_at: det.introduced_at,
                                detected_at: det.detected_at,
                                resolved_at: None,
                                attempts: 0,
                                trace: det.trace,
                            });
                        }
                    }
                }
                for task in dispatcher.take_due(tick) {
                    let Some(&incident_idx) = open[task.host].get(&task.rule) else {
                        continue; // repaired as a side effect earlier
                    };
                    incidents[incident_idx].attempts += 1;
                    let attempt_trace = task
                        .trace
                        .map(|t| t.child_u64("attempt", u64::from(task.attempt)));
                    if tracing_on {
                        let mut ev = Event::info("soc.remediation.attempt")
                            .at(tick)
                            .field("host", task.host)
                            .field("rule", task.rule.as_str())
                            .field("attempt", u64::from(task.attempt));
                        if let Some(t) = attempt_trace {
                            ev = ev.trace(t);
                        }
                        journal.emit(ev);
                    }
                    if dispatcher.fault_injected(&task) {
                        let fields = tracing_on.then(|| (task.host, task.rule.clone()));
                        if dispatcher.on_failure(task, tick) {
                            metrics.retries.inc();
                            if let Some(live) = live_slo.as_mut() {
                                live.incr("soc.retries", tick, 1);
                            }
                            if let Some((host, rule)) = fields {
                                let mut ev = Event::warn("soc.remediation.retry")
                                    .at(tick)
                                    .field("host", host)
                                    .field("rule", rule);
                                if let Some(t) = attempt_trace {
                                    ev = ev.trace(t);
                                }
                                journal.emit(ev);
                            }
                        } else {
                            metrics.dead_letters.inc();
                            if let Some(live) = live_slo.as_mut() {
                                live.incr("soc.dead_letters", tick, 1);
                            }
                            if let Some((host, rule)) = fields {
                                let mut ev = Event::error("soc.remediation.dead_letter")
                                    .at(tick)
                                    .field("host", host)
                                    .field("rule", rule);
                                if let Some(t) = attempt_trace {
                                    ev = ev.trace(t);
                                }
                                journal.emit(ev);
                            }
                        }
                        continue;
                    }
                    let mut guard = fleet.write();
                    planner.run(self.catalog, &mut guard[task.host]);
                    metrics.remediations.inc();
                    let results = self.catalog.check_all(&guard[task.host]);
                    metrics.checks_run.add(self.catalog.len() as u64);
                    drop(guard);
                    if let Some(live) = live_slo.as_mut() {
                        live.incr("soc.remediations", tick, 1);
                        live.incr("soc.checks_run", tick, self.catalog.len() as u64);
                    }
                    let host_open = &mut open[task.host];
                    for (entry, status) in results {
                        if status.is_pass() {
                            if let Some(idx) = host_open.remove(entry.spec().finding_id()) {
                                incidents[idx].resolved_at = Some(tick);
                                if tracing_on {
                                    let mut ev = Event::info("soc.remediation.resolved")
                                        .at(tick)
                                        .field("host", incidents[idx].host)
                                        .field("rule", incidents[idx].rule.as_str());
                                    if let Some(t) = incidents[idx].trace {
                                        ev = ev.trace(t.child_u64("resolve", tick));
                                    }
                                    journal.emit(ev);
                                }
                            }
                        }
                    }
                }

                // --- Phase 4 (main): accounting + SLO evaluation -----
                let broken = open.iter().filter(|rules| !rules.is_empty()).count() as u64;
                noncompliant_host_ticks += broken;
                fleet_trace.push(broken == 0);
                if let (Some(policy), Some(live)) = (&tracing.slo, live_slo.as_mut()) {
                    // Drain this tick's publish volumes into the
                    // streaming windows, then evaluate on cadence.
                    live.incr("soc.events_published", tick, published_now.take());
                    live.incr("soc.events_deferred", tick, deferred_now.take());
                    if n_hosts > 0 && policy.period > 0 && (tick + 1) % policy.period == 0 {
                        for alert in live.end_tick(tick, journal) {
                            // Alerts close the loop: each one triggers a
                            // re-audit of a representative host on the
                            // next tick.
                            let event = SecEvent::SloAlert {
                                host: 0,
                                tick,
                                rule: alert.rule.clone(),
                            };
                            let trace = Some(alert.trace);
                            match bus.publish_traced(event, trace) {
                                Ok(_) => {
                                    metrics.events_published.inc();
                                }
                                Err(PublishError::Backpressure(event)) => {
                                    metrics.events_deferred.inc();
                                    deferred.push_back((event, trace));
                                }
                            }
                            slo_alerts.push(alert);
                        }
                    }
                }
            }
            shutdown.store(true, Ordering::SeqCst);
            start_gate.wait();
        });

        SocReport {
            incidents,
            dead_letters: dispatcher.into_dead_letters(),
            drift_events,
            noncompliant_host_ticks,
            duration: cfg.duration,
            fleet_compliance_trace: fleet_trace,
            slo_alerts,
            metrics: metrics.snapshot(wall_start.elapsed().as_secs_f64()),
        }
    }
}

/// Drains `shard` and runs every event through the monitors. Called by
/// exactly one worker per tick per shard, with the fleet read-locked
/// (hosts are immutable during the processing phase).
fn process_batch<E: SocHost>(
    shard: usize,
    now: u64,
    bus: &ShardedBus,
    catalog: &Catalog<E>,
    fleet: &[E],
    state: &mut ShardLocal,
    metrics: &SocMetrics,
) {
    while let Some(envelope) = bus.pop(shard) {
        metrics.events_processed.inc();
        let seq = envelope.seq;
        match envelope.event {
            SecEvent::DriftApplied { host, tick, .. }
            | SecEvent::ConfigChanged { host, tick, .. }
            | SecEvent::SloAlert { host, tick, .. } => {
                // Re-check the catalogue and deliver each result as a
                // follow-up CheckResult event (local delivery: same
                // shard, same worker, so order is preserved and the
                // batch quiesces without re-entering the bounded
                // queue).
                let results = catalog.check_all(&fleet[host]);
                metrics.checks_run.add(catalog.len() as u64);
                let follow_ups: Vec<SecEvent> = results
                    .iter()
                    .map(|(entry, status)| SecEvent::CheckResult {
                        host,
                        tick,
                        rule: entry.spec().finding_id().to_string(),
                        status: *status,
                    })
                    .collect();
                for event in follow_ups {
                    metrics.events_processed.inc();
                    handle_check_result(shard, seq, now, event, state);
                }
            }
            event @ SecEvent::CheckResult { .. } => {
                handle_check_result(shard, seq, now, event, state);
            }
            SecEvent::SignalTick {
                host,
                tick: _,
                signals,
            } => {
                let trace_seed = state.trace_seed;
                let ShardLocal {
                    hosts, detections, ..
                } = state;
                let monitors = hosts.get_mut(&host).expect("host registered");
                if let Some(tears) = &mut monitors.tears {
                    for activation in tears.observe(&signals) {
                        detections.push(Detection {
                            shard,
                            seq,
                            host,
                            rule: tears.name().to_string(),
                            kind: DetectionKind::Tears,
                            introduced_at: activation,
                            detected_at: now,
                            trace: trace_seed.map(|s| {
                                TraceContext::root(s, tears.name())
                                    .child_u64("host", host as u64)
                                    .child_u64("detect", now)
                            }),
                        });
                    }
                }
            }
        }
    }
}

/// Feeds one `CheckResult` into the host's temporal compliance monitor
/// and records a detection when the rule fails. The detection's trace
/// is minted as a child of the *requirement root* — a pure function of
/// `(trace_seed, rule, host, tick)` — so any worker derives the same
/// context and the incident chain resolves to the catalogue rule.
fn handle_check_result(shard: usize, seq: u64, now: u64, event: SecEvent, state: &mut ShardLocal) {
    let SecEvent::CheckResult {
        host,
        tick,
        rule,
        status,
    } = event
    else {
        unreachable!("only CheckResult events reach this handler");
    };
    let trace_seed = state.trace_seed;
    let ShardLocal {
        hosts, detections, ..
    } = state;
    let monitors = hosts.get_mut(&host).expect("host registered");
    let compliant = !status.is_fail();
    monitors.compliance.observe(&compliant);
    if status == CheckStatus::Fail {
        let trace = trace_seed.map(|s| {
            TraceContext::root(s, &rule)
                .child_u64("host", host as u64)
                .child_u64("detect", now)
        });
        detections.push(Detection {
            shard,
            seq,
            host,
            rule,
            kind: DetectionKind::Stig,
            introduced_at: tick,
            detected_at: now,
            trace,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdo_core::RemediationPlanner;
    use vdo_host::{UnixHost, WindowsHost};
    use vdo_stigs::ubuntu;

    fn compliant_fleet(n: usize) -> Vec<UnixHost> {
        let catalog = ubuntu::catalog();
        let planner = RemediationPlanner::default();
        (0..n)
            .map(|_| {
                let mut h = UnixHost::baseline_ubuntu_1804();
                planner.run(&catalog, &mut h);
                h
            })
            .collect()
    }

    fn base_config() -> SocConfig {
        SocConfig {
            duration: 300,
            drift_rate: 0.05,
            workers: 2,
            shards: 4,
            seed: 11,
            ..SocConfig::default()
        }
    }

    #[test]
    fn zero_sizes_are_recoverable_errors() {
        let catalog = ubuntu::catalog();
        for (cfg, want) in [
            (
                SocConfig {
                    workers: 0,
                    ..SocConfig::default()
                },
                SocConfigError::ZeroWorkers,
            ),
            (
                SocConfig {
                    shards: 0,
                    ..SocConfig::default()
                },
                SocConfigError::ZeroShards,
            ),
            (
                SocConfig {
                    queue_capacity: 0,
                    ..SocConfig::default()
                },
                SocConfigError::ZeroQueueCapacity,
            ),
        ] {
            assert_eq!(SocEngine::new(&catalog, cfg).unwrap_err(), want);
        }
        let bad = SocConfig {
            tears_assertion: Some("not a guarded assertion".into()),
            ..SocConfig::default()
        };
        assert!(matches!(
            SocEngine::new(&catalog, bad).unwrap_err(),
            SocConfigError::InvalidAssertion(_)
        ));
    }

    #[test]
    fn drift_is_detected_with_zero_tick_latency() {
        let catalog = ubuntu::catalog();
        let engine = SocEngine::new(&catalog, base_config()).unwrap();
        let mut fleet = compliant_fleet(6);
        let report = engine.run(&mut fleet);
        assert!(report.drift_events > 0);
        let stig: Vec<_> = report
            .incidents
            .iter()
            .filter(|i| i.kind == DetectionKind::Stig)
            .collect();
        assert!(!stig.is_empty(), "5% drift over 300 ticks must break rules");
        assert!(
            stig.iter().all(|i| i.latency() == 0),
            "event-driven detection happens on the drift tick"
        );
        assert!(
            stig.iter().all(|i| i.resolved_at.is_some()),
            "fault-free remediation closes every incident"
        );
    }

    #[test]
    fn single_worker_runs_are_byte_identical() {
        let catalog = ubuntu::catalog();
        let cfg = SocConfig {
            workers: 1,
            ..base_config()
        };
        let run = |cfg: &SocConfig| {
            let engine = SocEngine::new(&catalog, cfg.clone()).unwrap();
            let mut fleet = compliant_fleet(8);
            engine.run(&mut fleet).incident_log()
        };
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn worker_count_does_not_change_the_incident_log() {
        let catalog = ubuntu::catalog();
        let logs: Vec<String> = [1usize, 2, 4, 8]
            .iter()
            .map(|&workers| {
                let cfg = SocConfig {
                    workers,
                    tears_assertion: Some(
                        r#"ga "lockout": when failed_logins >= 3 then lockout == 1 within 2"#
                            .into(),
                    ),
                    remediation: RemediationConfig {
                        fault_rate: 0.3,
                        ..RemediationConfig::default()
                    },
                    ..base_config()
                };
                let engine = SocEngine::new(&catalog, cfg).unwrap();
                let mut fleet = compliant_fleet(8);
                engine.run(&mut fleet).incident_log()
            })
            .collect();
        assert!(
            logs.windows(2).all(|w| w[0] == w[1]),
            "incident log must be independent of worker count"
        );
    }

    #[test]
    fn injected_faults_retry_and_dead_letter() {
        let catalog = ubuntu::catalog();
        let cfg = SocConfig {
            remediation: RemediationConfig {
                max_retries: 2,
                backoff_base: 1,
                fault_rate: 1.0,
            },
            ..base_config()
        };
        let engine = SocEngine::new(&catalog, cfg).unwrap();
        let mut fleet = compliant_fleet(4);
        let report = engine.run(&mut fleet);
        assert!(report.metrics.retries > 0);
        assert!(!report.dead_letters.is_empty(), "all attempts fail");
        assert!(
            report.dead_letters.iter().all(|d| d.task.attempt == 3),
            "1 initial + 2 retries before giving up"
        );
        assert!(
            report
                .incidents
                .iter()
                .filter(|i| i.kind == DetectionKind::Stig)
                .all(|i| i.resolved_at.is_none()),
            "nothing resolves when every attempt faults"
        );
    }

    #[test]
    fn tears_violations_fire_only_on_drifted_hosts() {
        let catalog = ubuntu::catalog();
        let cfg = SocConfig {
            duration: 400,
            drift_rate: 0.03,
            attack_rate: 0.05,
            tears_assertion: Some(
                r#"ga "lockout": when failed_logins >= 3 then lockout == 1 within 2"#.into(),
            ),
            remediation: RemediationConfig {
                fault_rate: 0.8,
                max_retries: 5,
                backoff_base: 4,
            },
            ..base_config()
        };
        let engine = SocEngine::new(&catalog, cfg).unwrap();
        let mut fleet = compliant_fleet(8);
        let report = engine.run(&mut fleet);
        let tears: Vec<_> = report
            .incidents
            .iter()
            .filter(|i| i.kind == DetectionKind::Tears)
            .collect();
        assert!(
            !tears.is_empty(),
            "slow remediation leaves attack windows unanswered"
        );
        assert_eq!(report.fleet_compliance_trace.len(), 400);
    }

    #[test]
    fn traced_incidents_resolve_to_requirement_roots() {
        let catalog = ubuntu::catalog();
        let engine = SocEngine::new(&catalog, base_config()).unwrap();
        let mut fleet = compliant_fleet(6);
        let journal = Journal::new();
        let tracing = SocTracing::new(journal.clone(), 11);
        let report = engine.run_traced(&mut fleet, &SocMetrics::new(), &tracing);
        assert!(!report.incidents.is_empty());
        let snap = journal.snapshot();
        for inc in &report.incidents {
            let ctx = inc.trace.expect("traced runs stamp every incident");
            assert_eq!(
                ctx.trace_id,
                TraceContext::root(11, &inc.rule).trace_id,
                "incident trace must be rooted at its requirement"
            );
            let root = snap
                .root_event(ctx.trace_id)
                .expect("requirement root event journalled");
            assert_eq!(root.name, "requirement.ingested");
        }
        assert!(!snap.events_named("soc.detection").is_empty());
        assert!(!snap.events_named("soc.remediation.resolved").is_empty());
    }

    #[test]
    fn persistent_tracing_leaves_a_readable_columnar_record() {
        let dir = std::env::temp_dir().join(format!("vdo-soc-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = ubuntu::catalog();
        let engine = SocEngine::new(&catalog, base_config()).unwrap();
        let mut fleet = compliant_fleet(6);
        let tracing =
            SocTracing::persistent(&dir, 11, vdo_trace::JournalConfig::default()).unwrap();
        let report = engine.run_traced(&mut fleet, &SocMetrics::new(), &tracing);
        assert!(!report.incidents.is_empty());
        tracing.journal.sync();
        let disk = vdo_trace::JournalDir::open(&dir).unwrap();
        assert_eq!(disk.header().unwrap(), "vdo-journal v1\nsource=soc\n");
        assert_eq!(
            disk.event_count().unwrap(),
            tracing.journal.accepted(),
            "the durable stream holds every accepted event"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_tracing_is_byte_identical_to_untraced() {
        let catalog = ubuntu::catalog();
        let engine = SocEngine::new(&catalog, base_config()).unwrap();
        let mut a = compliant_fleet(6);
        let mut b = compliant_fleet(6);
        let untraced = engine.run_with_metrics(&mut a, &SocMetrics::new());
        let disabled = engine.run_traced(&mut b, &SocMetrics::new(), &SocTracing::disabled());
        assert_eq!(untraced.incident_log(), disabled.incident_log());
        assert!(disabled.incidents.iter().all(|i| i.trace.is_none()));
        assert!(disabled.slo_alerts.is_empty());
    }

    #[test]
    fn traced_journal_fingerprints_are_worker_count_invariant() {
        let catalog = ubuntu::catalog();
        let prints: Vec<String> = [1usize, 2, 4]
            .iter()
            .map(|&workers| {
                let cfg = SocConfig {
                    workers,
                    ..base_config()
                };
                let engine = SocEngine::new(&catalog, cfg).unwrap();
                let mut fleet = compliant_fleet(8);
                let journal = Journal::new();
                let tracing = SocTracing::new(journal.clone(), 5);
                engine.run_traced(&mut fleet, &SocMetrics::new(), &tracing);
                journal.snapshot().fingerprint()
            })
            .collect();
        assert!(
            prints.windows(2).all(|w| w[0] == w[1]),
            "journal fingerprint must be independent of worker count"
        );
    }

    #[test]
    fn slo_policy_alerts_and_feeds_the_bus() {
        let catalog = ubuntu::catalog();
        let cfg = SocConfig {
            drift_rate: 0.3,
            ..base_config()
        };
        let engine = SocEngine::new(&catalog, cfg).unwrap();
        let mut fleet = compliant_fleet(6);
        let metrics = SocMetrics::new();
        let journal = Journal::new();
        let tracing = SocTracing {
            journal: journal.clone(),
            trace_seed: 11,
            slo: Some(SloPolicy {
                rules: vec![BurnRateRule {
                    name: "event-volume".into(),
                    signal: vdo_trace::SloSignal::CounterRatio {
                        bad: "soc.events_published".into(),
                        total: "soc.events_published".into(),
                    },
                    objective: 0.5,
                    long_window: 20,
                    short_window: 5,
                    factor: 1.0,
                }],
                period: 5,
            }),
        };
        let report = engine.run_traced(&mut fleet, &metrics, &tracing);
        assert!(
            !report.slo_alerts.is_empty(),
            "a saturated bad-ratio must breach the budget"
        );
        let snap = journal.snapshot();
        assert_eq!(
            snap.events_named("slo.alert").len(),
            report.slo_alerts.len(),
            "every alert is journalled"
        );
        assert!(
            report.slo_alerts[0].trace.is_root() || report.slo_alerts[0].trace.parent.is_some()
        );
    }

    #[test]
    fn quiet_fleet_stays_clean() {
        let catalog = ubuntu::catalog();
        let cfg = SocConfig {
            drift_rate: 0.0,
            ..base_config()
        };
        let engine = SocEngine::new(&catalog, cfg).unwrap();
        let mut fleet = compliant_fleet(5);
        let report = engine.run(&mut fleet);
        assert!(report.incidents.is_empty());
        assert_eq!(report.noncompliant_host_ticks, 0);
        assert_eq!(report.exposure(5), 0.0);
        // The baseline audit still ran every rule once per host.
        assert!(report.metrics.checks_run >= 5 * catalog.len() as u64);
    }

    #[test]
    fn windows_fleets_are_supported() {
        let catalog = vdo_stigs::win10::catalog();
        let planner = RemediationPlanner::default();
        let mut fleet: Vec<WindowsHost> = (0..4)
            .map(|_| {
                let mut h = WindowsHost::baseline_win10();
                planner.run(&catalog, &mut h);
                h
            })
            .collect();
        let engine = SocEngine::new(&catalog, base_config()).unwrap();
        let report = engine.run(&mut fleet);
        assert!(report.drift_events > 0);
        assert!(report
            .incidents
            .iter()
            .all(|i| i.kind == DetectionKind::Stig && i.latency() == 0));
    }
}
