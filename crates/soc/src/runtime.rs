//! Work distribution for the worker pool.
//!
//! The unit of work is a [`Batch`] — "drain shard *s* and run its
//! monitors". Batches for one tick are pushed to a global
//! [`Injector`]; each worker takes a small chunk into its private
//! [`Worker`] deque (amortising contention on the injector) and
//! processes from there; an idle worker steals single batches from its
//! siblings' deques. Because a shard appears in at most one batch per
//! tick, a batch is processed by exactly one worker, which is what
//! preserves per-shard (and therefore per-host) event order no matter
//! how the stealing plays out.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};

/// One unit of schedulable work: drain and process a bus shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batch {
    /// The shard to drain.
    pub shard: usize,
}

/// Where a worker obtained its current batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskSource {
    /// Popped from the worker's own deque.
    Local,
    /// Taken from the shared injector.
    Injector,
    /// Stolen from a sibling worker's deque.
    Stolen,
}

/// The shared side of the scheduler: the injector plus one stealer per
/// worker deque.
pub struct TaskQueues {
    injector: Injector<Batch>,
    stealers: Vec<Stealer<Batch>>,
    /// Batches moved from the injector into a local deque per grab.
    chunk: usize,
}

impl TaskQueues {
    /// Builds the shared scheduler state over the workers' own deques.
    /// `chunk` controls injector amortisation and is computed from the
    /// shard/worker ratio.
    #[must_use]
    pub fn new(locals: &[Worker<Batch>], shards: usize) -> Self {
        let workers = locals.len().max(1);
        TaskQueues {
            injector: Injector::new(),
            stealers: locals.iter().map(Worker::stealer).collect(),
            chunk: (shards / (2 * workers)).max(1),
        }
    }

    /// Enqueues a batch for any worker to pick up.
    pub fn push(&self, batch: Batch) {
        self.injector.push(batch);
    }

    /// Finds the next batch for worker `me`: own deque, then the
    /// injector (taking up to `chunk` batches, surplus into the own
    /// deque), then a sibling's deque.
    pub fn find(&self, me: usize, local: &Worker<Batch>) -> Option<(Batch, TaskSource)> {
        if let Some(b) = local.pop() {
            return Some((b, TaskSource::Local));
        }
        // Drain a chunk from the injector.
        let mut first = None;
        loop {
            match self.injector.steal() {
                Steal::Success(b) => {
                    if first.is_none() {
                        first = Some(b);
                    } else {
                        local.push(b);
                    }
                    if local.len() + 1 >= self.chunk {
                        break;
                    }
                }
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        if let Some(b) = first {
            return Some((b, TaskSource::Injector));
        }
        // Steal a single batch from a sibling.
        for (i, stealer) in self.stealers.iter().enumerate() {
            if i == me {
                continue;
            }
            loop {
                match stealer.steal() {
                    Steal::Success(b) => return Some((b, TaskSource::Stolen)),
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier, Mutex};

    #[test]
    fn every_batch_is_processed_exactly_once() {
        let n_workers = 4;
        let n_batches = 64;
        let locals: Vec<Worker<Batch>> = (0..n_workers).map(|_| Worker::new_fifo()).collect();
        let queues = Arc::new(TaskQueues::new(&locals, n_batches));
        for shard in 0..n_batches {
            queues.push(Batch { shard });
        }
        let outstanding = Arc::new(AtomicUsize::new(n_batches));
        let seen = Arc::new(Mutex::new(vec![0usize; n_batches]));
        let start = Arc::new(Barrier::new(n_workers));
        let handles: Vec<_> = locals
            .into_iter()
            .enumerate()
            .map(|(me, local)| {
                let queues = Arc::clone(&queues);
                let outstanding = Arc::clone(&outstanding);
                let seen = Arc::clone(&seen);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    loop {
                        match queues.find(me, &local) {
                            Some((b, _)) => {
                                seen.lock().unwrap()[b.shard] += 1;
                                outstanding.fetch_sub(1, Ordering::SeqCst);
                            }
                            None => {
                                if outstanding.load(Ordering::SeqCst) == 0 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn idle_workers_steal_from_a_loaded_sibling() {
        // Worker 0 hoards every batch in its local deque; worker 1 has
        // nothing and must steal.
        let locals: Vec<Worker<Batch>> = (0..2).map(|_| Worker::new_fifo()).collect();
        let queues = TaskQueues::new(&locals, 8);
        for shard in 0..8 {
            locals[0].push(Batch { shard });
        }
        let (b, src) = queues.find(1, &locals[1]).expect("sibling steal");
        assert_eq!(src, TaskSource::Stolen);
        assert_eq!(b.shard, 7, "steals from the end opposite the owner's pop");
    }

    #[test]
    fn injector_grabs_prefetch_a_chunk() {
        let locals: Vec<Worker<Batch>> = (0..1).map(|_| Worker::new_fifo()).collect();
        // 8 shards, 1 worker -> chunk of 4.
        let queues = TaskQueues::new(&locals, 8);
        for shard in 0..8 {
            queues.push(Batch { shard });
        }
        let (b, src) = queues.find(0, &locals[0]).expect("injector take");
        assert_eq!(src, TaskSource::Injector);
        assert_eq!(b.shard, 0);
        assert_eq!(locals[0].len(), 3, "chunk minus the returned batch");
        let (_, src) = queues.find(0, &locals[0]).expect("local pop");
        assert_eq!(src, TaskSource::Local);
    }
}
