//! Remediation dispatch: bounded retries, exponential backoff, dead
//! letters.
//!
//! Detections become [`RemediationTask`]s. Each attempt may fail (the
//! engine injects seeded faults to model flaky remediation channels —
//! an agent that is unreachable, a package mirror that times out); a
//! failed attempt is rescheduled `backoff_base * 2^attempt` ticks later,
//! and after `max_retries` rescheduled attempts the task is moved to the
//! dead-letter incident queue for a human.
//!
//! Fault rolls are a pure hash of `(seed, host, rule, attempt)` — not a
//! draw from a shared RNG stream — so the outcome of each attempt is
//! independent of the order tasks are processed in, which keeps
//! multi-worker runs byte-identical to single-worker runs.

use std::collections::BTreeMap;

use serde::Serialize;
use vdo_trace::TraceContext;

use crate::event::HostId;
use crate::monitors::DetectionKind;

/// Retry policy for the dispatcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemediationConfig {
    /// Rescheduled attempts after the first before dead-lettering.
    pub max_retries: u32,
    /// Backoff for attempt `n` (0-based) is `backoff_base << n` ticks.
    pub backoff_base: u64,
    /// Probability an attempt fails (seeded fault injection).
    pub fault_rate: f64,
}

impl Default for RemediationConfig {
    fn default() -> Self {
        RemediationConfig {
            max_retries: 3,
            backoff_base: 2,
            fault_rate: 0.0,
        }
    }
}

/// One remediation work item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemediationTask {
    /// Host to repair.
    pub host: HostId,
    /// Failing catalogue rule that triggered the task.
    pub rule: String,
    /// Tick the violation entered the system.
    pub introduced_at: u64,
    /// Tick the violation was detected (task creation).
    pub detected_at: u64,
    /// 0-based attempt counter.
    pub attempt: u32,
    /// Causal context inherited from the detection, when tracing is on.
    pub trace: Option<TraceContext>,
}

/// A task abandoned after exhausting its retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter {
    /// The abandoned task (its `attempt` is the number of failures).
    pub task: RemediationTask,
    /// Tick at which the dispatcher gave up.
    pub abandoned_at: u64,
}

/// One entry of the engine's incident log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocIncident {
    /// Affected host.
    pub host: HostId,
    /// Rule or assertion that fired.
    pub rule: String,
    /// Detector family.
    pub kind: DetectionKind,
    /// Tick the violation entered the system.
    pub introduced_at: u64,
    /// Tick it was detected.
    pub detected_at: u64,
    /// Tick remediation succeeded; `None` while open or dead-lettered
    /// (TEARS incidents are report-only and stay `None`).
    pub resolved_at: Option<u64>,
    /// Remediation attempts spent (0 for report-only incidents).
    pub attempts: u32,
    /// Causal context when tracing is on; its `trace_id` is the root
    /// trace of the requirement (catalogue rule / TEARS assertion) the
    /// incident violates.
    pub trace: Option<TraceContext>,
}

impl SocIncident {
    /// Detection latency in ticks.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.detected_at - self.introduced_at
    }
}

impl Serialize for SocIncident {
    fn to_value(&self) -> serde::json::Value {
        serde::json::object([
            ("host", (self.host as u64).to_value()),
            ("rule", self.rule.to_value()),
            ("kind", self.kind.to_string().to_value()),
            ("introduced_at", self.introduced_at.to_value()),
            ("detected_at", self.detected_at.to_value()),
            ("resolved_at", self.resolved_at.to_value()),
            ("attempts", (u64::from(self.attempts)).to_value()),
            ("trace", self.trace.to_value()),
        ])
    }
}

impl Serialize for DeadLetter {
    fn to_value(&self) -> serde::json::Value {
        serde::json::object([
            ("host", (self.task.host as u64).to_value()),
            ("rule", self.task.rule.to_value()),
            ("introduced_at", self.task.introduced_at.to_value()),
            ("detected_at", self.task.detected_at.to_value()),
            ("failed_attempts", (u64::from(self.task.attempt)).to_value()),
            ("abandoned_at", self.abandoned_at.to_value()),
            ("trace", self.task.trace.to_value()),
        ])
    }
}

/// The retry scheduler. Time is the engine's tick clock.
#[derive(Debug)]
pub struct Dispatcher {
    cfg: RemediationConfig,
    seed: u64,
    schedule: BTreeMap<u64, Vec<RemediationTask>>,
    dead: Vec<DeadLetter>,
}

impl Dispatcher {
    /// Creates a dispatcher with the given policy and fault seed.
    #[must_use]
    pub fn new(cfg: RemediationConfig, seed: u64) -> Self {
        Dispatcher {
            cfg,
            seed,
            schedule: BTreeMap::new(),
            dead: Vec::new(),
        }
    }

    /// The active policy.
    #[must_use]
    pub fn config(&self) -> &RemediationConfig {
        &self.cfg
    }

    /// Schedules `task` to run at `due` (clamped to be in the future of
    /// nothing — the engine drains with [`Dispatcher::take_due`]).
    pub fn schedule(&mut self, due: u64, task: RemediationTask) {
        self.schedule.entry(due).or_default().push(task);
    }

    /// Removes and returns every task due at or before `tick`, in
    /// `(due, insertion)` order.
    pub fn take_due(&mut self, tick: u64) -> Vec<RemediationTask> {
        let later = self.schedule.split_off(&(tick + 1));
        let due = std::mem::replace(&mut self.schedule, later);
        due.into_values().flatten().collect()
    }

    /// Whether the attempt this task is about to make fails, as a pure
    /// function of `(seed, host, rule, attempt)`.
    #[must_use]
    pub fn fault_injected(&self, task: &RemediationTask) -> bool {
        if self.cfg.fault_rate <= 0.0 {
            return false;
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        let mut mix = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for b in task.host.to_le_bytes() {
            mix(b);
        }
        for b in task.rule.as_bytes() {
            mix(*b);
        }
        for b in task.attempt.to_le_bytes() {
            mix(b);
        }
        // Finalize and map the top 53 bits to [0, 1).
        let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f64 / (1u64 << 53) as f64) < self.cfg.fault_rate
    }

    /// Records a failed attempt at `tick`: reschedules with exponential
    /// backoff, or dead-letters once retries are exhausted. Returns
    /// `true` when the task was rescheduled, `false` when it died.
    pub fn on_failure(&mut self, mut task: RemediationTask, tick: u64) -> bool {
        if task.attempt >= self.cfg.max_retries {
            task.attempt += 1;
            self.dead.push(DeadLetter {
                task,
                abandoned_at: tick,
            });
            false
        } else {
            let backoff = self.cfg.backoff_base << task.attempt;
            task.attempt += 1;
            self.schedule(tick + backoff.max(1), task);
            true
        }
    }

    /// Tasks abandoned so far.
    #[must_use]
    pub fn dead_letters(&self) -> &[DeadLetter] {
        &self.dead
    }

    /// Consumes the dispatcher, yielding its dead letters.
    #[must_use]
    pub fn into_dead_letters(self) -> Vec<DeadLetter> {
        self.dead
    }

    /// Number of tasks still waiting on the schedule.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.schedule.values().map(Vec::len).sum()
    }

    /// The earliest tick with scheduled work, if any.
    #[must_use]
    pub fn next_due(&self) -> Option<u64> {
        self.schedule.keys().next().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(host: HostId) -> RemediationTask {
        RemediationTask {
            host,
            rule: "V-100".into(),
            introduced_at: 3,
            detected_at: 3,
            attempt: 0,
            trace: None,
        }
    }

    #[test]
    fn take_due_drains_everything_at_or_before_the_tick() {
        let mut d = Dispatcher::new(RemediationConfig::default(), 0);
        d.schedule(2, task(0));
        d.schedule(5, task(1));
        d.schedule(9, task(2));
        let due = d.take_due(5);
        assert_eq!(due.iter().map(|t| t.host).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(d.pending(), 1);
        assert_eq!(d.next_due(), Some(9));
    }

    #[test]
    fn failures_back_off_exponentially_then_dead_letter() {
        let cfg = RemediationConfig {
            max_retries: 2,
            backoff_base: 3,
            fault_rate: 1.0,
        };
        let mut d = Dispatcher::new(cfg, 7);
        let mut tick = 10;
        assert!(d.on_failure(task(0), tick));
        assert_eq!(d.next_due(), Some(13), "first backoff = base");
        tick = 13;
        let t = d.take_due(tick).pop().unwrap();
        assert_eq!(t.attempt, 1);
        assert!(d.on_failure(t, tick));
        assert_eq!(d.next_due(), Some(19), "second backoff = 2*base");
        tick = 19;
        let t = d.take_due(tick).pop().unwrap();
        assert!(!d.on_failure(t, tick), "retries exhausted");
        assert_eq!(d.dead_letters().len(), 1);
        assert_eq!(d.dead_letters()[0].abandoned_at, 19);
        assert_eq!(d.dead_letters()[0].task.attempt, 3, "total failed attempts");
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn fault_rolls_are_order_independent_and_seeded() {
        let cfg = RemediationConfig {
            fault_rate: 0.5,
            ..RemediationConfig::default()
        };
        let d1 = Dispatcher::new(cfg, 42);
        let d2 = Dispatcher::new(cfg, 42);
        let d3 = Dispatcher::new(cfg, 43);
        let rolls1: Vec<bool> = (0..64).map(|h| d1.fault_injected(&task(h))).collect();
        let rolls2: Vec<bool> = (0..64).map(|h| d2.fault_injected(&task(h))).collect();
        let rolls3: Vec<bool> = (0..64).map(|h| d3.fault_injected(&task(h))).collect();
        assert_eq!(rolls1, rolls2, "same seed, same rolls");
        assert_ne!(rolls1, rolls3, "different seed, different rolls");
        assert!(rolls1.iter().any(|&f| f) && rolls1.iter().any(|&f| !f));
    }

    #[test]
    fn zero_fault_rate_never_fails() {
        let d = Dispatcher::new(RemediationConfig::default(), 1);
        assert!((0..100).all(|h| !d.fault_injected(&task(h))));
    }
}
