//! Property tests for the SOC engine's three load-bearing guarantees:
//! the latency advantage over polling, per-shard event ordering under
//! concurrent publishers, and bounded-retry termination into the
//! dead-letter queue.

use std::sync::Arc;

use proptest::prelude::*;

use vdo_core::{CheckStatus, RemediationPlanner};
use vdo_host::UnixHost;
use vdo_pipeline::{MonitorEngine, OperationsPhase, OpsConfig};
use vdo_soc::{
    Dispatcher, PublishError, RemediationConfig, RemediationTask, SecEvent, ShardedBus, SocConfig,
    SocEngine,
};
use vdo_stigs::ubuntu;
use vdo_temporal::{GlobalUniversality, MonitorOutcome, MonitoringLoop};

proptest! {
    /// For every polling period `p >= 1` and every drift history, the
    /// event-driven engine's mean detection latency is no worse than
    /// the polling monitor's — on the *same* violation history (equal
    /// seeds give both engines identical drift streams).
    #[test]
    fn event_driven_latency_never_exceeds_polling(seed in 0u64..10_000, period in 1u64..40) {
        let catalog = ubuntu::catalog();
        let planner = RemediationPlanner::default();
        let base = OpsConfig {
            duration: 300,
            drift_rate: 0.05,
            monitor_period: Some(period),
            audit_period: 0,
            seed,
            ..OpsConfig::default()
        };

        let mut polled_host = UnixHost::baseline_ubuntu_1804();
        planner.run(&catalog, &mut polled_host);
        let polled = OperationsPhase::new(&catalog).run(&mut polled_host, &base);

        let mut event_host = UnixHost::baseline_ubuntu_1804();
        planner.run(&catalog, &mut event_host);
        let eventful = OperationsPhase::new(&catalog).run(
            &mut event_host,
            &OpsConfig {
                engine: MonitorEngine::EventDriven { workers: 1 },
                ..base
            },
        );

        prop_assert_eq!(polled.drift_events, eventful.drift_events,
            "equal seeds must give equal drift streams");
        prop_assert!(eventful.incidents.iter().all(|i| i.latency() == 0),
            "event-driven detection is same-tick");
        prop_assert!(
            eventful.mean_detection_latency() <= polled.mean_detection_latency(),
            "event-driven {} > polling {} at period {}",
            eventful.mean_detection_latency(),
            polled.mean_detection_latency(),
            period
        );
    }

    /// Cross-check against `MonitoringLoop`, the paper's polling
    /// primitive: polling the engine's own ground-truth compliance
    /// trace at any period detects a violation no earlier than the
    /// tick it happened — i.e. with latency >= 0, the event-driven
    /// engine's latency on every incident.
    #[test]
    fn monitoring_loop_on_ground_truth_is_never_early(seed in 0u64..10_000, period in 1u64..40) {
        let catalog = ubuntu::catalog();
        let planner = RemediationPlanner::default();
        let mut host = UnixHost::baseline_ubuntu_1804();
        planner.run(&catalog, &mut host);
        // All remediations fail, so violations persist in the trace
        // and a poller has something to find.
        let engine = SocEngine::new(&catalog, SocConfig {
            duration: 300,
            drift_rate: 0.05,
            workers: 1,
            shards: 2,
            seed,
            remediation: RemediationConfig { fault_rate: 1.0, ..RemediationConfig::default() },
            ..SocConfig::default()
        }).expect("valid config");
        let report = engine.run(std::slice::from_mut(&mut host));

        let first_violation = report
            .fleet_compliance_trace
            .states()
            .iter()
            .position(|&ok| !ok)
            .map(|i| i as u64);
        let pattern = GlobalUniversality::new(|ok: &bool| CheckStatus::from(*ok));
        let poll = MonitoringLoop::new(period)
            .expect("nonzero period")
            .run(&pattern, &report.fleet_compliance_trace);
        match (first_violation, poll.outcome) {
            (Some(tick), MonitorOutcome::ViolationDetected(at)) => {
                let latency = poll.detection_latency(tick).expect("detected after violation");
                prop_assert!(at >= tick, "poller detected before the violation");
                prop_assert!(latency < period,
                    "polling latency {} must stay below the period {}", latency, period);
                // The event-driven engine saw the same first violation
                // with zero latency.
                let earliest = report.incidents.iter().map(|i| i.introduced_at).min();
                prop_assert_eq!(earliest, Some(tick));
            }
            (None, outcome) => {
                prop_assert!(!matches!(outcome, MonitorOutcome::ViolationDetected(_)),
                    "poller found a violation in an always-compliant trace");
                prop_assert!(report.incidents.is_empty());
            }
            (Some(tick), outcome) => {
                // A violation in the last `period - 1` ticks can slip
                // past the final poll; anything earlier must be caught.
                prop_assert!(300 - tick < period,
                    "poller missed a violation at tick {} (outcome {:?})", tick, outcome);
            }
        }
    }

    /// Concurrent publishers never corrupt a shard's order: every
    /// shard drains with gap-free, strictly increasing sequence
    /// numbers regardless of shard count, publisher count, or load.
    #[test]
    fn shards_stay_ordered_under_concurrent_publishers(
        shards in 1usize..8,
        publishers in 1usize..5,
        per_publisher in 1usize..200,
        host_spread in 1usize..32,
    ) {
        let bus = Arc::new(ShardedBus::new(shards, 4096));
        let handles: Vec<_> = (0..publishers)
            .map(|p| {
                let bus = Arc::clone(&bus);
                std::thread::spawn(move || {
                    for i in 0..per_publisher {
                        let event = SecEvent::SignalTick {
                            host: (p * 31 + i) % host_spread,
                            tick: i as u64,
                            signals: vec![("load", 0.5)],
                        };
                        match bus.publish(event) {
                            Ok(_) | Err(PublishError::Backpressure(_)) => {}
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("publisher panicked");
        }
        for shard in 0..shards {
            let mut expected = 0u64;
            while let Some(env) = bus.pop(shard) {
                prop_assert_eq!(env.shard, shard);
                prop_assert_eq!(env.seq, expected, "gap in shard {}", shard);
                expected += 1;
            }
        }
    }

    /// With permanent faults, every scheduled remediation terminates:
    /// it is retried exactly `max_retries` times with exponential
    /// backoff and then lands in the dead-letter queue. No task loops
    /// forever, none is lost.
    #[test]
    fn permanent_faults_always_terminate_in_the_dlq(
        tasks in 1usize..20,
        max_retries in 0u32..6,
        backoff_base in 1u64..8,
        seed in 0u64..10_000,
    ) {
        let cfg = RemediationConfig { max_retries, backoff_base, fault_rate: 1.0 };
        let mut dispatcher = Dispatcher::new(cfg, seed);
        for t in 0..tasks {
            dispatcher.schedule(0, RemediationTask {
                host: t,
                rule: format!("rule-{t}"),
                introduced_at: 0,
                detected_at: 0,
                attempt: 0,
                trace: None,
            });
        }
        // Worst-case completion: every task retries at every backoff.
        let horizon: u64 = (0..=max_retries)
            .map(|n| backoff_base << n)
            .sum::<u64>()
            + 1;
        for tick in 0..=horizon {
            for task in dispatcher.take_due(tick) {
                prop_assert!(dispatcher.fault_injected(&task), "fault rate 1.0 always faults");
                dispatcher.on_failure(task, tick);
            }
        }
        prop_assert_eq!(dispatcher.pending(), 0, "tasks still scheduled past the horizon");
        prop_assert_eq!(dispatcher.dead_letters().len(), tasks);
        for dl in dispatcher.dead_letters() {
            prop_assert_eq!(dl.task.attempt, max_retries + 1,
                "dead letter records the attempt count");
        }
    }
}
