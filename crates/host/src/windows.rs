//! Simulated Windows 10 host.
//!
//! Models the three Windows subsystems the Win10 STIG requirements in
//! `vdo-stigs` exercise:
//!
//! * the **advanced audit policy** table — the state that the Java
//!   prototype reads and writes by forking `auditpol.exe`
//!   (`AuditPolicyRequirement` in D2.7 §"rqcode.patterns.win10");
//! * a **registry hive** with string/dword values;
//! * the **account lockout policy**.

use std::collections::BTreeMap;
use std::fmt;

/// One audit subcategory setting: whether Success and/or Failure events
/// are recorded. `auditpol /get` prints this as `Success and Failure`,
/// `Success`, `Failure`, or `No Auditing`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct AuditSetting {
    /// Success events are audited.
    pub success: bool,
    /// Failure events are audited.
    pub failure: bool,
}

impl AuditSetting {
    /// Both success and failure audited.
    pub const BOTH: AuditSetting = AuditSetting {
        success: true,
        failure: true,
    };
    /// Only success audited.
    pub const SUCCESS: AuditSetting = AuditSetting {
        success: true,
        failure: false,
    };
    /// Only failure audited.
    pub const FAILURE: AuditSetting = AuditSetting {
        success: false,
        failure: true,
    };
    /// No auditing.
    pub const NONE: AuditSetting = AuditSetting {
        success: false,
        failure: false,
    };

    /// `true` iff this setting audits at least everything `required`
    /// audits — STIG checks pass when the host audits *more* than asked.
    #[must_use]
    pub fn covers(self, required: AuditSetting) -> bool {
        (self.success || !required.success) && (self.failure || !required.failure)
    }

    /// Least upper bound of two settings (union of audited events).
    #[must_use]
    pub fn union(self, other: AuditSetting) -> AuditSetting {
        AuditSetting {
            success: self.success || other.success,
            failure: self.failure || other.failure,
        }
    }

    /// Parses `auditpol` output spellings.
    #[must_use]
    pub fn parse(s: &str) -> Option<AuditSetting> {
        match s.trim().to_ascii_lowercase().as_str() {
            "success and failure" | "success,failure" => Some(AuditSetting::BOTH),
            "success" => Some(AuditSetting::SUCCESS),
            "failure" => Some(AuditSetting::FAILURE),
            "no auditing" | "none" => Some(AuditSetting::NONE),
            _ => None,
        }
    }
}

impl fmt::Display for AuditSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match (self.success, self.failure) {
            (true, true) => "Success and Failure",
            (true, false) => "Success",
            (false, true) => "Failure",
            (false, false) => "No Auditing",
        })
    }
}

/// The advanced audit policy: `(category, subcategory) → AuditSetting`.
///
/// Categories and subcategories mirror `auditpol /get /category:*`
/// (e.g. category `"Account Management"`, subcategory
/// `"User Account Management"`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditPolicy {
    table: BTreeMap<(String, String), AuditSetting>,
}

impl AuditPolicy {
    /// Creates an empty policy (everything "No Auditing").
    #[must_use]
    pub fn new() -> Self {
        AuditPolicy::default()
    }

    /// Sets a subcategory's setting — the simulation of
    /// `auditpol /set /subcategory:"…" /success:enable /failure:enable`.
    pub fn set(
        &mut self,
        category: impl Into<String>,
        subcategory: impl Into<String>,
        setting: AuditSetting,
    ) {
        self.table
            .insert((category.into(), subcategory.into()), setting);
    }

    /// Reads a subcategory's effective setting (missing = no auditing).
    #[must_use]
    pub fn get(&self, category: &str, subcategory: &str) -> AuditSetting {
        self.table
            .get(&(category.to_string(), subcategory.to_string()))
            .copied()
            .unwrap_or(AuditSetting::NONE)
    }

    /// Number of explicitly configured subcategories.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` iff nothing is explicitly configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Iterates over configured `(category, subcategory, setting)` rows.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, AuditSetting)> {
        self.table
            .iter()
            .map(|((c, s), v)| (c.as_str(), s.as_str(), *v))
    }
}

/// A registry value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryValue {
    /// REG_DWORD.
    Dword(u32),
    /// REG_SZ.
    Sz(String),
}

impl RegistryValue {
    /// The dword payload, if this is a `Dword`.
    #[must_use]
    pub fn as_dword(&self) -> Option<u32> {
        match self {
            RegistryValue::Dword(v) => Some(*v),
            RegistryValue::Sz(_) => None,
        }
    }

    /// The string payload, if this is an `Sz`.
    #[must_use]
    pub fn as_sz(&self) -> Option<&str> {
        match self {
            RegistryValue::Sz(s) => Some(s),
            RegistryValue::Dword(_) => None,
        }
    }
}

impl fmt::Display for RegistryValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryValue::Dword(v) => write!(f, "dword:{v:#010x}"),
            RegistryValue::Sz(s) => write!(f, "sz:{s}"),
        }
    }
}

/// In-memory simulation of a Windows 10 workstation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowsHost {
    hostname: String,
    audit: AuditPolicy,
    registry: BTreeMap<String, BTreeMap<String, RegistryValue>>,
    lockout_threshold: u32,
    lockout_duration_minutes: u32,
}

impl WindowsHost {
    /// Creates an empty host with the given hostname.
    #[must_use]
    pub fn new(hostname: impl Into<String>) -> Self {
        WindowsHost {
            hostname: hostname.into(),
            ..WindowsHost::default()
        }
    }

    /// A host resembling a stock Windows 10 build: default audit policy
    /// (mostly success-only or none), lax lockout policy — the canonical
    /// non-compliant starting point for the Win10 STIG experiments.
    #[must_use]
    pub fn baseline_win10() -> Self {
        let mut h = WindowsHost::new("win10-ws");
        // Windows defaults audit a few categories success-only.
        h.audit.set(
            "Account Logon",
            "Credential Validation",
            AuditSetting::SUCCESS,
        );
        h.audit.set("Logon/Logoff", "Logon", AuditSetting::SUCCESS);
        h.audit.set(
            "Account Management",
            "User Account Management",
            AuditSetting::SUCCESS,
        );
        // Sensitive Privilege Use is not audited by default — the famous
        // V-63483/V-63487 findings.
        h.set_registry_value(
            r"HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Policies\System",
            "EnableLUA",
            RegistryValue::Dword(1),
        );
        h.lockout_threshold = 0; // violation: no lockout
        h.lockout_duration_minutes = 0;
        h
    }

    /// Hostname of the simulated machine.
    #[must_use]
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// Shared view of the audit policy.
    #[must_use]
    pub fn audit_policy(&self) -> &AuditPolicy {
        &self.audit
    }

    /// Mutable view of the audit policy (what `auditpol /set` fronts).
    pub fn audit_policy_mut(&mut self) -> &mut AuditPolicy {
        &mut self.audit
    }

    /// Writes a registry value under the given key path.
    pub fn set_registry_value(
        &mut self,
        key: impl Into<String>,
        name: impl Into<String>,
        value: RegistryValue,
    ) {
        self.registry
            .entry(key.into())
            .or_default()
            .insert(name.into(), value);
    }

    /// Reads a registry value.
    #[must_use]
    pub fn registry_value(&self, key: &str, name: &str) -> Option<&RegistryValue> {
        self.registry.get(key)?.get(name)
    }

    /// Deletes a registry value; returns `true` if it existed.
    pub fn delete_registry_value(&mut self, key: &str, name: &str) -> bool {
        self.registry
            .get_mut(key)
            .is_some_and(|k| k.remove(name).is_some())
    }

    /// Account lockout threshold (0 = never lock — a STIG violation).
    #[must_use]
    pub fn lockout_threshold(&self) -> u32 {
        self.lockout_threshold
    }

    /// Sets the lockout threshold.
    pub fn set_lockout_threshold(&mut self, attempts: u32) {
        self.lockout_threshold = attempts;
    }

    /// Lockout duration in minutes.
    #[must_use]
    pub fn lockout_duration_minutes(&self) -> u32 {
        self.lockout_duration_minutes
    }

    /// Sets the lockout duration.
    pub fn set_lockout_duration_minutes(&mut self, minutes: u32) {
        self.lockout_duration_minutes = minutes;
    }

    /// Coarse estimate of this host's heap footprint in bytes; see
    /// [`UnixHost::approx_bytes`](crate::UnixHost::approx_bytes).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        const ENTRY: usize = 48;
        let mut bytes = std::mem::size_of::<WindowsHost>() + self.hostname.len();
        for (category, subcategory, _) in self.audit.iter() {
            bytes += category.len() + subcategory.len() + ENTRY;
        }
        for (key, values) in &self.registry {
            bytes += key.len() + ENTRY;
            for (name, value) in values {
                bytes += name.len() + ENTRY;
                if let RegistryValue::Sz(s) = value {
                    bytes += s.len();
                }
            }
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_setting_covers() {
        assert!(AuditSetting::BOTH.covers(AuditSetting::SUCCESS));
        assert!(AuditSetting::BOTH.covers(AuditSetting::BOTH));
        assert!(!AuditSetting::SUCCESS.covers(AuditSetting::BOTH));
        assert!(!AuditSetting::NONE.covers(AuditSetting::FAILURE));
        assert!(AuditSetting::NONE.covers(AuditSetting::NONE));
    }

    #[test]
    fn audit_setting_union_and_display() {
        assert_eq!(
            AuditSetting::SUCCESS.union(AuditSetting::FAILURE),
            AuditSetting::BOTH
        );
        assert_eq!(AuditSetting::BOTH.to_string(), "Success and Failure");
        assert_eq!(AuditSetting::NONE.to_string(), "No Auditing");
    }

    #[test]
    fn audit_setting_parse_round_trip() {
        for s in [
            AuditSetting::BOTH,
            AuditSetting::SUCCESS,
            AuditSetting::FAILURE,
            AuditSetting::NONE,
        ] {
            assert_eq!(AuditSetting::parse(&s.to_string()), Some(s));
        }
        assert_eq!(AuditSetting::parse("weird"), None);
    }

    #[test]
    fn audit_policy_defaults_to_no_auditing() {
        let p = AuditPolicy::new();
        assert_eq!(p.get("Logon/Logoff", "Logon"), AuditSetting::NONE);
        assert!(p.is_empty());
    }

    #[test]
    fn audit_policy_set_get() {
        let mut p = AuditPolicy::new();
        p.set("Logon/Logoff", "Logon", AuditSetting::BOTH);
        assert_eq!(p.get("Logon/Logoff", "Logon"), AuditSetting::BOTH);
        assert_eq!(p.get("Logon/Logoff", "Logoff"), AuditSetting::NONE);
        assert_eq!(p.len(), 1);
        let rows: Vec<_> = p.iter().collect();
        assert_eq!(rows, vec![("Logon/Logoff", "Logon", AuditSetting::BOTH)]);
    }

    #[test]
    fn registry_round_trip() {
        let mut h = WindowsHost::new("t");
        h.set_registry_value(r"HKLM\X", "Val", RegistryValue::Dword(7));
        assert_eq!(
            h.registry_value(r"HKLM\X", "Val")
                .and_then(RegistryValue::as_dword),
            Some(7)
        );
        h.set_registry_value(r"HKLM\X", "Name", RegistryValue::Sz("abc".into()));
        assert_eq!(
            h.registry_value(r"HKLM\X", "Name")
                .and_then(RegistryValue::as_sz),
            Some("abc")
        );
        assert!(h.delete_registry_value(r"HKLM\X", "Val"));
        assert!(!h.delete_registry_value(r"HKLM\X", "Val"));
        assert_eq!(h.registry_value(r"HKLM\X", "Val"), None);
    }

    #[test]
    fn lockout_policy() {
        let mut h = WindowsHost::new("t");
        assert_eq!(h.lockout_threshold(), 0);
        h.set_lockout_threshold(3);
        h.set_lockout_duration_minutes(15);
        assert_eq!(h.lockout_threshold(), 3);
        assert_eq!(h.lockout_duration_minutes(), 15);
    }

    #[test]
    fn baseline_is_noncompliant() {
        let h = WindowsHost::baseline_win10();
        assert_eq!(
            h.audit_policy()
                .get("Account Management", "User Account Management"),
            AuditSetting::SUCCESS,
            "success-only is insufficient for V-63447/V-63449"
        );
        assert_eq!(
            h.audit_policy()
                .get("Privilege Use", "Sensitive Privilege Use"),
            AuditSetting::NONE
        );
        assert_eq!(h.lockout_threshold(), 0);
    }
}
