//! Key-major columnar overlay tables.
//!
//! The copy-on-write fleet store keeps one shared baseline host plus,
//! per configuration domain (packages, directives, audit policy, …), a
//! single [`OverlayTable`] holding *only the values that differ from
//! the baseline*. Entries are keyed `(domain key, host id)` — key-major
//! — so the two access patterns the closed loop needs are both cheap:
//!
//! * **point lookup** for one host's effective value:
//!   `get(key, host)` — one `BTreeMap` probe;
//! * **vectorized sweep** for a STIG check: "which hosts override the
//!   key this check reads?" is a contiguous range scan
//!   (`hosts_for(key)`), so a fleet-wide check costs one baseline
//!   evaluation plus work proportional to the *delta*, not the fleet.
//!
//! Storage is proportional to total drift, not `hosts × keys`.

use std::collections::BTreeMap;

/// Rough per-entry bookkeeping cost of a `BTreeMap` (node overhead
/// amortized per entry), used by the memory accounting in
/// [`store`](crate::store).
pub const BTREE_ENTRY_OVERHEAD: usize = 16;

/// A sparse `(key, host) → value` table; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct OverlayTable<K: Ord + Copy, V> {
    map: BTreeMap<(K, u32), V>,
}

impl<K: Ord + Copy, V> OverlayTable<K, V> {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        OverlayTable {
            map: BTreeMap::new(),
        }
    }

    /// The overlay value one host holds for `key`, if any.
    pub fn get(&self, key: K, host: u32) -> Option<&V> {
        self.map.get(&(key, host))
    }

    /// Inserts or replaces one host's overlay for `key`.
    pub fn set(&mut self, key: K, host: u32, value: V) {
        self.map.insert((key, host), value);
    }

    /// Drops one host's overlay for `key` (the host reverts to the
    /// baseline value). Returns `true` if an overlay existed.
    pub fn clear(&mut self, key: K, host: u32) -> bool {
        self.map.remove(&(key, host)).is_some()
    }

    /// Hosts holding an overlay for `key`, ascending — the vectorized
    /// sweep primitive.
    pub fn hosts_for(&self, key: K) -> impl Iterator<Item = u32> + '_ {
        self.map
            .range((key, 0)..=(key, u32::MAX))
            .map(|((_, h), _)| *h)
    }

    /// All `(key, value)` overlays one host holds. Full-table scan —
    /// used by per-host materialization and forensics, not hot paths.
    pub fn entries_for_host(&self, host: u32) -> impl Iterator<Item = (K, &V)> + '_ {
        self.map
            .iter()
            .filter(move |((_, h), _)| *h == host)
            .map(|((k, _), v)| (*k, v))
    }

    /// Every distinct host holding any overlay in this table, ascending.
    pub fn hosts_any(&self) -> Vec<u32> {
        let mut hosts: Vec<u32> = self.map.keys().map(|(_, h)| *h).collect();
        hosts.sort_unstable();
        hosts.dedup();
        hosts
    }

    /// Total overlay entries across all keys and hosts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff the table holds no overlays.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Coarse memory footprint estimate in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.map.len()
            * (std::mem::size_of::<(K, u32)>() + std::mem::size_of::<V>() + BTREE_ENTRY_OVERHEAD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_lookup_and_clear() {
        let mut t: OverlayTable<u32, &str> = OverlayTable::new();
        t.set(5, 100, "a");
        t.set(5, 7, "b");
        assert_eq!(t.get(5, 100), Some(&"a"));
        assert_eq!(t.get(5, 8), None);
        assert!(t.clear(5, 100));
        assert!(!t.clear(5, 100));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn hosts_for_is_a_contiguous_range() {
        let mut t: OverlayTable<u32, u8> = OverlayTable::new();
        for h in [9u32, 3, 120] {
            t.set(1, h, 0);
        }
        t.set(0, 50, 0);
        t.set(2, 51, 0);
        assert_eq!(t.hosts_for(1).collect::<Vec<_>>(), vec![3, 9, 120]);
        assert_eq!(t.hosts_for(7).count(), 0);
    }

    #[test]
    fn per_host_and_any_host_scans() {
        let mut t: OverlayTable<u8, char> = OverlayTable::new();
        t.set(1, 10, 'x');
        t.set(2, 10, 'y');
        t.set(1, 11, 'z');
        let mine: Vec<_> = t.entries_for_host(10).map(|(k, v)| (k, *v)).collect();
        assert_eq!(mine, vec![(1, 'x'), (2, 'y')]);
        assert_eq!(t.hosts_any(), vec![10, 11]);
    }

    #[test]
    fn approx_bytes_scales_with_entries() {
        let mut t: OverlayTable<u32, u64> = OverlayTable::new();
        assert_eq!(t.approx_bytes(), 0);
        t.set(0, 0, 0);
        t.set(0, 1, 0);
        assert!(t.approx_bytes() >= 2 * (8 + 8));
    }
}
