//! Deterministic string interning for columnar fleet storage.
//!
//! A million-host fleet repeats the same few hundred strings — package
//! names, directive keys, config paths, audit subcategories — millions
//! of times. [`Interner`] maps each distinct string to a dense
//! [`Sym`] (a `u32`), so the columnar tables in
//! [`store`](crate::store) hold 4-byte ids instead of owned `String`s.
//!
//! Symbols are assigned in first-intern order, which makes the interner
//! fully deterministic for equal operation sequences — a property the
//! fleet equivalence tests rely on.

use std::collections::HashMap;

/// An interned string id. Cheap to copy, order is first-seen order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Smallest possible symbol (range-scan bound).
    pub(crate) const MIN: Sym = Sym(0);
    /// Largest possible symbol (range-scan bound).
    pub(crate) const MAX: Sym = Sym(u32::MAX);

    /// The raw index into the interner's table.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Append-only, deterministic string interner.
///
/// ```
/// use vdo_host::intern::Interner;
///
/// let mut i = Interner::new();
/// let a = i.intern("openssh-server");
/// let b = i.intern("openssh-server");
/// assert_eq!(a, b);
/// assert_eq!(i.resolve(a), "openssh-server");
/// assert_eq!(i.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Vec<Box<str>>,
    lookup: HashMap<Box<str>, Sym>,
}

impl Interner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns a string, returning its symbol (existing or fresh).
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct strings are interned —
    /// the simulated config vocabulary is a few hundred strings.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.strings.len()).expect("interner overflow"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, sym);
        sym
    }

    /// Looks up a string without interning it.
    #[must_use]
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.lookup.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different interner (out of range).
    #[must_use]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// `true` iff nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Coarse memory footprint estimate in bytes: string payloads (held
    /// twice — table and lookup key) plus per-entry bookkeeping.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let payload: usize = self.strings.iter().map(|s| s.len()).sum();
        // Box<str> header (16) twice, HashMap entry (~48), Vec slot (16).
        payload * 2 + self.strings.len() * 80
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_dense_and_first_seen_ordered() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        let a2 = i.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.resolve(a), "alpha");
        assert_eq!(i.resolve(b), "beta");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        assert!(i.is_empty());
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn equal_sequences_produce_equal_symbols() {
        let seq = ["p", "q", "p", "r", "q"];
        let mut a = Interner::new();
        let mut b = Interner::new();
        let sa: Vec<_> = seq.iter().map(|s| a.intern(s)).collect();
        let sb: Vec<_> = seq.iter().map(|s| b.intern(s)).collect();
        assert_eq!(sa, sb, "interning is deterministic");
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let mut i = Interner::new();
        let empty = i.approx_bytes();
        i.intern("a-reasonably-long-package-name");
        assert!(i.approx_bytes() > empty);
    }
}
