//! Platform-generic host views: the [`HostRead`] / [`HostWrite`] traits.
//!
//! STIG checks, drift injection, and diffing used to be written twice —
//! once against [`UnixHost`] and once against [`WindowsHost`] — and a
//! third copy would have been needed for the columnar
//! [`FleetStore`](crate::store::FleetStore). These traits collapse the
//! three surfaces into one: a *read view* covering every query the
//! requirement patterns make, and a *write view* covering every mutation
//! enforcement and drift perform.
//!
//! The traits are deliberately **cross-platform**: a Unix query on a
//! Windows host answers with absence (`None`, `false`, an empty list)
//! and a Windows query on a Unix host likewise, mirroring how a real
//! scanner probing `dpkg` on Windows simply finds nothing. Off-platform
//! *writes* are ignored. Each concrete host overrides only its own
//! domain and inherits the absent defaults for the other, so a generic
//! check such as `Checkable<H: HostRead>` runs unmodified against any
//! host representation.

use crate::unix::{FileMode, ServiceState, UnixHost};
use crate::windows::{AuditSetting, RegistryValue, WindowsHost};

/// The operating-system family a host or fleet simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Platform {
    /// Debian-family Unix (the Ubuntu 18.04 STIG target).
    #[default]
    Unix,
    /// Windows 10 workstation.
    Windows,
}

impl core::fmt::Display for Platform {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Platform::Unix => "unix",
            Platform::Windows => "windows",
        })
    }
}

/// Read-only view of a simulated host, covering every query the STIG
/// requirement patterns, the drift injector, and the differ make.
///
/// Off-platform queries return absence rather than panicking; see the
/// module docs.
pub trait HostRead {
    /// Which platform this host simulates.
    fn platform(&self) -> Platform;

    // ---- Unix: package database -------------------------------------

    /// `true` iff the package is currently installed.
    fn is_package_installed(&self, _name: &str) -> bool {
        false
    }

    /// Installed version, if the package is installed.
    fn package_version(&self, _name: &str) -> Option<&str> {
        None
    }

    /// Names of all installed packages, in sorted order.
    fn installed_package_names(&self) -> Vec<String> {
        Vec::new()
    }

    // ---- Unix: services, config files, accounts, sysctl -------------

    /// Current state of a service; `None` if the unit does not exist.
    fn service(&self, _name: &str) -> Option<ServiceState> {
        None
    }

    /// Effective value of a config directive (case-insensitive key).
    fn directive(&self, _path: &str, _key: &str) -> Option<&str> {
        None
    }

    /// Permission bits of a path, if recorded.
    fn file_mode(&self, _path: &str) -> Option<FileMode> {
        None
    }

    /// `true` iff the account exists.
    fn has_account(&self, _name: &str) -> bool {
        false
    }

    /// `true` iff every account stores its password encrypted
    /// (vacuously true with no accounts — including on Windows hosts).
    fn all_passwords_encrypted(&self) -> bool {
        true
    }

    /// Reads a sysctl-style kernel parameter.
    fn kernel_param(&self, _key: &str) -> Option<&str> {
        None
    }

    // ---- Windows: audit policy, registry, lockout --------------------

    /// Effective audit setting of a subcategory (missing = no auditing).
    fn audit_setting(&self, _category: &str, _subcategory: &str) -> AuditSetting {
        AuditSetting::NONE
    }

    /// Reads a registry value (owned — columnar stores reassemble it
    /// from interned parts).
    fn registry_value(&self, _key: &str, _name: &str) -> Option<RegistryValue> {
        None
    }

    /// Account lockout threshold (0 = never lock).
    fn lockout_threshold(&self) -> u32 {
        0
    }

    /// Lockout duration in minutes.
    fn lockout_duration_minutes(&self) -> u32 {
        0
    }
}

/// Mutable view of a simulated host, covering every mutation STIG
/// enforcement and the drift injector perform.
///
/// Off-platform writes are ignored (default no-op bodies), so a generic
/// `Enforceable<H: HostWrite>` can be applied to any host without a
/// platform dispatch at the call site.
pub trait HostWrite: HostRead {
    // ---- Unix -------------------------------------------------------

    /// Installs (or upgrades) a package.
    fn install_package(&mut self, _name: &str, _version: &str) {}

    /// Removes a package; returns `true` if it was installed.
    fn remove_package(&mut self, _name: &str) -> bool {
        false
    }

    /// Sets the full state of a service (creating it if unknown).
    fn set_service(&mut self, _name: &str, _state: ServiceState) {}

    /// Enables and starts a service, creating the unit if missing.
    fn enable_service(&mut self, name: &str) {
        self.set_service(
            name,
            ServiceState {
                enabled: true,
                active: true,
            },
        );
    }

    /// Disables and stops a service. Returns `true` if the unit existed.
    fn disable_service(&mut self, name: &str) -> bool {
        if self.service(name).is_some() {
            self.set_service(
                name,
                ServiceState {
                    enabled: false,
                    active: false,
                },
            );
            true
        } else {
            false
        }
    }

    /// Appends or replaces a `key value` directive (case-insensitive).
    fn write_directive(&mut self, _path: &str, _key: &str, _value: &str) {}

    /// Removes a directive; returns `true` if it existed.
    fn remove_directive(&mut self, _path: &str, _key: &str) -> bool {
        false
    }

    /// Sets the permission bits of a path.
    fn set_file_mode(&mut self, _path: &str, _mode: FileMode) {}

    /// Adds (or replaces) a local account.
    fn add_account(&mut self, _name: &str, _uid: u32, _locked: bool, _password_encrypted: bool) {}

    /// Marks one account's password as stored in clear text; returns
    /// `true` if the account exists.
    fn corrupt_password_storage(&mut self, _name: &str) -> bool {
        false
    }

    /// Re-encrypts every stored password.
    fn encrypt_all_passwords(&mut self) {}

    /// Sets a sysctl-style kernel parameter.
    fn set_kernel_param(&mut self, _key: &str, _value: &str) {}

    // ---- Windows ----------------------------------------------------

    /// Sets an audit subcategory's setting.
    fn set_audit(&mut self, _category: &str, _subcategory: &str, _setting: AuditSetting) {}

    /// Writes a registry value under the given key path.
    fn set_registry_value(&mut self, _key: &str, _name: &str, _value: RegistryValue) {}

    /// Sets the account lockout threshold.
    fn set_lockout_threshold(&mut self, _attempts: u32) {}

    /// Sets the lockout duration in minutes.
    fn set_lockout_duration_minutes(&mut self, _minutes: u32) {}
}

// ---- Concrete host impls: delegate to the inherent methods ----------

impl HostRead for UnixHost {
    fn platform(&self) -> Platform {
        Platform::Unix
    }

    fn is_package_installed(&self, name: &str) -> bool {
        UnixHost::is_package_installed(self, name)
    }

    fn package_version(&self, name: &str) -> Option<&str> {
        UnixHost::package_version(self, name)
    }

    fn installed_package_names(&self) -> Vec<String> {
        UnixHost::installed_packages(self)
            .map(str::to_string)
            .collect()
    }

    fn service(&self, name: &str) -> Option<ServiceState> {
        UnixHost::service(self, name)
    }

    fn directive(&self, path: &str, key: &str) -> Option<&str> {
        UnixHost::directive(self, path, key)
    }

    fn file_mode(&self, path: &str) -> Option<FileMode> {
        UnixHost::file_mode(self, path)
    }

    fn has_account(&self, name: &str) -> bool {
        UnixHost::has_account(self, name)
    }

    fn all_passwords_encrypted(&self) -> bool {
        UnixHost::all_passwords_encrypted(self)
    }

    fn kernel_param(&self, key: &str) -> Option<&str> {
        UnixHost::kernel_param(self, key)
    }
}

impl HostWrite for UnixHost {
    fn install_package(&mut self, name: &str, version: &str) {
        UnixHost::install_package(self, name, version);
    }

    fn remove_package(&mut self, name: &str) -> bool {
        UnixHost::remove_package(self, name)
    }

    fn set_service(&mut self, name: &str, state: ServiceState) {
        UnixHost::set_service(self, name, state);
    }

    fn enable_service(&mut self, name: &str) {
        UnixHost::enable_service(self, name);
    }

    fn disable_service(&mut self, name: &str) -> bool {
        UnixHost::disable_service(self, name)
    }

    fn write_directive(&mut self, path: &str, key: &str, value: &str) {
        UnixHost::write_directive(self, path, key, value);
    }

    fn remove_directive(&mut self, path: &str, key: &str) -> bool {
        UnixHost::remove_directive(self, path, key)
    }

    fn set_file_mode(&mut self, path: &str, mode: FileMode) {
        UnixHost::set_file_mode(self, path, mode);
    }

    fn add_account(&mut self, name: &str, uid: u32, locked: bool, password_encrypted: bool) {
        UnixHost::add_account(self, name, uid, locked, password_encrypted);
    }

    fn corrupt_password_storage(&mut self, name: &str) -> bool {
        UnixHost::corrupt_password_storage(self, name)
    }

    fn encrypt_all_passwords(&mut self) {
        UnixHost::encrypt_all_passwords(self);
    }

    fn set_kernel_param(&mut self, key: &str, value: &str) {
        UnixHost::set_kernel_param(self, key, value);
    }
}

impl HostRead for WindowsHost {
    fn platform(&self) -> Platform {
        Platform::Windows
    }

    fn audit_setting(&self, category: &str, subcategory: &str) -> AuditSetting {
        self.audit_policy().get(category, subcategory)
    }

    fn registry_value(&self, key: &str, name: &str) -> Option<RegistryValue> {
        WindowsHost::registry_value(self, key, name).cloned()
    }

    fn lockout_threshold(&self) -> u32 {
        WindowsHost::lockout_threshold(self)
    }

    fn lockout_duration_minutes(&self) -> u32 {
        WindowsHost::lockout_duration_minutes(self)
    }
}

impl HostWrite for WindowsHost {
    fn set_audit(&mut self, category: &str, subcategory: &str, setting: AuditSetting) {
        self.audit_policy_mut().set(category, subcategory, setting);
    }

    fn set_registry_value(&mut self, key: &str, name: &str, value: RegistryValue) {
        WindowsHost::set_registry_value(self, key, name, value);
    }

    fn set_lockout_threshold(&mut self, attempts: u32) {
        WindowsHost::set_lockout_threshold(self, attempts);
    }

    fn set_lockout_duration_minutes(&mut self, minutes: u32) {
        WindowsHost::set_lockout_duration_minutes(self, minutes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_probe<H: HostRead>(h: &H) -> (bool, bool, u32) {
        (
            h.is_package_installed("openssh-server"),
            h.all_passwords_encrypted(),
            h.lockout_threshold(),
        )
    }

    #[test]
    fn unix_host_answers_unix_queries_and_defaults_windows_ones() {
        let h = UnixHost::baseline_ubuntu_1804();
        let (ssh, encrypted, lockout) = read_probe(&h);
        assert!(ssh);
        assert!(encrypted);
        assert_eq!(lockout, 0, "windows query on unix host defaults to 0");
        assert_eq!(h.platform(), Platform::Unix);
        assert_eq!(
            HostRead::audit_setting(&h, "Logon/Logoff", "Logon"),
            AuditSetting::NONE
        );
    }

    #[test]
    fn windows_host_answers_windows_queries_and_defaults_unix_ones() {
        let h = WindowsHost::baseline_win10();
        let (ssh, encrypted, _) = read_probe(&h);
        assert!(!ssh, "unix query on windows host defaults to absent");
        assert!(encrypted, "vacuously true without accounts");
        assert_eq!(h.platform(), Platform::Windows);
        assert_eq!(
            HostRead::audit_setting(&h, "Logon/Logoff", "Logon"),
            AuditSetting::SUCCESS
        );
        assert!(HostRead::registry_value(
            &h,
            r"HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Policies\System",
            "EnableLUA"
        )
        .is_some());
    }

    #[test]
    fn off_platform_writes_are_ignored() {
        let mut h = WindowsHost::baseline_win10();
        let before = h.clone();
        HostWrite::install_package(&mut h, "nis", "3.17");
        HostWrite::write_directive(&mut h, "/etc/ssh/sshd_config", "Protocol", "1");
        assert!(!HostWrite::remove_package(&mut h, "sudo"));
        assert_eq!(h, before, "unix writes must not disturb a windows host");

        let mut u = UnixHost::baseline_ubuntu_1804();
        let before = u.clone();
        HostWrite::set_lockout_threshold(&mut u, 3);
        HostWrite::set_audit(&mut u, "Logon/Logoff", "Logon", AuditSetting::BOTH);
        assert_eq!(u, before, "windows writes must not disturb a unix host");
    }

    #[test]
    fn default_enable_disable_route_through_set_service() {
        let mut h = UnixHost::new("t");
        HostWrite::enable_service(&mut h, "sshd");
        assert!(HostRead::service(&h, "sshd").unwrap().enabled);
        assert!(HostWrite::disable_service(&mut h, "sshd"));
        assert!(!HostRead::service(&h, "sshd").unwrap().enabled);
        assert!(!HostWrite::disable_service(&mut h, "ghost"));
    }

    #[test]
    fn platform_displays() {
        assert_eq!(Platform::Unix.to_string(), "unix");
        assert_eq!(Platform::Windows.to_string(), "windows");
    }
}
