//! Simulated Unix (Ubuntu-like) host.
//!
//! Models the slices of a Debian-family system that the Ubuntu 18.04 STIG
//! requirements in `vdo-stigs` touch: the dpkg package database, systemd
//! services, directive-style configuration files (`sshd_config`,
//! `login.defs`, PAM), file permission bits, and local user accounts.

use std::collections::BTreeMap;
use std::fmt;

/// Installation state of one package in the simulated dpkg database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageState {
    /// Version string as dpkg would report it.
    pub version: String,
    /// `true` if the package is installed (`ii`), `false` if removed but
    /// config files remain (`rc`).
    pub installed: bool,
}

/// State of one systemd-style service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceState {
    /// Enabled at boot.
    pub enabled: bool,
    /// Currently running.
    pub active: bool,
}

/// Unix permission bits (the low 12 bits of `st_mode`).
///
/// ```
/// use vdo_host::FileMode;
/// let m = FileMode::new(0o640);
/// assert!(m.group_readable());
/// assert!(!m.world_readable());
/// assert_eq!(m.to_string(), "0640");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileMode(u16);

impl FileMode {
    /// Wraps an octal mode. Bits above 0o7777 are masked off.
    #[must_use]
    pub fn new(mode: u16) -> Self {
        FileMode(mode & 0o7777)
    }

    /// The raw bits.
    #[must_use]
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Owner-read bit set.
    #[must_use]
    pub fn owner_readable(self) -> bool {
        self.0 & 0o400 != 0
    }

    /// Group-read bit set.
    #[must_use]
    pub fn group_readable(self) -> bool {
        self.0 & 0o040 != 0
    }

    /// World-read bit set.
    #[must_use]
    pub fn world_readable(self) -> bool {
        self.0 & 0o004 != 0
    }

    /// World-write bit set.
    #[must_use]
    pub fn world_writable(self) -> bool {
        self.0 & 0o002 != 0
    }

    /// `true` iff no permission bit outside `max` is set — the STIG
    /// "mode must be NNN or more restrictive" test.
    #[must_use]
    pub fn at_most(self, max: FileMode) -> bool {
        self.0 & !max.0 == 0
    }
}

impl fmt::Display for FileMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04o}", self.0)
    }
}

/// A directive-style configuration file: ordered `key value` pairs with
/// last-one-wins lookup, the way sshd and login.defs behave.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct ConfigFile {
    directives: Vec<(String, String)>,
    mode: Option<FileMode>,
    owner: Option<String>,
}

/// A local user account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Account {
    pub name: String,
    pub uid: u32,
    pub locked: bool,
    pub password_encrypted: bool,
}

/// In-memory simulation of an Ubuntu-like host.
///
/// All lookups are deterministic; no global state, no I/O. See the crate
/// docs for why this substitutes for a real machine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnixHost {
    hostname: String,
    packages: BTreeMap<String, PackageState>,
    services: BTreeMap<String, ServiceState>,
    files: BTreeMap<String, ConfigFile>,
    accounts: BTreeMap<String, Account>,
    kernel_params: BTreeMap<String, String>,
}

impl UnixHost {
    /// Creates an empty host with the given hostname.
    #[must_use]
    pub fn new(hostname: impl Into<String>) -> Self {
        UnixHost {
            hostname: hostname.into(),
            ..UnixHost::default()
        }
    }

    /// A host resembling a stock Ubuntu 18.04 server install: OpenSSH
    /// present, no hardening applied. This is the canonical *non-yet-
    /// compliant* starting point for the STIG experiments.
    #[must_use]
    pub fn baseline_ubuntu_1804() -> Self {
        let mut h = UnixHost::new("ubuntu-1804");
        for (pkg, ver) in [
            ("openssh-server", "7.6p1"),
            ("openssh-client", "7.6p1"),
            ("sudo", "1.8.21"),
            ("systemd", "237"),
            ("libpam-modules", "1.1.8"),
            ("vlock", "2.2.2"),
            ("telnetd", "0.17"), // STIG violation: must be removed
        ] {
            h.install_package(pkg, ver);
        }
        h.set_service(
            "sshd",
            ServiceState {
                enabled: true,
                active: true,
            },
        );
        h.set_service(
            "rsyslog",
            ServiceState {
                enabled: true,
                active: true,
            },
        );
        h.write_directive("/etc/ssh/sshd_config", "PermitEmptyPasswords", "yes");
        h.write_directive("/etc/ssh/sshd_config", "Protocol", "2");
        h.write_directive("/etc/ssh/sshd_config", "ClientAliveInterval", "900");
        h.write_directive("/etc/login.defs", "ENCRYPT_METHOD", "MD5");
        h.write_directive("/etc/login.defs", "PASS_MAX_DAYS", "99999");
        h.set_file_mode("/etc/shadow", FileMode::new(0o644)); // violation
        h.set_file_mode("/var/log", FileMode::new(0o755));
        h.add_account("root", 0, false, true);
        h.add_account("admin", 1000, false, true);
        h.set_kernel_param("kernel.dmesg_restrict", "0");
        h
    }

    /// Hostname of the simulated machine.
    #[must_use]
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    // ---- package database ------------------------------------------------

    /// Installs (or upgrades) a package.
    pub fn install_package(&mut self, name: impl Into<String>, version: impl Into<String>) {
        self.packages.insert(
            name.into(),
            PackageState {
                version: version.into(),
                installed: true,
            },
        );
    }

    /// Removes a package (config files remain, as with `apt-get remove`).
    /// Returns `true` if the package was installed.
    pub fn remove_package(&mut self, name: &str) -> bool {
        match self.packages.get_mut(name) {
            Some(p) if p.installed => {
                p.installed = false;
                true
            }
            _ => false,
        }
    }

    /// `true` iff the package is currently installed.
    #[must_use]
    pub fn is_package_installed(&self, name: &str) -> bool {
        self.packages.get(name).is_some_and(|p| p.installed)
    }

    /// Installed version, if the package is installed.
    #[must_use]
    pub fn package_version(&self, name: &str) -> Option<&str> {
        self.packages
            .get(name)
            .filter(|p| p.installed)
            .map(|p| p.version.as_str())
    }

    /// Iterates over installed package names.
    pub fn installed_packages(&self) -> impl Iterator<Item = &str> {
        self.packages
            .iter()
            .filter(|(_, p)| p.installed)
            .map(|(n, _)| n.as_str())
    }

    // ---- services ----------------------------------------------------------

    /// Sets the full state of a service (creating it if unknown).
    pub fn set_service(&mut self, name: impl Into<String>, state: ServiceState) {
        self.services.insert(name.into(), state);
    }

    /// Current state of a service; `None` if the unit does not exist.
    #[must_use]
    pub fn service(&self, name: &str) -> Option<ServiceState> {
        self.services.get(name).copied()
    }

    /// Enables and starts a service. Creates the unit if missing.
    pub fn enable_service(&mut self, name: &str) {
        self.services.insert(
            name.to_string(),
            ServiceState {
                enabled: true,
                active: true,
            },
        );
    }

    /// Disables and stops a service. Returns `true` if the unit existed.
    pub fn disable_service(&mut self, name: &str) -> bool {
        match self.services.get_mut(name) {
            Some(s) => {
                s.enabled = false;
                s.active = false;
                true
            }
            None => false,
        }
    }

    // ---- configuration files -----------------------------------------------

    /// Appends or replaces a `key value` directive in a config file,
    /// creating the file if needed. Keys are case-insensitive, matching
    /// sshd behaviour.
    pub fn write_directive(
        &mut self,
        path: impl Into<String>,
        key: impl Into<String>,
        value: impl Into<String>,
    ) {
        let key = key.into();
        let value = value.into();
        let file = self.files.entry(path.into()).or_default();
        let lk = key.to_ascii_lowercase();
        if let Some(slot) = file
            .directives
            .iter_mut()
            .find(|(k, _)| k.to_ascii_lowercase() == lk)
        {
            slot.1 = value;
        } else {
            file.directives.push((key, value));
        }
    }

    /// Effective value of a directive (`None` if the file or key is
    /// absent). Case-insensitive on the key.
    #[must_use]
    pub fn directive(&self, path: &str, key: &str) -> Option<&str> {
        let lk = key.to_ascii_lowercase();
        self.files
            .get(path)?
            .directives
            .iter()
            .rev()
            .find_map(|(k, v)| (k.to_ascii_lowercase() == lk).then_some(v.as_str()))
    }

    /// Removes a directive; returns `true` if it existed.
    pub fn remove_directive(&mut self, path: &str, key: &str) -> bool {
        let lk = key.to_ascii_lowercase();
        match self.files.get_mut(path) {
            Some(f) => {
                let before = f.directives.len();
                f.directives.retain(|(k, _)| k.to_ascii_lowercase() != lk);
                f.directives.len() != before
            }
            None => false,
        }
    }

    /// `true` iff the file exists in the simulation.
    #[must_use]
    pub fn file_exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    // ---- file modes ----------------------------------------------------------

    /// Sets the permission bits of a path (creating the file record).
    pub fn set_file_mode(&mut self, path: impl Into<String>, mode: FileMode) {
        self.files.entry(path.into()).or_default().mode = Some(mode);
    }

    /// Permission bits of a path, if recorded.
    #[must_use]
    pub fn file_mode(&self, path: &str) -> Option<FileMode> {
        self.files.get(path)?.mode
    }

    // ---- accounts -------------------------------------------------------------

    /// Adds (or replaces) a local account.
    pub fn add_account(&mut self, name: &str, uid: u32, locked: bool, password_encrypted: bool) {
        self.accounts.insert(
            name.to_string(),
            Account {
                name: name.to_string(),
                uid,
                locked,
                password_encrypted,
            },
        );
    }

    /// `true` iff the account exists.
    #[must_use]
    pub fn has_account(&self, name: &str) -> bool {
        self.accounts.contains_key(name)
    }

    /// `true` iff every account stores its password encrypted (shadow
    /// suite behaviour) — queried by STIG V-219177.
    #[must_use]
    pub fn all_passwords_encrypted(&self) -> bool {
        self.accounts.values().all(|a| a.password_encrypted)
    }

    /// Marks one account's password as stored in clear text (drift /
    /// attack simulation). Returns `true` if the account exists.
    pub fn corrupt_password_storage(&mut self, name: &str) -> bool {
        match self.accounts.get_mut(name) {
            Some(a) => {
                a.password_encrypted = false;
                true
            }
            None => false,
        }
    }

    /// Re-encrypts every stored password (the fix action for V-219177).
    pub fn encrypt_all_passwords(&mut self) {
        for a in self.accounts.values_mut() {
            a.password_encrypted = true;
        }
    }

    // ---- kernel parameters ------------------------------------------------------

    /// Sets a sysctl-style kernel parameter.
    pub fn set_kernel_param(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.kernel_params.insert(key.into(), value.into());
    }

    /// Reads a kernel parameter.
    #[must_use]
    pub fn kernel_param(&self, key: &str) -> Option<&str> {
        self.kernel_params.get(key).map(String::as_str)
    }

    // ---- columnar-store support -------------------------------------------------

    /// The full package record — version and installed flag — including
    /// removed-but-recorded packages (the copy-on-write store reconciles
    /// writes against this).
    pub(crate) fn package_state(&self, name: &str) -> Option<(&str, bool)> {
        self.packages
            .get(name)
            .map(|p| (p.version.as_str(), p.installed))
    }

    /// One account record, if present.
    pub(crate) fn account(&self, name: &str) -> Option<&Account> {
        self.accounts.get(name)
    }

    /// All account records, name-ordered.
    pub(crate) fn accounts(&self) -> impl Iterator<Item = &Account> {
        self.accounts.values()
    }

    /// Coarse estimate of this host's heap footprint in bytes — string
    /// payloads plus per-entry map bookkeeping. Used to compare the
    /// owned-struct layout against the columnar fleet store.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        const ENTRY: usize = 48; // BTreeMap entry + String headers, amortized
        let mut bytes = std::mem::size_of::<UnixHost>() + self.hostname.len();
        for (name, p) in &self.packages {
            bytes += name.len() + p.version.len() + ENTRY;
        }
        for name in self.services.keys() {
            bytes += name.len() + ENTRY;
        }
        for (path, file) in &self.files {
            bytes += path.len() + ENTRY;
            for (k, v) in &file.directives {
                bytes += k.len() + v.len() + ENTRY;
            }
            bytes += file.owner.as_ref().map_or(0, String::len);
        }
        for (name, a) in &self.accounts {
            bytes += name.len() + a.name.len() + ENTRY;
        }
        for (k, v) in &self.kernel_params {
            bytes += k.len() + v.len() + ENTRY;
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_lifecycle() {
        let mut h = UnixHost::new("t");
        assert!(!h.is_package_installed("nis"));
        h.install_package("nis", "3.17");
        assert!(h.is_package_installed("nis"));
        assert_eq!(h.package_version("nis"), Some("3.17"));
        assert!(h.remove_package("nis"));
        assert!(!h.is_package_installed("nis"));
        assert_eq!(h.package_version("nis"), None);
        assert!(!h.remove_package("nis"), "second removal is a no-op");
    }

    #[test]
    fn installed_packages_iterates_only_installed() {
        let mut h = UnixHost::new("t");
        h.install_package("a", "1");
        h.install_package("b", "1");
        h.remove_package("a");
        assert_eq!(h.installed_packages().collect::<Vec<_>>(), vec!["b"]);
    }

    #[test]
    fn service_lifecycle() {
        let mut h = UnixHost::new("t");
        assert_eq!(h.service("sshd"), None);
        h.enable_service("sshd");
        assert_eq!(
            h.service("sshd"),
            Some(ServiceState {
                enabled: true,
                active: true
            })
        );
        assert!(h.disable_service("sshd"));
        let s = h.service("sshd").unwrap();
        assert!(!s.enabled && !s.active);
        assert!(!h.disable_service("ghost"));
    }

    #[test]
    fn directives_are_case_insensitive_and_last_wins() {
        let mut h = UnixHost::new("t");
        h.write_directive("/etc/ssh/sshd_config", "PermitRootLogin", "yes");
        assert_eq!(
            h.directive("/etc/ssh/sshd_config", "permitrootlogin"),
            Some("yes")
        );
        h.write_directive("/etc/ssh/sshd_config", "permitrootlogin", "no");
        assert_eq!(
            h.directive("/etc/ssh/sshd_config", "PermitRootLogin"),
            Some("no")
        );
        assert!(h.remove_directive("/etc/ssh/sshd_config", "PERMITROOTLOGIN"));
        assert_eq!(h.directive("/etc/ssh/sshd_config", "PermitRootLogin"), None);
    }

    #[test]
    fn missing_file_yields_none() {
        let mut h = UnixHost::new("t");
        assert_eq!(h.directive("/nope", "Key"), None);
        assert!(!h.file_exists("/nope"));
        assert_eq!(h.file_mode("/nope"), None);
        assert!(!h.remove_directive("/nope", "Key"));
    }

    #[test]
    fn file_modes() {
        let mut h = UnixHost::new("t");
        h.set_file_mode("/etc/shadow", FileMode::new(0o640));
        let m = h.file_mode("/etc/shadow").unwrap();
        assert!(m.at_most(FileMode::new(0o640)));
        assert!(!m.at_most(FileMode::new(0o600)));
        assert!(!m.world_readable());
        assert!(!m.world_writable());
    }

    #[test]
    fn mode_masks_high_bits() {
        assert_eq!(FileMode::new(0o777).bits(), 0o777);
        assert_eq!(FileMode::new(0o17777).bits(), 0o7777);
        let m = FileMode::new(0o640);
        assert!(m.owner_readable() && m.group_readable());
    }

    #[test]
    fn accounts_and_password_storage() {
        let mut h = UnixHost::new("t");
        h.add_account("alice", 1001, false, true);
        h.add_account("bob", 1002, false, true);
        assert!(h.all_passwords_encrypted());
        assert!(h.corrupt_password_storage("bob"));
        assert!(!h.all_passwords_encrypted());
        h.encrypt_all_passwords();
        assert!(h.all_passwords_encrypted());
        assert!(!h.corrupt_password_storage("carol"));
    }

    #[test]
    fn baseline_is_plausible_and_noncompliant() {
        let h = UnixHost::baseline_ubuntu_1804();
        assert!(h.is_package_installed("openssh-server"));
        assert!(
            h.is_package_installed("telnetd"),
            "baseline plants a violation"
        );
        assert_eq!(
            h.directive("/etc/ssh/sshd_config", "PermitEmptyPasswords"),
            Some("yes")
        );
        assert_eq!(h.file_mode("/etc/shadow"), Some(FileMode::new(0o644)));
        assert_eq!(h.kernel_param("kernel.dmesg_restrict"), Some("0"));
    }

    #[test]
    fn kernel_params() {
        let mut h = UnixHost::new("t");
        assert_eq!(h.kernel_param("fs.suid_dumpable"), None);
        h.set_kernel_param("fs.suid_dumpable", "0");
        assert_eq!(h.kernel_param("fs.suid_dumpable"), Some("0"));
    }
}
