//! # vdo-host — simulated hosting environments for requirement checking
//!
//! The VeriDevOps prototype checks and enforces STIG requirements against
//! *real* operating systems: `dpkg`/`apt` on Ubuntu 18.04 and
//! `auditpol.exe`/the registry on Windows 10. A laptop-scale reproduction
//! cannot (and should not) reconfigure real machines, so this crate
//! provides **deterministic in-memory simulations** of both host classes:
//!
//! * [`UnixHost`] — package database, system services, key/value
//!   configuration files (sshd-style directives), file modes, and user
//!   accounts;
//! * [`WindowsHost`] — the audit-policy table that `auditpol.exe` fronts,
//!   a registry hive, and account-lockout policy.
//!
//! Both expose exactly the query/mutate surface the STIG requirement
//! classes in `vdo-stigs` need, which preserves the paper's code path:
//! `check()` queries the host, `enforce()` mutates it, and the remediation
//! planner loops the two. [`drift`] adds seeded random configuration
//! drift (the "attacks/misconfigurations appear at operations time" part
//! of the VeriDevOps loop), and [`fleet`] stamps out host populations for
//! the compliance-at-scale experiments (E3).
//!
//! Three layers make the surface scale past per-host structs:
//!
//! * [`view`] — the platform-generic [`HostRead`] / [`HostWrite`] traits
//!   (plus the [`Platform`] enum) that checks, drift, and diffing are
//!   written against once, instead of per concrete host type;
//! * [`intern`] + [`columnar`] — string interning and key-major overlay
//!   tables, the storage primitives;
//! * [`store`] — [`FleetStore`], the copy-on-write columnar fleet:
//!   one shared baseline host plus per-host deltas, point lookups
//!   through [`store::HostView`], vectorized per-key sweeps, and an
//!   incremental dirty set for drift detection. A million-host fleet
//!   costs roughly one host plus total drift.
//!
//! ```
//! use vdo_host::UnixHost;
//!
//! let mut host = UnixHost::baseline_ubuntu_1804();
//! assert!(host.is_package_installed("openssh-server"));
//! host.install_package("nis", "3.17");          // drift: someone adds NIS
//! assert!(host.is_package_installed("nis"));
//! host.remove_package("nis");                   // enforcement removes it
//! assert!(!host.is_package_installed("nis"));
//! ```

pub mod columnar;
pub mod diff;
pub mod drift;
pub mod fleet;
pub mod intern;
pub mod store;
pub mod unix;
pub mod view;
pub mod windows;

pub use diff::{diff_hosts, diff_unix, HostDelta};
pub use drift::{DriftEvent, DriftInjector, DriftKind};
pub use fleet::{Fleet, FleetConfig, FleetConfigBuilder, FleetConfigError, HostMut, HostRef};
pub use intern::{Interner, Sym};
pub use store::{FleetStore, HostView, HostViewMut, MemoryProfile};
pub use unix::{FileMode, PackageState, ServiceState, UnixHost};
pub use view::{HostRead, HostWrite, Platform};
pub use windows::{AuditPolicy, AuditSetting, RegistryValue, WindowsHost};
