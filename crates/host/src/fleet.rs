//! Host fleets for compliance-at-scale experiments.
//!
//! Experiment E3 sweeps the check/enforce loop over populations of hosts
//! with varying drift intensity. [`Fleet`] stamps out `n` baseline hosts,
//! drifts each with an independent (but seed-derived) event budget, and
//! hands them to the planner.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::drift::DriftInjector;
use crate::unix::UnixHost;
use crate::windows::WindowsHost;

/// Parameters for generating a fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of hosts.
    pub size: usize,
    /// Probability that a host has drifted at all.
    pub drift_probability: f64,
    /// Drift events applied to each drifted host.
    pub drift_events_per_host: usize,
    /// Master seed; per-host seeds derive from it.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            size: 10,
            drift_probability: 0.5,
            drift_events_per_host: 3,
            seed: 0,
        }
    }
}

/// A generated population of simulated hosts.
#[derive(Debug, Clone)]
pub struct Fleet {
    unix: Vec<UnixHost>,
    windows: Vec<WindowsHost>,
    drifted: usize,
}

impl Fleet {
    /// Generates a fleet of Ubuntu 18.04 baseline hosts per `config`.
    #[must_use]
    pub fn unix_fleet(config: &FleetConfig) -> Fleet {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut unix = Vec::with_capacity(config.size);
        let mut drifted = 0;
        for i in 0..config.size {
            let mut host = UnixHost::baseline_ubuntu_1804();
            if rng.gen_bool(config.drift_probability) {
                let mut inj = DriftInjector::new(config.seed.wrapping_add(i as u64 + 1));
                inj.drift_unix(&mut host, config.drift_events_per_host);
                drifted += 1;
            }
            unix.push(host);
        }
        Fleet {
            unix,
            windows: Vec::new(),
            drifted,
        }
    }

    /// Generates a fleet of Windows 10 baseline hosts per `config`.
    #[must_use]
    pub fn windows_fleet(config: &FleetConfig) -> Fleet {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut windows = Vec::with_capacity(config.size);
        let mut drifted = 0;
        for i in 0..config.size {
            let mut host = WindowsHost::baseline_win10();
            if rng.gen_bool(config.drift_probability) {
                let mut inj = DriftInjector::new(config.seed.wrapping_add(i as u64 + 1));
                inj.drift_windows(&mut host, config.drift_events_per_host);
                drifted += 1;
            }
            windows.push(host);
        }
        Fleet {
            unix: Vec::new(),
            windows,
            drifted,
        }
    }

    /// The Unix hosts (empty for a Windows fleet).
    #[must_use]
    pub fn unix_hosts(&self) -> &[UnixHost] {
        &self.unix
    }

    /// Mutable access to the Unix hosts.
    pub fn unix_hosts_mut(&mut self) -> &mut [UnixHost] {
        &mut self.unix
    }

    /// The Windows hosts (empty for a Unix fleet).
    #[must_use]
    pub fn windows_hosts(&self) -> &[WindowsHost] {
        &self.windows
    }

    /// Mutable access to the Windows hosts.
    pub fn windows_hosts_mut(&mut self) -> &mut [WindowsHost] {
        &mut self.windows
    }

    /// How many hosts received drift during generation.
    #[must_use]
    pub fn drifted_count(&self) -> usize {
        self.drifted
    }

    /// Total host count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.unix.len() + self.windows.len()
    }

    /// `true` iff the fleet has no hosts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unix_fleet_respects_size_and_determinism() {
        let cfg = FleetConfig {
            size: 20,
            seed: 9,
            ..FleetConfig::default()
        };
        let a = Fleet::unix_fleet(&cfg);
        let b = Fleet::unix_fleet(&cfg);
        assert_eq!(a.len(), 20);
        assert_eq!(a.unix_hosts(), b.unix_hosts());
        assert_eq!(a.drifted_count(), b.drifted_count());
    }

    #[test]
    fn zero_probability_means_pristine() {
        let cfg = FleetConfig {
            size: 5,
            drift_probability: 0.0,
            ..FleetConfig::default()
        };
        let f = Fleet::unix_fleet(&cfg);
        assert_eq!(f.drifted_count(), 0);
        let baseline = UnixHost::baseline_ubuntu_1804();
        assert!(f.unix_hosts().iter().all(|h| *h == baseline));
    }

    #[test]
    fn full_probability_drifts_everyone() {
        let cfg = FleetConfig {
            size: 8,
            drift_probability: 1.0,
            ..FleetConfig::default()
        };
        let f = Fleet::unix_fleet(&cfg);
        assert_eq!(f.drifted_count(), 8);
    }

    #[test]
    fn windows_fleet_generates() {
        let cfg = FleetConfig {
            size: 6,
            drift_probability: 1.0,
            ..FleetConfig::default()
        };
        let f = Fleet::windows_fleet(&cfg);
        assert_eq!(f.windows_hosts().len(), 6);
        assert!(f.unix_hosts().is_empty());
        assert!(!f.is_empty());
    }
}
