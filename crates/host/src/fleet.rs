//! Host fleets for compliance-at-scale experiments.
//!
//! Experiment E3 sweeps the check/enforce loop over populations of hosts
//! with varying drift intensity. [`Fleet`] stamps out `n` baseline hosts
//! for the configured [`Platform`], drifts each with an independent (but
//! seed-derived) event budget, and hands them to the planner.
//!
//! This is the owned-struct representation — every host materialized as
//! its own [`UnixHost`] / [`WindowsHost`]. For fleets beyond a few
//! thousand hosts use [`FleetStore`](crate::FleetStore), which shares
//! the baseline copy-on-write and is observationally equivalent for
//! equal configs (the equivalence property tests pin this).
//!
//! ```
//! use vdo_host::{Fleet, FleetConfig, HostRead, Platform};
//!
//! let config = FleetConfig::builder()
//!     .size(12)
//!     .drift_probability(0.5)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let fleet = Fleet::generate(&config);
//! assert_eq!(fleet.len(), 12);
//! assert!(fleet.hosts().all(|h| h.platform() == Platform::Unix));
//! ```

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::drift::DriftInjector;
use crate::unix::UnixHost;
use crate::view::{HostRead, Platform};
use crate::windows::WindowsHost;

/// Parameters for generating a fleet.
///
/// Construct via [`FleetConfig::builder`] to get validation; the fields
/// stay public for struct-update syntax in tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of hosts.
    pub size: usize,
    /// Probability that a host has drifted at all.
    pub drift_probability: f64,
    /// Drift events applied to each drifted host.
    pub drift_events_per_host: usize,
    /// Master seed; per-host seeds derive from it.
    pub seed: u64,
    /// Operating system the fleet simulates.
    pub platform: Platform,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            size: 10,
            drift_probability: 0.5,
            drift_events_per_host: 3,
            seed: 0,
            platform: Platform::Unix,
        }
    }
}

impl FleetConfig {
    /// Starts a validating builder seeded with the defaults.
    #[must_use]
    pub fn builder() -> FleetConfigBuilder {
        FleetConfigBuilder {
            config: FleetConfig::default(),
        }
    }
}

/// A rejected [`FleetConfigBuilder`] field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetConfigError {
    /// A probability field fell outside `[0, 1]`.
    RateOutOfRange(&'static str, f64),
    /// A count field that must be positive was zero.
    Zero(&'static str),
}

impl fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetConfigError::RateOutOfRange(field, v) => {
                write!(f, "{field} must be within [0, 1], got {v}")
            }
            FleetConfigError::Zero(field) => write!(f, "{field} must be positive"),
        }
    }
}

impl std::error::Error for FleetConfigError {}

/// Builder for [`FleetConfig`] following the `PipelineConfig` /
/// `OpsConfig` convention: chain setters, then [`build`] validates.
///
/// [`build`]: FleetConfigBuilder::build
#[derive(Debug, Clone)]
pub struct FleetConfigBuilder {
    config: FleetConfig,
}

impl FleetConfigBuilder {
    /// Number of hosts (must be positive).
    #[must_use]
    pub fn size(mut self, size: usize) -> Self {
        self.config.size = size;
        self
    }

    /// Probability that a host has drifted at all (must be in `[0, 1]`).
    #[must_use]
    pub fn drift_probability(mut self, p: f64) -> Self {
        self.config.drift_probability = p;
        self
    }

    /// Drift events applied to each drifted host.
    #[must_use]
    pub fn drift_events_per_host(mut self, n: usize) -> Self {
        self.config.drift_events_per_host = n;
        self
    }

    /// Master seed; per-host seeds derive from it.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Operating system the fleet simulates.
    #[must_use]
    pub fn platform(mut self, platform: Platform) -> Self {
        self.config.platform = platform;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FleetConfigError`] if `size == 0` or
    /// `drift_probability` is outside `[0, 1]` (NaN included).
    pub fn build(self) -> Result<FleetConfig, FleetConfigError> {
        let c = self.config;
        if c.size == 0 {
            return Err(FleetConfigError::Zero("size"));
        }
        if !(0.0..=1.0).contains(&c.drift_probability) {
            return Err(FleetConfigError::RateOutOfRange(
                "drift_probability",
                c.drift_probability,
            ));
        }
        Ok(c)
    }
}

/// A generated population of simulated hosts.
#[derive(Debug, Clone)]
pub struct Fleet {
    platform: Platform,
    unix: Vec<UnixHost>,
    windows: Vec<WindowsHost>,
    drifted: usize,
}

/// Read-only reference to one fleet host, platform-erased. Use the
/// [`HostRead`] trait for cross-platform queries, or [`as_unix`] /
/// [`as_windows`] when a concrete type is required (e.g. a typed STIG
/// catalog).
///
/// [`as_unix`]: HostRef::as_unix
/// [`as_windows`]: HostRef::as_windows
#[derive(Debug, Clone, Copy)]
pub enum HostRef<'a> {
    /// A Unix host.
    Unix(&'a UnixHost),
    /// A Windows host.
    Windows(&'a WindowsHost),
}

impl<'a> HostRef<'a> {
    /// The concrete Unix host, if this is one.
    #[must_use]
    pub fn as_unix(self) -> Option<&'a UnixHost> {
        match self {
            HostRef::Unix(h) => Some(h),
            HostRef::Windows(_) => None,
        }
    }

    /// The concrete Windows host, if this is one.
    #[must_use]
    pub fn as_windows(self) -> Option<&'a WindowsHost> {
        match self {
            HostRef::Windows(h) => Some(h),
            HostRef::Unix(_) => None,
        }
    }
}

/// Mutable reference to one fleet host, platform-erased.
#[derive(Debug)]
pub enum HostMut<'a> {
    /// A Unix host.
    Unix(&'a mut UnixHost),
    /// A Windows host.
    Windows(&'a mut WindowsHost),
}

impl<'a> HostMut<'a> {
    /// The concrete mutable Unix host, if this is one.
    #[must_use]
    pub fn into_unix_mut(self) -> Option<&'a mut UnixHost> {
        match self {
            HostMut::Unix(h) => Some(h),
            HostMut::Windows(_) => None,
        }
    }

    /// The concrete mutable Windows host, if this is one.
    #[must_use]
    pub fn into_windows_mut(self) -> Option<&'a mut WindowsHost> {
        match self {
            HostMut::Windows(h) => Some(h),
            HostMut::Unix(_) => None,
        }
    }
}

macro_rules! delegate_host_read {
    ($ty:ty, $unix:pat => $uh:expr, $win:pat => $wh:expr) => {
        impl HostRead for $ty {
            fn platform(&self) -> Platform {
                match self {
                    $unix => HostRead::platform($uh),
                    $win => HostRead::platform($wh),
                }
            }

            fn is_package_installed(&self, name: &str) -> bool {
                match self {
                    $unix => HostRead::is_package_installed($uh, name),
                    $win => HostRead::is_package_installed($wh, name),
                }
            }

            fn package_version(&self, name: &str) -> Option<&str> {
                match self {
                    $unix => HostRead::package_version($uh, name),
                    $win => HostRead::package_version($wh, name),
                }
            }

            fn installed_package_names(&self) -> Vec<String> {
                match self {
                    $unix => HostRead::installed_package_names($uh),
                    $win => HostRead::installed_package_names($wh),
                }
            }

            fn service(&self, name: &str) -> Option<crate::unix::ServiceState> {
                match self {
                    $unix => HostRead::service($uh, name),
                    $win => HostRead::service($wh, name),
                }
            }

            fn directive(&self, path: &str, key: &str) -> Option<&str> {
                match self {
                    $unix => HostRead::directive($uh, path, key),
                    $win => HostRead::directive($wh, path, key),
                }
            }

            fn file_mode(&self, path: &str) -> Option<crate::unix::FileMode> {
                match self {
                    $unix => HostRead::file_mode($uh, path),
                    $win => HostRead::file_mode($wh, path),
                }
            }

            fn has_account(&self, name: &str) -> bool {
                match self {
                    $unix => HostRead::has_account($uh, name),
                    $win => HostRead::has_account($wh, name),
                }
            }

            fn all_passwords_encrypted(&self) -> bool {
                match self {
                    $unix => HostRead::all_passwords_encrypted($uh),
                    $win => HostRead::all_passwords_encrypted($wh),
                }
            }

            fn kernel_param(&self, key: &str) -> Option<&str> {
                match self {
                    $unix => HostRead::kernel_param($uh, key),
                    $win => HostRead::kernel_param($wh, key),
                }
            }

            fn audit_setting(
                &self,
                category: &str,
                subcategory: &str,
            ) -> crate::windows::AuditSetting {
                match self {
                    $unix => HostRead::audit_setting($uh, category, subcategory),
                    $win => HostRead::audit_setting($wh, category, subcategory),
                }
            }

            fn registry_value(
                &self,
                key: &str,
                name: &str,
            ) -> Option<crate::windows::RegistryValue> {
                match self {
                    $unix => HostRead::registry_value($uh, key, name),
                    $win => HostRead::registry_value($wh, key, name),
                }
            }

            fn lockout_threshold(&self) -> u32 {
                match self {
                    $unix => HostRead::lockout_threshold($uh),
                    $win => HostRead::lockout_threshold($wh),
                }
            }

            fn lockout_duration_minutes(&self) -> u32 {
                match self {
                    $unix => HostRead::lockout_duration_minutes($uh),
                    $win => HostRead::lockout_duration_minutes($wh),
                }
            }
        }
    };
}

delegate_host_read!(HostRef<'_>, HostRef::Unix(h) => *h, HostRef::Windows(h) => *h);
delegate_host_read!(HostMut<'_>, HostMut::Unix(h) => &**h, HostMut::Windows(h) => &**h);

impl crate::view::HostWrite for HostMut<'_> {
    fn install_package(&mut self, name: &str, version: &str) {
        if let HostMut::Unix(h) = self {
            crate::view::HostWrite::install_package(*h, name, version);
        }
    }

    fn remove_package(&mut self, name: &str) -> bool {
        match self {
            HostMut::Unix(h) => crate::view::HostWrite::remove_package(*h, name),
            HostMut::Windows(_) => false,
        }
    }

    fn set_service(&mut self, name: &str, state: crate::unix::ServiceState) {
        if let HostMut::Unix(h) = self {
            crate::view::HostWrite::set_service(*h, name, state);
        }
    }

    fn write_directive(&mut self, path: &str, key: &str, value: &str) {
        if let HostMut::Unix(h) = self {
            crate::view::HostWrite::write_directive(*h, path, key, value);
        }
    }

    fn remove_directive(&mut self, path: &str, key: &str) -> bool {
        match self {
            HostMut::Unix(h) => crate::view::HostWrite::remove_directive(*h, path, key),
            HostMut::Windows(_) => false,
        }
    }

    fn set_file_mode(&mut self, path: &str, mode: crate::unix::FileMode) {
        if let HostMut::Unix(h) = self {
            crate::view::HostWrite::set_file_mode(*h, path, mode);
        }
    }

    fn add_account(&mut self, name: &str, uid: u32, locked: bool, password_encrypted: bool) {
        if let HostMut::Unix(h) = self {
            crate::view::HostWrite::add_account(*h, name, uid, locked, password_encrypted);
        }
    }

    fn corrupt_password_storage(&mut self, name: &str) -> bool {
        match self {
            HostMut::Unix(h) => crate::view::HostWrite::corrupt_password_storage(*h, name),
            HostMut::Windows(_) => false,
        }
    }

    fn encrypt_all_passwords(&mut self) {
        if let HostMut::Unix(h) = self {
            crate::view::HostWrite::encrypt_all_passwords(*h);
        }
    }

    fn set_kernel_param(&mut self, key: &str, value: &str) {
        if let HostMut::Unix(h) = self {
            crate::view::HostWrite::set_kernel_param(*h, key, value);
        }
    }

    fn set_audit(&mut self, category: &str, subcategory: &str, s: crate::windows::AuditSetting) {
        if let HostMut::Windows(h) = self {
            crate::view::HostWrite::set_audit(*h, category, subcategory, s);
        }
    }

    fn set_registry_value(&mut self, key: &str, name: &str, value: crate::windows::RegistryValue) {
        if let HostMut::Windows(h) = self {
            crate::view::HostWrite::set_registry_value(*h, key, name, value);
        }
    }

    fn set_lockout_threshold(&mut self, attempts: u32) {
        if let HostMut::Windows(h) = self {
            crate::view::HostWrite::set_lockout_threshold(*h, attempts);
        }
    }

    fn set_lockout_duration_minutes(&mut self, minutes: u32) {
        if let HostMut::Windows(h) = self {
            crate::view::HostWrite::set_lockout_duration_minutes(*h, minutes);
        }
    }
}

impl Fleet {
    /// Generates a fleet of baseline hosts for `config.platform`.
    #[must_use]
    pub fn generate(config: &FleetConfig) -> Fleet {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut unix = Vec::new();
        let mut windows = Vec::new();
        let mut drifted = 0;
        match config.platform {
            Platform::Unix => unix.reserve(config.size),
            Platform::Windows => windows.reserve(config.size),
        }
        for i in 0..config.size {
            let drift_this = rng.gen_bool(config.drift_probability);
            let mut inj =
                drift_this.then(|| DriftInjector::new(config.seed.wrapping_add(i as u64 + 1)));
            match config.platform {
                Platform::Unix => {
                    let mut host = UnixHost::baseline_ubuntu_1804();
                    if let Some(inj) = inj.as_mut() {
                        inj.drift(&mut host, Platform::Unix, config.drift_events_per_host);
                        drifted += 1;
                    }
                    unix.push(host);
                }
                Platform::Windows => {
                    let mut host = WindowsHost::baseline_win10();
                    if let Some(inj) = inj.as_mut() {
                        inj.drift(&mut host, Platform::Windows, config.drift_events_per_host);
                        drifted += 1;
                    }
                    windows.push(host);
                }
            }
        }
        Fleet {
            platform: config.platform,
            unix,
            windows,
            drifted,
        }
    }

    /// The platform this fleet simulates.
    #[must_use]
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// Iterates the fleet's hosts in generation order.
    pub fn hosts(&self) -> impl Iterator<Item = HostRef<'_>> {
        self.unix
            .iter()
            .map(HostRef::Unix)
            .chain(self.windows.iter().map(HostRef::Windows))
    }

    /// Iterates the fleet's hosts mutably in generation order.
    pub fn hosts_mut(&mut self) -> impl Iterator<Item = HostMut<'_>> {
        self.unix
            .iter_mut()
            .map(HostMut::Unix)
            .chain(self.windows.iter_mut().map(HostMut::Windows))
    }

    /// Generates a fleet of Ubuntu 18.04 baseline hosts per `config`
    /// (ignores `config.platform`).
    #[deprecated(note = "use `Fleet::generate` with `platform: Platform::Unix`")]
    #[must_use]
    pub fn unix_fleet(config: &FleetConfig) -> Fleet {
        Fleet::generate(&FleetConfig {
            platform: Platform::Unix,
            ..*config
        })
    }

    /// Generates a fleet of Windows 10 baseline hosts per `config`
    /// (ignores `config.platform`).
    #[deprecated(note = "use `Fleet::generate` with `platform: Platform::Windows`")]
    #[must_use]
    pub fn windows_fleet(config: &FleetConfig) -> Fleet {
        Fleet::generate(&FleetConfig {
            platform: Platform::Windows,
            ..*config
        })
    }

    /// The Unix hosts (empty for a Windows fleet).
    #[deprecated(note = "use `hosts()` and `HostRef::as_unix`")]
    #[must_use]
    pub fn unix_hosts(&self) -> &[UnixHost] {
        &self.unix
    }

    /// Mutable access to the Unix hosts.
    #[deprecated(note = "use `hosts_mut()` and `HostMut::into_unix_mut`")]
    pub fn unix_hosts_mut(&mut self) -> &mut [UnixHost] {
        &mut self.unix
    }

    /// The Windows hosts (empty for a Unix fleet).
    #[deprecated(note = "use `hosts()` and `HostRef::as_windows`")]
    #[must_use]
    pub fn windows_hosts(&self) -> &[WindowsHost] {
        &self.windows
    }

    /// Mutable access to the Windows hosts.
    #[deprecated(note = "use `hosts_mut()` and `HostMut::into_windows_mut`")]
    pub fn windows_hosts_mut(&mut self) -> &mut [WindowsHost] {
        &mut self.windows
    }

    /// The Unix hosts as a slice (crate-internal; external callers use
    /// [`hosts`](Fleet::hosts)).
    #[cfg(test)]
    pub(crate) fn unix_slice(&self) -> &[UnixHost] {
        &self.unix
    }

    /// How many hosts received drift during generation.
    #[must_use]
    pub fn drifted_count(&self) -> usize {
        self.drifted
    }

    /// Total host count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.unix.len() + self.windows.len()
    }

    /// `true` iff the fleet has no hosts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_respects_size_and_determinism() {
        let cfg = FleetConfig::builder().size(20).seed(9).build().unwrap();
        let a = Fleet::generate(&cfg);
        let b = Fleet::generate(&cfg);
        assert_eq!(a.len(), 20);
        assert_eq!(a.platform(), Platform::Unix);
        assert_eq!(a.unix_slice(), b.unix_slice());
        assert_eq!(a.drifted_count(), b.drifted_count());
    }

    #[test]
    fn zero_probability_means_pristine() {
        let cfg = FleetConfig::builder()
            .size(5)
            .drift_probability(0.0)
            .build()
            .unwrap();
        let f = Fleet::generate(&cfg);
        assert_eq!(f.drifted_count(), 0);
        let baseline = UnixHost::baseline_ubuntu_1804();
        assert!(f.unix_slice().iter().all(|h| *h == baseline));
    }

    #[test]
    fn full_probability_drifts_everyone() {
        let cfg = FleetConfig::builder()
            .size(8)
            .drift_probability(1.0)
            .build()
            .unwrap();
        let f = Fleet::generate(&cfg);
        assert_eq!(f.drifted_count(), 8);
    }

    #[test]
    fn windows_fleet_generates_via_platform() {
        let cfg = FleetConfig::builder()
            .size(6)
            .drift_probability(1.0)
            .platform(Platform::Windows)
            .build()
            .unwrap();
        let f = Fleet::generate(&cfg);
        assert_eq!(f.len(), 6);
        assert_eq!(f.platform(), Platform::Windows);
        assert!(f.hosts().all(|h| h.as_windows().is_some()));
        assert!(f.hosts().all(|h| h.as_unix().is_none()));
    }

    #[test]
    fn hosts_iterators_expose_every_host() {
        let cfg = FleetConfig::builder().size(4).seed(2).build().unwrap();
        let mut f = Fleet::generate(&cfg);
        assert_eq!(f.hosts().count(), 4);
        for mut h in f.hosts_mut() {
            use crate::view::HostWrite;
            h.install_package("marker-pkg", "1.0");
        }
        assert!(f.hosts().all(|h| h.is_package_installed("marker-pkg")));
    }

    #[test]
    fn builder_rejects_nonsense() {
        assert_eq!(
            FleetConfig::builder().size(0).build(),
            Err(FleetConfigError::Zero("size"))
        );
        assert!(matches!(
            FleetConfig::builder().drift_probability(1.5).build(),
            Err(FleetConfigError::RateOutOfRange("drift_probability", _))
        ));
        assert!(matches!(
            FleetConfig::builder().drift_probability(f64::NAN).build(),
            Err(FleetConfigError::RateOutOfRange("drift_probability", _))
        ));
        let ok = FleetConfig::builder()
            .size(3)
            .drift_probability(1.0)
            .drift_events_per_host(2)
            .seed(5)
            .build()
            .unwrap();
        assert_eq!(ok.size, 3);
        assert_eq!(ok.drift_events_per_host, 2);
        assert_eq!(ok.seed, 5);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_work() {
        let cfg = FleetConfig::builder().size(7).seed(3).build().unwrap();
        let old = Fleet::unix_fleet(&cfg);
        let new = Fleet::generate(&cfg);
        assert_eq!(old.unix_hosts(), new.unix_slice());
        let win = Fleet::windows_fleet(&cfg);
        assert_eq!(win.windows_hosts().len(), 7);
        assert!(win.unix_hosts().is_empty());
    }

    #[test]
    fn error_display_is_readable() {
        assert_eq!(
            FleetConfigError::Zero("size").to_string(),
            "size must be positive"
        );
        assert_eq!(
            FleetConfigError::RateOutOfRange("drift_probability", 2.0).to_string(),
            "drift_probability must be within [0, 1], got 2"
        );
    }
}
