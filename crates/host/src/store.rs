//! Copy-on-write columnar fleet storage — million-host fleets at
//! ~one-host cost.
//!
//! [`FleetStore`] holds **one** shared baseline host (the fleet-common
//! image) plus per-domain [`OverlayTable`]s recording only the values
//! that differ from that baseline, with every string interned to a
//! 4-byte [`Sym`]. A pristine host costs nothing beyond its slot; a
//! drifted host costs a handful of overlay entries. Total memory is
//! `O(baseline + total drift)` instead of `O(hosts × config keys)`.
//!
//! Hosts are accessed through [`HostView`] / [`HostViewMut`], which
//! implement the platform-generic [`HostRead`] / [`HostWrite`] traits:
//! every existing STIG check, drift injector, and differ runs
//! unmodified against a store-backed host. Writes reconcile against
//! the baseline — writing a value *back* to its baseline state drops
//! the overlay, so remediation shrinks the store again — and mark the
//! host in a **dirty set** that [`take_dirty`](FleetStore::take_dirty)
//! drains, making per-tick drift detection incremental instead of a
//! full rescan.
//!
//! ```
//! use vdo_host::{FleetConfig, FleetStore, HostRead, HostWrite, Platform};
//!
//! let config = FleetConfig::builder().size(1000).seed(7).build().unwrap();
//! let store = FleetStore::generate(&config);
//! assert_eq!(store.len(), 1000);
//! assert!(store.host(0).is_package_installed("openssh-server"));
//!
//! let mut store = store;
//! store.host_mut(3).install_package("nis", "3.17");
//! assert_eq!(store.take_dirty(), vec![3]);
//! ```

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::columnar::{OverlayTable, BTREE_ENTRY_OVERHEAD};
use crate::drift::DriftInjector;
use crate::fleet::FleetConfig;
use crate::intern::{Interner, Sym};
use crate::unix::{FileMode, ServiceState, UnixHost};
use crate::view::{HostRead, HostWrite, Platform};
use crate::windows::{AuditSetting, RegistryValue, WindowsHost};

/// One host's deviation from the baseline package record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PackageOverlay {
    version: Sym,
    installed: bool,
}

/// One host's deviation from a baseline account.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AccountOverlay {
    uid: u32,
    locked: bool,
    password_encrypted: bool,
}

/// Interned registry value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegistryOverlay {
    Dword(u32),
    Sz(Sym),
}

/// Host-major account overlay table: per-host iteration must be a
/// range scan (the encrypted-passwords check walks one host's
/// accounts), unlike the key-major tables where per-key host scans
/// dominate.
#[derive(Debug, Clone, Default)]
struct AccountTable {
    map: BTreeMap<(u32, Sym), AccountOverlay>,
}

impl AccountTable {
    fn get(&self, host: u32, name: Sym) -> Option<&AccountOverlay> {
        self.map.get(&(host, name))
    }

    fn set(&mut self, host: u32, name: Sym, v: AccountOverlay) {
        self.map.insert((host, name), v);
    }

    fn clear(&mut self, host: u32, name: Sym) -> bool {
        self.map.remove(&(host, name)).is_some()
    }

    fn for_host(&self, host: u32) -> impl Iterator<Item = (Sym, &AccountOverlay)> + '_ {
        self.map
            .range((host, Sym::MIN)..=(host, Sym::MAX))
            .map(|((_, s), v)| (*s, v))
    }

    fn hosts_any(&self) -> Vec<u32> {
        let mut hosts: Vec<u32> = self.map.keys().map(|(h, _)| *h).collect();
        hosts.dedup(); // host-major keys are already host-sorted
        hosts
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn approx_bytes(&self) -> usize {
        self.map.len()
            * (std::mem::size_of::<(u32, Sym)>()
                + std::mem::size_of::<AccountOverlay>()
                + BTREE_ENTRY_OVERHEAD)
    }
}

/// The shared fleet-common image.
#[derive(Debug, Clone)]
enum Baseline {
    Unix(UnixHost),
    Windows(WindowsHost),
}

/// Memory accounting for a [`FleetStore`], by component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryProfile {
    /// The one shared baseline host.
    pub baseline_bytes: usize,
    /// The string interner (delta vocabulary only).
    pub interner_bytes: usize,
    /// All overlay tables.
    pub overlay_bytes: usize,
    /// Total overlay entries across all domains.
    pub overlay_entries: usize,
    /// The pending dirty set.
    pub dirty_bytes: usize,
    /// Everything above.
    pub total_bytes: usize,
}

impl MemoryProfile {
    /// Amortized bytes per host for a fleet of `hosts`.
    #[must_use]
    pub fn bytes_per_host(&self, hosts: usize) -> f64 {
        if hosts == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.total_bytes as f64 / hosts as f64
            }
        }
    }
}

/// Columnar, copy-on-write storage for a fleet of simulated hosts.
/// See the module docs for the layout.
#[derive(Debug, Clone)]
pub struct FleetStore {
    config: FleetConfig,
    baseline: Baseline,
    interner: Interner,
    drifted: usize,
    packages: OverlayTable<Sym, PackageOverlay>,
    services: OverlayTable<Sym, ServiceState>,
    directives: OverlayTable<(Sym, Sym), Option<Sym>>,
    modes: OverlayTable<Sym, FileMode>,
    accounts: AccountTable,
    kernel: OverlayTable<Sym, Sym>,
    audit: OverlayTable<(Sym, Sym), AuditSetting>,
    registry: OverlayTable<(Sym, Sym), RegistryOverlay>,
    lockout: OverlayTable<(), (u32, u32)>,
    dirty: BTreeSet<u32>,
}

impl FleetStore {
    /// Creates a pristine store: `config.size` hosts, all sharing the
    /// platform baseline, no drift applied.
    ///
    /// # Panics
    ///
    /// Panics if `config.size` exceeds `u32::MAX` hosts.
    #[must_use]
    pub fn pristine(config: &FleetConfig) -> FleetStore {
        assert!(
            u32::try_from(config.size).is_ok(),
            "fleet size exceeds u32 host ids"
        );
        let baseline = match config.platform {
            Platform::Unix => Baseline::Unix(UnixHost::baseline_ubuntu_1804()),
            Platform::Windows => Baseline::Windows(WindowsHost::baseline_win10()),
        };
        FleetStore {
            config: *config,
            baseline,
            interner: Interner::new(),
            drifted: 0,
            packages: OverlayTable::new(),
            services: OverlayTable::new(),
            directives: OverlayTable::new(),
            modes: OverlayTable::new(),
            accounts: AccountTable::default(),
            kernel: OverlayTable::new(),
            audit: OverlayTable::new(),
            registry: OverlayTable::new(),
            lockout: OverlayTable::new(),
            dirty: BTreeSet::new(),
        }
    }

    /// Generates a fleet with the exact drift sequence of
    /// [`Fleet::generate`](crate::fleet::Fleet::generate): same master
    /// RNG, same per-host seed derivation, so equal configs produce
    /// observationally identical fleets in either representation (the
    /// equivalence property tests pin this).
    ///
    /// The dirty set is empty afterwards — generation drift is the
    /// *initial* state, not a change to detect.
    #[must_use]
    pub fn generate(config: &FleetConfig) -> FleetStore {
        let mut store = FleetStore::pristine(config);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut drifted = 0;
        for i in 0..config.size {
            if rng.gen_bool(config.drift_probability) {
                let mut inj = DriftInjector::new(config.seed.wrapping_add(i as u64 + 1));
                inj.drift(
                    &mut store.host_mut(i),
                    config.platform,
                    config.drift_events_per_host,
                );
                drifted += 1;
            }
        }
        store.drifted = drifted;
        store.dirty.clear();
        store
    }

    /// The generating configuration.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The fleet's platform.
    #[must_use]
    pub fn platform(&self) -> Platform {
        self.config.platform
    }

    /// Total host count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.config.size
    }

    /// `true` iff the fleet has no hosts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.config.size == 0
    }

    /// How many hosts received drift during generation.
    #[must_use]
    pub fn drifted_count(&self) -> usize {
        self.drifted
    }

    /// The shared baseline, if this is a Unix fleet.
    #[must_use]
    pub fn baseline_unix(&self) -> Option<&UnixHost> {
        match &self.baseline {
            Baseline::Unix(h) => Some(h),
            Baseline::Windows(_) => None,
        }
    }

    /// The shared baseline, if this is a Windows fleet.
    #[must_use]
    pub fn baseline_windows(&self) -> Option<&WindowsHost> {
        match &self.baseline {
            Baseline::Windows(h) => Some(h),
            Baseline::Unix(_) => None,
        }
    }

    /// Read view of one host.
    ///
    /// # Panics
    ///
    /// Panics if `host >= len()`.
    #[must_use]
    pub fn host(&self, host: usize) -> HostView<'_> {
        assert!(host < self.config.size, "host {host} out of range");
        HostView {
            store: self,
            host: host_id(host),
        }
    }

    /// Write view of one host; mutations mark it dirty.
    ///
    /// # Panics
    ///
    /// Panics if `host >= len()`.
    #[must_use]
    pub fn host_mut(&mut self, host: usize) -> HostViewMut<'_> {
        assert!(host < self.config.size, "host {host} out of range");
        HostViewMut {
            host: host_id(host),
            store: self,
        }
    }

    /// Hosts mutated since the last call, ascending; clears the set.
    pub fn take_dirty(&mut self) -> Vec<u32> {
        let dirty: Vec<u32> = self.dirty.iter().copied().collect();
        self.dirty.clear();
        dirty
    }

    /// Number of hosts currently marked dirty.
    #[must_use]
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    // ---- sweep support: which hosts deviate on a given key? ----------
    //
    // Each returns the ascending host ids holding an overlay that could
    // change the answer of a check reading that key. A name the
    // interner has never seen cannot have overlays.

    /// Hosts overriding the named package record.
    #[must_use]
    pub fn hosts_with_package_override(&self, name: &str) -> Vec<u32> {
        self.interner
            .get(name)
            .map(|s| self.packages.hosts_for(s).collect())
            .unwrap_or_default()
    }

    /// Hosts overriding the named service.
    #[must_use]
    pub fn hosts_with_service_override(&self, name: &str) -> Vec<u32> {
        self.interner
            .get(name)
            .map(|s| self.services.hosts_for(s).collect())
            .unwrap_or_default()
    }

    /// Hosts overriding a config directive (case-insensitive key).
    #[must_use]
    pub fn hosts_with_directive_override(&self, path: &str, key: &str) -> Vec<u32> {
        match (
            self.interner.get(path),
            self.interner.get(&key.to_ascii_lowercase()),
        ) {
            (Some(p), Some(k)) => self.directives.hosts_for((p, k)).collect(),
            _ => Vec::new(),
        }
    }

    /// Hosts overriding a path's permission bits.
    #[must_use]
    pub fn hosts_with_mode_override(&self, path: &str) -> Vec<u32> {
        self.interner
            .get(path)
            .map(|s| self.modes.hosts_for(s).collect())
            .unwrap_or_default()
    }

    /// Hosts with any account overlay (password-storage checks read
    /// the whole account set).
    #[must_use]
    pub fn hosts_with_account_overrides(&self) -> Vec<u32> {
        self.accounts.hosts_any()
    }

    /// Hosts overriding a kernel parameter.
    #[must_use]
    pub fn hosts_with_kernel_override(&self, key: &str) -> Vec<u32> {
        self.interner
            .get(key)
            .map(|s| self.kernel.hosts_for(s).collect())
            .unwrap_or_default()
    }

    /// Hosts overriding an audit subcategory.
    #[must_use]
    pub fn hosts_with_audit_override(&self, category: &str, subcategory: &str) -> Vec<u32> {
        match (self.interner.get(category), self.interner.get(subcategory)) {
            (Some(c), Some(s)) => self.audit.hosts_for((c, s)).collect(),
            _ => Vec::new(),
        }
    }

    /// Hosts overriding a registry value.
    #[must_use]
    pub fn hosts_with_registry_override(&self, key: &str, name: &str) -> Vec<u32> {
        match (self.interner.get(key), self.interner.get(name)) {
            (Some(k), Some(n)) => self.registry.hosts_for((k, n)).collect(),
            _ => Vec::new(),
        }
    }

    /// Hosts overriding the lockout policy.
    #[must_use]
    pub fn hosts_with_lockout_override(&self) -> Vec<u32> {
        self.lockout.hosts_for(()).collect()
    }

    /// Total overlay entries across all domains.
    #[must_use]
    pub fn overlay_entries(&self) -> usize {
        self.packages.len()
            + self.services.len()
            + self.directives.len()
            + self.modes.len()
            + self.accounts.len()
            + self.kernel.len()
            + self.audit.len()
            + self.registry.len()
            + self.lockout.len()
    }

    /// Coarse memory accounting; see [`MemoryProfile`].
    #[must_use]
    pub fn memory_profile(&self) -> MemoryProfile {
        let baseline_bytes = match &self.baseline {
            Baseline::Unix(h) => h.approx_bytes(),
            Baseline::Windows(h) => h.approx_bytes(),
        };
        let interner_bytes = self.interner.approx_bytes();
        let overlay_bytes = self.packages.approx_bytes()
            + self.services.approx_bytes()
            + self.directives.approx_bytes()
            + self.modes.approx_bytes()
            + self.accounts.approx_bytes()
            + self.kernel.approx_bytes()
            + self.audit.approx_bytes()
            + self.registry.approx_bytes()
            + self.lockout.approx_bytes();
        let dirty_bytes = self.dirty.len() * (4 + BTREE_ENTRY_OVERHEAD);
        MemoryProfile {
            baseline_bytes,
            interner_bytes,
            overlay_bytes,
            overlay_entries: self.overlay_entries(),
            dirty_bytes,
            total_bytes: baseline_bytes + interner_bytes + overlay_bytes + dirty_bytes,
        }
    }

    /// Reassembles one host as an owned legacy struct (tests and
    /// forensics; cost is proportional to the whole overlay store).
    ///
    /// # Panics
    ///
    /// Panics on a Windows fleet or `host >= len()`.
    #[must_use]
    pub fn materialize_unix(&self, host: usize) -> UnixHost {
        assert!(host < self.config.size, "host {host} out of range");
        let h = host_id(host);
        let Baseline::Unix(base) = &self.baseline else {
            panic!("materialize_unix on a windows fleet");
        };
        let mut out = base.clone();
        for (sym, ov) in self.packages.entries_for_host(h) {
            let name = self.interner.resolve(sym);
            out.install_package(name, self.interner.resolve(ov.version));
            if !ov.installed {
                out.remove_package(name);
            }
        }
        for (sym, state) in self.services.entries_for_host(h) {
            out.set_service(self.interner.resolve(sym), *state);
        }
        for ((p, k), v) in self.directives.entries_for_host(h) {
            let path = self.interner.resolve(p);
            let key = self.interner.resolve(k);
            match v {
                Some(vs) => out.write_directive(path, key, self.interner.resolve(*vs)),
                None => {
                    out.remove_directive(path, key);
                }
            }
        }
        for (sym, mode) in self.modes.entries_for_host(h) {
            out.set_file_mode(self.interner.resolve(sym), *mode);
        }
        for (sym, a) in self.accounts.for_host(h) {
            out.add_account(
                self.interner.resolve(sym),
                a.uid,
                a.locked,
                a.password_encrypted,
            );
        }
        for (sym, v) in self.kernel.entries_for_host(h) {
            out.set_kernel_param(self.interner.resolve(sym), self.interner.resolve(*v));
        }
        out
    }

    // ---- shared read path (both view types delegate here) ------------

    fn read_package(&self, host: u32, name: &str) -> Option<(&str, bool)> {
        if let Some(sym) = self.interner.get(name) {
            if let Some(ov) = self.packages.get(sym, host) {
                return Some((self.interner.resolve(ov.version), ov.installed));
            }
        }
        match &self.baseline {
            Baseline::Unix(b) => b.package_state(name),
            Baseline::Windows(_) => None,
        }
    }

    fn read_installed_package_names(&self, host: u32) -> Vec<String> {
        let Baseline::Unix(base) = &self.baseline else {
            return Vec::new();
        };
        let mut set: BTreeSet<String> = base.installed_packages().map(str::to_string).collect();
        for (sym, ov) in self.packages.entries_for_host(host) {
            let name = self.interner.resolve(sym);
            if ov.installed {
                set.insert(name.to_string());
            } else {
                set.remove(name);
            }
        }
        set.into_iter().collect()
    }

    fn read_service(&self, host: u32, name: &str) -> Option<ServiceState> {
        if let Some(sym) = self.interner.get(name) {
            if let Some(state) = self.services.get(sym, host) {
                return Some(*state);
            }
        }
        match &self.baseline {
            Baseline::Unix(b) => b.service(name),
            Baseline::Windows(_) => None,
        }
    }

    fn read_directive(&self, host: u32, path: &str, key: &str) -> Option<&str> {
        if let (Some(p), Some(k)) = (
            self.interner.get(path),
            self.interner.get(&key.to_ascii_lowercase()),
        ) {
            if let Some(v) = self.directives.get((p, k), host) {
                return v.map(|sym| self.interner.resolve(sym));
            }
        }
        match &self.baseline {
            Baseline::Unix(b) => b.directive(path, key),
            Baseline::Windows(_) => None,
        }
    }

    fn read_file_mode(&self, host: u32, path: &str) -> Option<FileMode> {
        if let Some(sym) = self.interner.get(path) {
            if let Some(mode) = self.modes.get(sym, host) {
                return Some(*mode);
            }
        }
        match &self.baseline {
            Baseline::Unix(b) => b.file_mode(path),
            Baseline::Windows(_) => None,
        }
    }

    fn read_has_account(&self, host: u32, name: &str) -> bool {
        if let Some(sym) = self.interner.get(name) {
            if self.accounts.get(host, sym).is_some() {
                return true;
            }
        }
        match &self.baseline {
            Baseline::Unix(b) => b.has_account(name),
            Baseline::Windows(_) => false,
        }
    }

    fn read_all_passwords_encrypted(&self, host: u32) -> bool {
        let Baseline::Unix(base) = &self.baseline else {
            return true;
        };
        // Baseline accounts, with per-host overrides applied.
        for acct in base.accounts() {
            let encrypted = self
                .interner
                .get(acct.name.as_str())
                .and_then(|sym| self.accounts.get(host, sym))
                .map_or(acct.password_encrypted, |ov| ov.password_encrypted);
            if !encrypted {
                return false;
            }
        }
        // Overlay-only accounts (added on this host).
        for (sym, ov) in self.accounts.for_host(host) {
            if !ov.password_encrypted && !base.has_account(self.interner.resolve(sym)) {
                return false;
            }
        }
        true
    }

    fn read_kernel_param(&self, host: u32, key: &str) -> Option<&str> {
        if let Some(sym) = self.interner.get(key) {
            if let Some(v) = self.kernel.get(sym, host) {
                return Some(self.interner.resolve(*v));
            }
        }
        match &self.baseline {
            Baseline::Unix(b) => b.kernel_param(key),
            Baseline::Windows(_) => None,
        }
    }

    fn read_audit(&self, host: u32, category: &str, subcategory: &str) -> AuditSetting {
        if let (Some(c), Some(s)) = (self.interner.get(category), self.interner.get(subcategory)) {
            if let Some(setting) = self.audit.get((c, s), host) {
                return *setting;
            }
        }
        match &self.baseline {
            Baseline::Windows(b) => b.audit_policy().get(category, subcategory),
            Baseline::Unix(_) => AuditSetting::NONE,
        }
    }

    fn read_registry(&self, host: u32, key: &str, name: &str) -> Option<RegistryValue> {
        if let (Some(k), Some(n)) = (self.interner.get(key), self.interner.get(name)) {
            if let Some(v) = self.registry.get((k, n), host) {
                return Some(match v {
                    RegistryOverlay::Dword(d) => RegistryValue::Dword(*d),
                    RegistryOverlay::Sz(s) => {
                        RegistryValue::Sz(self.interner.resolve(*s).to_string())
                    }
                });
            }
        }
        match &self.baseline {
            Baseline::Windows(b) => b.registry_value(key, name).cloned(),
            Baseline::Unix(_) => None,
        }
    }

    fn read_lockout(&self, host: u32) -> (u32, u32) {
        if let Some(v) = self.lockout.get((), host) {
            return *v;
        }
        match &self.baseline {
            Baseline::Windows(b) => (b.lockout_threshold(), b.lockout_duration_minutes()),
            Baseline::Unix(_) => (0, 0),
        }
    }
}

fn host_id(host: usize) -> u32 {
    u32::try_from(host).expect("fleet size is checked against u32 at construction")
}

/// Reconciles one host's overlay with a new effective value: writing
/// the baseline value back drops the overlay. Returns `true` iff the
/// effective state changed.
fn reconcile<K: Ord + Copy, V: PartialEq>(
    table: &mut OverlayTable<K, V>,
    key: K,
    host: u32,
    base: &V,
    new: V,
) -> bool {
    if *base == new {
        table.clear(key, host)
    } else {
        match table.get(key, host) {
            Some(existing) if *existing == new => false,
            _ => {
                table.set(key, host, new);
                true
            }
        }
    }
}

/// Read-only view of one store-backed host.
#[derive(Debug, Clone, Copy)]
pub struct HostView<'a> {
    store: &'a FleetStore,
    host: u32,
}

impl HostView<'_> {
    /// This view's host index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.host as usize
    }
}

macro_rules! impl_host_read_for_view {
    ($ty:ty) => {
        impl HostRead for $ty {
            fn platform(&self) -> Platform {
                self.store.config.platform
            }

            fn is_package_installed(&self, name: &str) -> bool {
                self.store
                    .read_package(self.host, name)
                    .is_some_and(|(_, installed)| installed)
            }

            fn package_version(&self, name: &str) -> Option<&str> {
                self.store
                    .read_package(self.host, name)
                    .and_then(|(v, installed)| installed.then_some(v))
            }

            fn installed_package_names(&self) -> Vec<String> {
                self.store.read_installed_package_names(self.host)
            }

            fn service(&self, name: &str) -> Option<ServiceState> {
                self.store.read_service(self.host, name)
            }

            fn directive(&self, path: &str, key: &str) -> Option<&str> {
                self.store.read_directive(self.host, path, key)
            }

            fn file_mode(&self, path: &str) -> Option<FileMode> {
                self.store.read_file_mode(self.host, path)
            }

            fn has_account(&self, name: &str) -> bool {
                self.store.read_has_account(self.host, name)
            }

            fn all_passwords_encrypted(&self) -> bool {
                self.store.read_all_passwords_encrypted(self.host)
            }

            fn kernel_param(&self, key: &str) -> Option<&str> {
                self.store.read_kernel_param(self.host, key)
            }

            fn audit_setting(&self, category: &str, subcategory: &str) -> AuditSetting {
                self.store.read_audit(self.host, category, subcategory)
            }

            fn registry_value(&self, key: &str, name: &str) -> Option<RegistryValue> {
                self.store.read_registry(self.host, key, name)
            }

            fn lockout_threshold(&self) -> u32 {
                self.store.read_lockout(self.host).0
            }

            fn lockout_duration_minutes(&self) -> u32 {
                self.store.read_lockout(self.host).1
            }
        }
    };
}

impl_host_read_for_view!(HostView<'_>);
impl_host_read_for_view!(HostViewMut<'_>);

/// Mutable view of one store-backed host. Every effective state change
/// marks the host dirty; writes that restore the baseline value drop
/// the overlay entry (copy-on-write in both directions).
#[derive(Debug)]
pub struct HostViewMut<'a> {
    store: &'a mut FleetStore,
    host: u32,
}

impl HostViewMut<'_> {
    /// This view's host index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.host as usize
    }

    fn mark(&mut self, changed: bool) {
        if changed {
            self.store.dirty.insert(self.host);
        }
    }

    fn base_unix(&self) -> Option<&UnixHost> {
        match &self.store.baseline {
            Baseline::Unix(b) => Some(b),
            Baseline::Windows(_) => None,
        }
    }
}

impl HostWrite for HostViewMut<'_> {
    fn install_package(&mut self, name: &str, version: &str) {
        if self.base_unix().is_none() {
            return;
        }
        let sym = self.store.interner.intern(name);
        let vsym = self.store.interner.intern(version);
        let new = PackageOverlay {
            version: vsym,
            installed: true,
        };
        let base = self
            .base_unix()
            .and_then(|b| b.package_state(name))
            .map(|(v, installed)| (v.to_string(), installed));
        let base_ov = base.map(|(v, installed)| PackageOverlay {
            version: self.store.interner.intern(&v),
            installed,
        });
        let changed = match base_ov {
            Some(b) => reconcile(&mut self.store.packages, sym, self.host, &b, new),
            None => {
                // Absent from the baseline: any install is an overlay.
                match self.store.packages.get(sym, self.host) {
                    Some(existing) if *existing == new => false,
                    _ => {
                        self.store.packages.set(sym, self.host, new);
                        true
                    }
                }
            }
        };
        self.mark(changed);
    }

    fn remove_package(&mut self, name: &str) -> bool {
        let version = match self.store.read_package(self.host, name) {
            Some((v, true)) => v.to_string(),
            _ => return false,
        };
        let vsym = self.store.interner.intern(&version);
        let sym = self.store.interner.intern(name);
        let new = PackageOverlay {
            version: vsym,
            installed: false,
        };
        let base = self
            .base_unix()
            .and_then(|b| b.package_state(name))
            .map(|(v, inst)| (v.to_string(), inst));
        let base_ov = base.map(|(v, inst)| PackageOverlay {
            version: self.store.interner.intern(&v),
            installed: inst,
        });
        let changed = match base_ov {
            Some(b) => reconcile(&mut self.store.packages, sym, self.host, &b, new),
            None => {
                self.store.packages.set(sym, self.host, new);
                true
            }
        };
        self.mark(changed);
        true
    }

    fn set_service(&mut self, name: &str, state: ServiceState) {
        if self.base_unix().is_none() {
            return;
        }
        let sym = self.store.interner.intern(name);
        let base = self.base_unix().and_then(|b| b.service(name));
        let changed = match base {
            Some(b) => reconcile(&mut self.store.services, sym, self.host, &b, state),
            None => match self.store.services.get(sym, self.host) {
                Some(existing) if *existing == state => false,
                _ => {
                    self.store.services.set(sym, self.host, state);
                    true
                }
            },
        };
        self.mark(changed);
    }

    fn write_directive(&mut self, path: &str, key: &str, value: &str) {
        if self.base_unix().is_none() {
            return;
        }
        let p = self.store.interner.intern(path);
        let k = self.store.interner.intern(&key.to_ascii_lowercase());
        let v = Some(self.store.interner.intern(value));
        let base_str = self
            .base_unix()
            .and_then(|b| b.directive(path, key))
            .map(str::to_string);
        let base = base_str.map(|s| self.store.interner.intern(&s));
        let changed = reconcile(&mut self.store.directives, (p, k), self.host, &base, v);
        self.mark(changed);
    }

    fn remove_directive(&mut self, path: &str, key: &str) -> bool {
        if self.store.read_directive(self.host, path, key).is_none() {
            return false;
        }
        let p = self.store.interner.intern(path);
        let k = self.store.interner.intern(&key.to_ascii_lowercase());
        let base_str = self
            .base_unix()
            .and_then(|b| b.directive(path, key))
            .map(str::to_string);
        let base = base_str.map(|s| self.store.interner.intern(&s));
        let changed = reconcile(&mut self.store.directives, (p, k), self.host, &base, None);
        self.mark(changed);
        true
    }

    fn set_file_mode(&mut self, path: &str, mode: FileMode) {
        if self.base_unix().is_none() {
            return;
        }
        let sym = self.store.interner.intern(path);
        let base = self.base_unix().and_then(|b| b.file_mode(path));
        let changed = match base {
            Some(b) => reconcile(&mut self.store.modes, sym, self.host, &b, mode),
            None => match self.store.modes.get(sym, self.host) {
                Some(existing) if *existing == mode => false,
                _ => {
                    self.store.modes.set(sym, self.host, mode);
                    true
                }
            },
        };
        self.mark(changed);
    }

    fn add_account(&mut self, name: &str, uid: u32, locked: bool, password_encrypted: bool) {
        if self.base_unix().is_none() {
            return;
        }
        let sym = self.store.interner.intern(name);
        let new = AccountOverlay {
            uid,
            locked,
            password_encrypted,
        };
        let base = self
            .base_unix()
            .and_then(|b| b.account(name))
            .map(|a| AccountOverlay {
                uid: a.uid,
                locked: a.locked,
                password_encrypted: a.password_encrypted,
            });
        let changed = if base == Some(new) {
            self.store.accounts.clear(self.host, sym)
        } else {
            match self.store.accounts.get(self.host, sym) {
                Some(existing) if *existing == new => false,
                _ => {
                    self.store.accounts.set(self.host, sym, new);
                    true
                }
            }
        };
        self.mark(changed);
    }

    fn corrupt_password_storage(&mut self, name: &str) -> bool {
        if !self.store.read_has_account(self.host, name) {
            return false;
        }
        let sym = self.store.interner.intern(name);
        let base = self
            .base_unix()
            .and_then(|b| b.account(name))
            .map(|a| AccountOverlay {
                uid: a.uid,
                locked: a.locked,
                password_encrypted: a.password_encrypted,
            });
        let current = self
            .store
            .accounts
            .get(self.host, sym)
            .copied()
            .or(base)
            .expect("account exists");
        let new = AccountOverlay {
            password_encrypted: false,
            ..current
        };
        let changed = if base == Some(new) {
            self.store.accounts.clear(self.host, sym)
        } else if current == new && self.store.accounts.get(self.host, sym).is_some() {
            false
        } else if current == new {
            // Effective state already clear-text via the baseline.
            false
        } else {
            self.store.accounts.set(self.host, sym, new);
            true
        };
        self.mark(changed);
        true
    }

    fn encrypt_all_passwords(&mut self) {
        let Some(base) = self.base_unix() else { return };
        // Collect the effective account set first (borrow discipline).
        let base_accounts: Vec<(String, AccountOverlay)> = base
            .accounts()
            .map(|a| {
                (
                    a.name.clone(),
                    AccountOverlay {
                        uid: a.uid,
                        locked: a.locked,
                        password_encrypted: a.password_encrypted,
                    },
                )
            })
            .collect();
        let mut changed = false;
        for (name, base_ov) in base_accounts {
            let sym = self.store.interner.intern(&name);
            let current = self.store.accounts.get(self.host, sym).copied();
            let effective = current.unwrap_or(base_ov);
            if effective.password_encrypted {
                continue;
            }
            let new = AccountOverlay {
                password_encrypted: true,
                ..effective
            };
            if base_ov == new {
                changed |= self.store.accounts.clear(self.host, sym);
            } else {
                self.store.accounts.set(self.host, sym, new);
                changed = true;
            }
        }
        // Overlay-only accounts.
        let overlay_fixes: Vec<Sym> = self
            .store
            .accounts
            .for_host(self.host)
            .filter(|(_, ov)| !ov.password_encrypted)
            .map(|(sym, _)| sym)
            .collect();
        for sym in overlay_fixes {
            let mut ov = *self
                .store
                .accounts
                .get(self.host, sym)
                .expect("just listed");
            ov.password_encrypted = true;
            self.store.accounts.set(self.host, sym, ov);
            changed = true;
        }
        self.mark(changed);
    }

    fn set_kernel_param(&mut self, key: &str, value: &str) {
        if self.base_unix().is_none() {
            return;
        }
        let k = self.store.interner.intern(key);
        let v = self.store.interner.intern(value);
        let base_str = self
            .base_unix()
            .and_then(|b| b.kernel_param(key))
            .map(str::to_string);
        let base = base_str.map(|s| self.store.interner.intern(&s));
        let changed = match base {
            Some(b) => reconcile(&mut self.store.kernel, k, self.host, &b, v),
            None => match self.store.kernel.get(k, self.host) {
                Some(existing) if *existing == v => false,
                _ => {
                    self.store.kernel.set(k, self.host, v);
                    true
                }
            },
        };
        self.mark(changed);
    }

    fn set_audit(&mut self, category: &str, subcategory: &str, setting: AuditSetting) {
        let Baseline::Windows(base) = &self.store.baseline else {
            return;
        };
        let base_setting = base.audit_policy().get(category, subcategory);
        let c = self.store.interner.intern(category);
        let s = self.store.interner.intern(subcategory);
        let changed = reconcile(
            &mut self.store.audit,
            (c, s),
            self.host,
            &base_setting,
            setting,
        );
        self.mark(changed);
    }

    fn set_registry_value(&mut self, key: &str, name: &str, value: RegistryValue) {
        let Baseline::Windows(_) = &self.store.baseline else {
            return;
        };
        let k = self.store.interner.intern(key);
        let n = self.store.interner.intern(name);
        let new = match &value {
            RegistryValue::Dword(d) => RegistryOverlay::Dword(*d),
            RegistryValue::Sz(s) => RegistryOverlay::Sz(self.store.interner.intern(s)),
        };
        let base = match &self.store.baseline {
            Baseline::Windows(b) => b.registry_value(key, name).cloned(),
            Baseline::Unix(_) => None,
        };
        let base_ov = base.map(|v| match v {
            RegistryValue::Dword(d) => RegistryOverlay::Dword(d),
            RegistryValue::Sz(s) => RegistryOverlay::Sz(self.store.interner.intern(&s)),
        });
        let changed = match base_ov {
            Some(b) => reconcile(&mut self.store.registry, (k, n), self.host, &b, new),
            None => match self.store.registry.get((k, n), self.host) {
                Some(existing) if *existing == new => false,
                _ => {
                    self.store.registry.set((k, n), self.host, new);
                    true
                }
            },
        };
        self.mark(changed);
    }

    fn set_lockout_threshold(&mut self, attempts: u32) {
        let Baseline::Windows(base) = &self.store.baseline else {
            return;
        };
        let base_val = (base.lockout_threshold(), base.lockout_duration_minutes());
        let current = self.store.read_lockout(self.host);
        let new = (attempts, current.1);
        let changed = reconcile(&mut self.store.lockout, (), self.host, &base_val, new);
        self.mark(changed);
    }

    fn set_lockout_duration_minutes(&mut self, minutes: u32) {
        let Baseline::Windows(base) = &self.store.baseline else {
            return;
        };
        let base_val = (base.lockout_threshold(), base.lockout_duration_minutes());
        let current = self.store.read_lockout(self.host);
        let new = (current.0, minutes);
        let changed = reconcile(&mut self.store.lockout, (), self.host, &base_val, new);
        self.mark(changed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Fleet;

    fn unix_config(size: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            size,
            drift_probability: 0.5,
            drift_events_per_host: 3,
            seed,
            platform: Platform::Unix,
        }
    }

    #[test]
    fn pristine_store_answers_like_the_baseline() {
        let cfg = FleetConfig {
            drift_probability: 0.0,
            ..unix_config(10, 1)
        };
        let store = FleetStore::generate(&cfg);
        let base = UnixHost::baseline_ubuntu_1804();
        let v = store.host(4);
        assert_eq!(
            v.is_package_installed("telnetd"),
            base.is_package_installed("telnetd")
        );
        assert_eq!(
            v.directive("/etc/ssh/sshd_config", "PermitEmptyPasswords"),
            base.directive("/etc/ssh/sshd_config", "PermitEmptyPasswords")
        );
        assert_eq!(v.file_mode("/etc/shadow"), base.file_mode("/etc/shadow"));
        assert_eq!(
            store.overlay_entries(),
            0,
            "pristine fleet stores no deltas"
        );
    }

    #[test]
    fn generate_matches_legacy_fleet_observably() {
        let cfg = unix_config(40, 11);
        let store = FleetStore::generate(&cfg);
        let fleet = Fleet::generate(&cfg);
        assert_eq!(store.drifted_count(), fleet.drifted_count());
        let legacy = fleet.unix_slice();
        let base = UnixHost::baseline_ubuntu_1804();
        for (i, legacy_host) in legacy.iter().enumerate() {
            let a = crate::diff::diff_hosts(&base, &store.host(i));
            let b = crate::diff::diff_unix(&base, legacy_host);
            assert_eq!(a, b, "host {i} diverged");
        }
    }

    #[test]
    fn writes_reconcile_back_to_baseline() {
        let cfg = FleetConfig {
            drift_probability: 0.0,
            ..unix_config(5, 0)
        };
        let mut store = FleetStore::generate(&cfg);
        store
            .host_mut(2)
            .set_file_mode("/etc/shadow", FileMode::new(0o666));
        assert_eq!(store.overlay_entries(), 1);
        assert_eq!(store.take_dirty(), vec![2]);
        // Writing the baseline value back drops the overlay entirely.
        store
            .host_mut(2)
            .set_file_mode("/etc/shadow", FileMode::new(0o644));
        assert_eq!(store.overlay_entries(), 0, "remediation shrinks the store");
        assert_eq!(store.take_dirty(), vec![2]);
        // A no-op write is not a change.
        store
            .host_mut(2)
            .set_file_mode("/etc/shadow", FileMode::new(0o644));
        assert_eq!(store.take_dirty(), Vec::<u32>::new());
    }

    #[test]
    fn package_lifecycle_through_views() {
        let cfg = FleetConfig {
            drift_probability: 0.0,
            ..unix_config(3, 0)
        };
        let mut store = FleetStore::generate(&cfg);
        let mut h = store.host_mut(0);
        assert!(!h.is_package_installed("nis"));
        h.install_package("nis", "3.17");
        assert!(h.is_package_installed("nis"));
        assert_eq!(h.package_version("nis"), Some("3.17"));
        assert!(h.remove_package("nis"));
        assert!(!h.is_package_installed("nis"));
        assert!(!h.remove_package("nis"), "second removal is a no-op");
        // Other hosts are untouched.
        assert!(!store.host(1).is_package_installed("nis"));
    }

    #[test]
    fn directives_are_case_insensitive_and_removable() {
        let cfg = FleetConfig {
            drift_probability: 0.0,
            ..unix_config(2, 0)
        };
        let mut store = FleetStore::generate(&cfg);
        let mut h = store.host_mut(1);
        h.write_directive("/etc/ssh/sshd_config", "PermitRootLogin", "yes");
        assert_eq!(
            h.directive("/etc/ssh/sshd_config", "permitrootlogin"),
            Some("yes")
        );
        assert!(h.remove_directive("/etc/ssh/sshd_config", "PERMITROOTLOGIN"));
        assert_eq!(h.directive("/etc/ssh/sshd_config", "PermitRootLogin"), None);
        // Removing a baseline directive tombstones it.
        assert!(h.remove_directive("/etc/ssh/sshd_config", "Protocol"));
        assert_eq!(h.directive("/etc/ssh/sshd_config", "Protocol"), None);
        assert_eq!(
            store.host(0).directive("/etc/ssh/sshd_config", "Protocol"),
            Some("2"),
            "tombstone is per-host"
        );
    }

    #[test]
    fn password_storage_through_views() {
        let cfg = FleetConfig {
            drift_probability: 0.0,
            ..unix_config(2, 0)
        };
        let mut store = FleetStore::generate(&cfg);
        assert!(store.host(0).all_passwords_encrypted());
        assert!(store.host_mut(0).corrupt_password_storage("admin"));
        assert!(!store.host(0).all_passwords_encrypted());
        assert!(store.host(1).all_passwords_encrypted(), "isolation");
        store.host_mut(0).encrypt_all_passwords();
        assert!(store.host(0).all_passwords_encrypted());
        assert_eq!(
            store.overlay_entries(),
            0,
            "re-encryption restores the baseline state exactly"
        );
        assert!(!store.host_mut(0).corrupt_password_storage("ghost"));
    }

    #[test]
    fn windows_store_round_trip() {
        let cfg = FleetConfig {
            size: 4,
            drift_probability: 0.0,
            drift_events_per_host: 0,
            seed: 0,
            platform: Platform::Windows,
        };
        let mut store = FleetStore::generate(&cfg);
        let mut h = store.host_mut(2);
        assert_eq!(
            h.audit_setting("Logon/Logoff", "Logon"),
            AuditSetting::SUCCESS
        );
        h.set_audit("Logon/Logoff", "Logon", AuditSetting::BOTH);
        assert_eq!(h.audit_setting("Logon/Logoff", "Logon"), AuditSetting::BOTH);
        h.set_lockout_threshold(3);
        h.set_lockout_duration_minutes(15);
        assert_eq!(h.lockout_threshold(), 3);
        assert_eq!(h.lockout_duration_minutes(), 15);
        h.set_registry_value(r"HKLM\K", "V", RegistryValue::Dword(7));
        assert_eq!(
            h.registry_value(r"HKLM\K", "V").and_then(|v| v.as_dword()),
            Some(7)
        );
        assert_eq!(
            store.host(0).audit_setting("Logon/Logoff", "Logon"),
            AuditSetting::SUCCESS,
            "other hosts unchanged"
        );
    }

    #[test]
    fn sweep_queries_report_exactly_the_overriding_hosts() {
        let cfg = FleetConfig {
            drift_probability: 0.0,
            ..unix_config(20, 0)
        };
        let mut store = FleetStore::generate(&cfg);
        store.host_mut(3).install_package("nis", "3.17");
        store.host_mut(17).install_package("nis", "3.17");
        store.host_mut(9).remove_package("vlock");
        assert_eq!(store.hosts_with_package_override("nis"), vec![3, 17]);
        assert_eq!(store.hosts_with_package_override("vlock"), vec![9]);
        assert_eq!(store.hosts_with_package_override("sudo"), Vec::<u32>::new());
        store
            .host_mut(5)
            .write_directive("/etc/ssh/sshd_config", "PermitRootLogin", "yes");
        assert_eq!(
            store.hosts_with_directive_override("/etc/ssh/sshd_config", "permitrootlogin"),
            vec![5]
        );
        store.host_mut(1).corrupt_password_storage("admin");
        assert_eq!(store.hosts_with_account_overrides(), vec![1]);
    }

    #[test]
    fn materialize_round_trips_through_drift() {
        let cfg = unix_config(15, 23);
        let store = FleetStore::generate(&cfg);
        let fleet = Fleet::generate(&cfg);
        let legacy = fleet.unix_slice();
        let base = UnixHost::baseline_ubuntu_1804();
        for (i, legacy_host) in legacy.iter().enumerate() {
            let materialized = store.materialize_unix(i);
            assert_eq!(
                crate::diff::diff_unix(&base, &materialized),
                crate::diff::diff_unix(&base, legacy_host),
                "host {i}"
            );
        }
    }

    #[test]
    fn memory_is_delta_proportional() {
        let small = FleetStore::generate(&unix_config(100, 5));
        let large = FleetStore::generate(&FleetConfig {
            drift_probability: 0.0,
            ..unix_config(100_000, 5)
        });
        // A 1000x larger pristine fleet costs the same as a small one:
        // the baseline plus nothing.
        assert_eq!(large.memory_profile().overlay_bytes, 0);
        assert!(small.memory_profile().overlay_bytes > 0);
        let profile = small.memory_profile();
        assert_eq!(
            profile.total_bytes,
            profile.baseline_bytes
                + profile.interner_bytes
                + profile.overlay_bytes
                + profile.dirty_bytes
        );
    }

    #[test]
    fn take_dirty_drains_and_orders() {
        let cfg = FleetConfig {
            drift_probability: 0.0,
            ..unix_config(50, 0)
        };
        let mut store = FleetStore::generate(&cfg);
        for i in [40usize, 3, 17, 3] {
            store.host_mut(i).install_package("nis", "3.17");
        }
        assert_eq!(store.dirty_len(), 3);
        assert_eq!(store.take_dirty(), vec![3, 17, 40]);
        assert_eq!(store.take_dirty(), Vec::<u32>::new());
    }
}
