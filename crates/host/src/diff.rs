//! Host-state diffing — the forensic view of drift.
//!
//! When operations monitoring flags a violation, the first investigative
//! question is *what changed since the last known-good state*.
//! [`diff_hosts`] compares any two [`HostRead`] snapshots — owned
//! structs, store-backed views, or one of each — and enumerates every
//! difference as a typed [`HostDelta`]; [`diff_unix`] is the concrete
//! convenience wrapper.

use std::collections::BTreeSet;
use std::fmt;

use crate::unix::UnixHost;
use crate::view::HostRead;

/// One observed difference between two host snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostDelta {
    /// Package present in `after` but not installed in `before`.
    PackageInstalled(String),
    /// Package installed in `before` but not in `after`.
    PackageRemoved(String),
    /// Package installed on both sides with different versions:
    /// `(name, before, after)`. Catches silent downgrades/reinstalls.
    PackageVersionChanged(String, String, String),
    /// A config directive changed: `(path, key, before, after)`;
    /// `None` means absent on that side.
    DirectiveChanged(String, String, Option<String>, Option<String>),
    /// A file's permission bits changed: `(path, before, after)` in
    /// octal (`None` = unrecorded).
    ModeChanged(String, Option<u16>, Option<u16>),
    /// A service's enabled state changed: `(name, enabled_after)`.
    ServiceToggled(String, bool),
    /// Password storage hygiene changed (`true` = all encrypted after).
    PasswordStorageChanged(bool),
    /// A kernel parameter changed: `(key, before, after)`.
    KernelParamChanged(String, Option<String>, Option<String>),
}

impl fmt::Display for HostDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostDelta::PackageInstalled(p) => write!(f, "+ package {p}"),
            HostDelta::PackageRemoved(p) => write!(f, "- package {p}"),
            HostDelta::PackageVersionChanged(p, b, a) => {
                write!(f, "~ package {p}: {b} -> {a}")
            }
            HostDelta::DirectiveChanged(path, key, b, a) => write!(
                f,
                "~ {path} {key}: {} -> {}",
                b.as_deref().unwrap_or("<unset>"),
                a.as_deref().unwrap_or("<unset>")
            ),
            HostDelta::ModeChanged(path, b, a) => write!(
                f,
                "~ mode {path}: {} -> {}",
                b.map_or("<unset>".to_string(), |m| format!("{m:04o}")),
                a.map_or("<unset>".to_string(), |m| format!("{m:04o}"))
            ),
            HostDelta::ServiceToggled(n, on) => {
                write!(
                    f,
                    "~ service {n}: {}",
                    if *on { "enabled" } else { "disabled" }
                )
            }
            HostDelta::PasswordStorageChanged(ok) => {
                write!(
                    f,
                    "~ password storage: {}",
                    if *ok { "encrypted" } else { "CLEAR TEXT" }
                )
            }
            HostDelta::KernelParamChanged(k, b, a) => write!(
                f,
                "~ sysctl {k}: {} -> {}",
                b.as_deref().unwrap_or("<unset>"),
                a.as_deref().unwrap_or("<unset>")
            ),
        }
    }
}

/// Directives, files, and kernel parameters that the simulation models
/// and that security tooling cares about — the diff inspects these keys
/// explicitly (the simulated host does not expose raw iteration over its
/// config files, mirroring how real scanners probe known locations).
const WATCHED_DIRECTIVES: [(&str, &str); 6] = [
    ("/etc/ssh/sshd_config", "PermitEmptyPasswords"),
    ("/etc/ssh/sshd_config", "PermitRootLogin"),
    ("/etc/ssh/sshd_config", "Protocol"),
    ("/etc/ssh/sshd_config", "ClientAliveInterval"),
    ("/etc/login.defs", "ENCRYPT_METHOD"),
    ("/etc/login.defs", "PASS_MAX_DAYS"),
];

const WATCHED_FILES: [&str; 3] = ["/etc/shadow", "/etc/gshadow", "/var/log"];

const WATCHED_SERVICES: [&str; 3] = ["sshd", "rsyslog", "telnet"];

const WATCHED_KERNEL_PARAMS: [&str; 2] = ["kernel.dmesg_restrict", "fs.suid_dumpable"];

/// Enumerates the differences between two Unix host snapshots.
///
/// Packages are compared exhaustively; directives, file modes, services,
/// and kernel parameters are compared over the watched sets above.
///
/// ```
/// use vdo_host::{diff_unix, HostDelta, UnixHost};
/// let before = UnixHost::baseline_ubuntu_1804();
/// let mut after = before.clone();
/// after.install_package("nis", "3.17");
/// let deltas = diff_unix(&before, &after);
/// assert_eq!(deltas, vec![HostDelta::PackageInstalled("nis".into())]);
/// ```
#[must_use]
pub fn diff_unix(before: &UnixHost, after: &UnixHost) -> Vec<HostDelta> {
    diff_hosts(before, after)
}

/// Enumerates the differences between any two host snapshots through the
/// [`HostRead`] trait — the representation-independent generalization of
/// [`diff_unix`]. The two sides may be different representations (e.g.
/// an owned baseline vs. a columnar store view).
#[must_use]
pub fn diff_hosts<B: HostRead + ?Sized, A: HostRead + ?Sized>(
    before: &B,
    after: &A,
) -> Vec<HostDelta> {
    let mut deltas = Vec::new();

    let b_pkgs: BTreeSet<String> = before.installed_package_names().into_iter().collect();
    let a_pkgs: BTreeSet<String> = after.installed_package_names().into_iter().collect();
    for p in a_pkgs.difference(&b_pkgs) {
        deltas.push(HostDelta::PackageInstalled(p.clone()));
    }
    for p in b_pkgs.difference(&a_pkgs) {
        deltas.push(HostDelta::PackageRemoved(p.clone()));
    }
    for p in b_pkgs.intersection(&a_pkgs) {
        let b = before.package_version(p);
        let a = after.package_version(p);
        if b != a {
            deltas.push(HostDelta::PackageVersionChanged(
                p.clone(),
                b.unwrap_or("<unknown>").to_string(),
                a.unwrap_or("<unknown>").to_string(),
            ));
        }
    }

    for (path, key) in WATCHED_DIRECTIVES {
        let b = before.directive(path, key).map(str::to_string);
        let a = after.directive(path, key).map(str::to_string);
        if b != a {
            deltas.push(HostDelta::DirectiveChanged(path.into(), key.into(), b, a));
        }
    }

    for path in WATCHED_FILES {
        let b = before.file_mode(path).map(|m| m.bits());
        let a = after.file_mode(path).map(|m| m.bits());
        if b != a {
            deltas.push(HostDelta::ModeChanged(path.into(), b, a));
        }
    }

    for name in WATCHED_SERVICES {
        let b = before.service(name).is_some_and(|s| s.enabled);
        let a = after.service(name).is_some_and(|s| s.enabled);
        if b != a {
            deltas.push(HostDelta::ServiceToggled(name.into(), a));
        }
    }

    if before.all_passwords_encrypted() != after.all_passwords_encrypted() {
        deltas.push(HostDelta::PasswordStorageChanged(
            after.all_passwords_encrypted(),
        ));
    }

    for key in WATCHED_KERNEL_PARAMS {
        let b = before.kernel_param(key).map(str::to_string);
        let a = after.kernel_param(key).map(str::to_string);
        if b != a {
            deltas.push(HostDelta::KernelParamChanged(key.into(), b, a));
        }
    }

    deltas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::DriftInjector;
    use crate::unix::FileMode;

    #[test]
    fn identical_hosts_diff_empty() {
        let h = UnixHost::baseline_ubuntu_1804();
        assert!(diff_unix(&h, &h.clone()).is_empty());
    }

    #[test]
    fn each_change_kind_is_reported() {
        let before = UnixHost::baseline_ubuntu_1804();
        let mut after = before.clone();
        after.install_package("nis", "3.17");
        after.remove_package("sudo");
        after.write_directive("/etc/ssh/sshd_config", "PermitRootLogin", "yes");
        after.set_file_mode("/etc/shadow", FileMode::new(0o666));
        after.disable_service("rsyslog");
        after.corrupt_password_storage("admin");
        after.set_kernel_param("fs.suid_dumpable", "1");

        let deltas = diff_unix(&before, &after);
        assert!(deltas.contains(&HostDelta::PackageInstalled("nis".into())));
        assert!(deltas.contains(&HostDelta::PackageRemoved("sudo".into())));
        assert!(deltas.iter().any(|d| matches!(
            d,
            HostDelta::DirectiveChanged(_, k, _, Some(v)) if k == "PermitRootLogin" && v == "yes"
        )));
        assert!(deltas.iter().any(|d| matches!(
            d,
            HostDelta::ModeChanged(p, Some(0o644), Some(0o666)) if p == "/etc/shadow"
        )));
        assert!(deltas.contains(&HostDelta::ServiceToggled("rsyslog".into(), false)));
        assert!(deltas.contains(&HostDelta::PasswordStorageChanged(false)));
        assert!(deltas.iter().any(|d| matches!(
            d,
            HostDelta::KernelParamChanged(k, _, Some(v)) if k == "fs.suid_dumpable" && v == "1"
        )));
    }

    #[test]
    fn drift_always_leaves_a_visible_delta() {
        // Every drift kind the injector produces must surface in the diff
        // — otherwise forensic reports would have blind spots.
        for seed in 0..40 {
            let before = UnixHost::baseline_ubuntu_1804();
            let mut after = before.clone();
            DriftInjector::new(seed).drift_unix(&mut after, 1);
            let deltas = diff_unix(&before, &after);
            // A drift event may be a no-op (e.g. re-installing an already
            // broken package); only assert when state actually changed.
            if before != after {
                assert!(
                    !deltas.is_empty(),
                    "seed {seed}: state changed but diff is empty"
                );
            }
        }
    }

    #[test]
    fn display_renders_readably() {
        let d = HostDelta::ModeChanged("/etc/shadow".into(), Some(0o640), Some(0o666));
        assert_eq!(d.to_string(), "~ mode /etc/shadow: 0640 -> 0666");
        let d = HostDelta::DirectiveChanged(
            "/etc/ssh/sshd_config".into(),
            "Protocol".into(),
            Some("2".into()),
            Some("1".into()),
        );
        assert_eq!(d.to_string(), "~ /etc/ssh/sshd_config Protocol: 2 -> 1");
        assert_eq!(
            HostDelta::PasswordStorageChanged(false).to_string(),
            "~ password storage: CLEAR TEXT"
        );
    }
}
