//! Configuration drift injection.
//!
//! VeriDevOps' "reactive protection at operations" exists because deployed
//! systems *drift*: updates, manual fixes, and attacks silently undo
//! hardening. [`DriftInjector`] reproduces that pressure deterministically:
//! seeded with an RNG, it applies random de-hardening events to simulated
//! hosts and reports exactly what it broke, so experiments can measure how
//! much of the damage the check/enforce loop detects and repairs.
//!
//! The injector is written once against the [`HostWrite`] trait, so the
//! same event tables drive owned host structs and store-backed views
//! with the identical RNG draw sequence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::unix::{FileMode, UnixHost};
use crate::view::{HostWrite, Platform};
use crate::windows::{AuditSetting, WindowsHost};

/// The kinds of drift the injector can introduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriftKind {
    /// Install a prohibited package (`nis`, `rsh-server`, `telnetd`, …).
    InstallForbiddenPackage,
    /// Remove a package the STIG requires (e.g. `vlock`).
    RemoveRequiredPackage,
    /// Weaken an sshd directive (e.g. `PermitEmptyPasswords yes`).
    WeakenSshConfig,
    /// Loosen a sensitive file's permission bits.
    LoosenFileMode,
    /// Store an account password in clear text.
    CorruptPasswordStorage,
    /// Switch password hashing back to a weak algorithm.
    WeakenPasswordHashing,
    /// Turn off an audit subcategory on Windows.
    DisableAuditSubcategory,
    /// Reset the account lockout threshold to 0.
    ResetLockoutPolicy,
}

/// All Unix-applicable drift kinds.
pub const UNIX_DRIFT_KINDS: [DriftKind; 6] = [
    DriftKind::InstallForbiddenPackage,
    DriftKind::RemoveRequiredPackage,
    DriftKind::WeakenSshConfig,
    DriftKind::LoosenFileMode,
    DriftKind::CorruptPasswordStorage,
    DriftKind::WeakenPasswordHashing,
];

/// All Windows-applicable drift kinds.
pub const WINDOWS_DRIFT_KINDS: [DriftKind; 2] = [
    DriftKind::DisableAuditSubcategory,
    DriftKind::ResetLockoutPolicy,
];

/// A record of one injected drift event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftEvent {
    /// What category of drift happened.
    pub kind: DriftKind,
    /// Human-readable detail (package name, directive, subcategory, …).
    pub detail: String,
}

/// Seeded random drift source.
///
/// ```
/// use vdo_host::{DriftInjector, Platform, UnixHost};
///
/// let mut host = UnixHost::baseline_ubuntu_1804();
/// let mut drift = DriftInjector::new(42);
/// let events = drift.drift(&mut host, Platform::Unix, 3);
/// assert_eq!(events.len(), 3);
/// // Same seed ⇒ same drift on an identical host.
/// let mut host2 = UnixHost::baseline_ubuntu_1804();
/// let events2 = DriftInjector::new(42).drift(&mut host2, Platform::Unix, 3);
/// assert_eq!(events, events2);
/// ```
#[derive(Debug, Clone)]
pub struct DriftInjector {
    rng: StdRng,
}

const FORBIDDEN_PACKAGES: [&str; 4] = ["nis", "rsh-server", "telnetd", "rsh-client"];
const REQUIRED_PACKAGES: [&str; 2] = ["vlock", "openssh-server"];
const SSH_WEAKENINGS: [(&str, &str); 3] = [
    ("PermitEmptyPasswords", "yes"),
    ("PermitRootLogin", "yes"),
    ("Protocol", "1"),
];
const SENSITIVE_FILES: [&str; 2] = ["/etc/shadow", "/etc/gshadow"];
const AUDIT_TARGETS: [(&str, &str); 4] = [
    ("Account Management", "User Account Management"),
    ("Logon/Logoff", "Logon"),
    ("Privilege Use", "Sensitive Privilege Use"),
    ("Account Logon", "Credential Validation"),
];

impl DriftInjector {
    /// Creates an injector from a seed; the same seed replays the same
    /// event sequence.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        DriftInjector {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Applies `n` random drift events for `platform` to any writable
    /// host. Returns the events in application order. The RNG draw
    /// sequence depends only on the seed and `platform`, never on the
    /// host representation.
    pub fn drift<H: HostWrite>(
        &mut self,
        host: &mut H,
        platform: Platform,
        n: usize,
    ) -> Vec<DriftEvent> {
        (0..n).map(|_| self.one_event(host, platform)).collect()
    }

    /// Applies `n` random drift events to a Unix host.
    pub fn drift_unix(&mut self, host: &mut UnixHost, n: usize) -> Vec<DriftEvent> {
        self.drift(host, Platform::Unix, n)
    }

    /// Applies `n` random drift events to a Windows host.
    pub fn drift_windows(&mut self, host: &mut WindowsHost, n: usize) -> Vec<DriftEvent> {
        self.drift(host, Platform::Windows, n)
    }

    fn one_event<H: HostWrite>(&mut self, host: &mut H, platform: Platform) -> DriftEvent {
        let kind = match platform {
            Platform::Unix => UNIX_DRIFT_KINDS[self.rng.gen_range(0..UNIX_DRIFT_KINDS.len())],
            Platform::Windows => {
                WINDOWS_DRIFT_KINDS[self.rng.gen_range(0..WINDOWS_DRIFT_KINDS.len())]
            }
        };
        let detail = match kind {
            DriftKind::InstallForbiddenPackage => {
                let pkg = FORBIDDEN_PACKAGES[self.rng.gen_range(0..FORBIDDEN_PACKAGES.len())];
                host.install_package(pkg, "0.0-drift");
                pkg.to_string()
            }
            DriftKind::RemoveRequiredPackage => {
                let pkg = REQUIRED_PACKAGES[self.rng.gen_range(0..REQUIRED_PACKAGES.len())];
                host.remove_package(pkg);
                pkg.to_string()
            }
            DriftKind::WeakenSshConfig => {
                let (k, v) = SSH_WEAKENINGS[self.rng.gen_range(0..SSH_WEAKENINGS.len())];
                host.write_directive("/etc/ssh/sshd_config", k, v);
                format!("{k}={v}")
            }
            DriftKind::LoosenFileMode => {
                let path = SENSITIVE_FILES[self.rng.gen_range(0..SENSITIVE_FILES.len())];
                host.set_file_mode(path, FileMode::new(0o666));
                path.to_string()
            }
            DriftKind::CorruptPasswordStorage => {
                host.corrupt_password_storage("admin");
                "admin".to_string()
            }
            DriftKind::WeakenPasswordHashing => {
                host.write_directive("/etc/login.defs", "ENCRYPT_METHOD", "MD5");
                "ENCRYPT_METHOD=MD5".to_string()
            }
            DriftKind::DisableAuditSubcategory => {
                let (c, s) = AUDIT_TARGETS[self.rng.gen_range(0..AUDIT_TARGETS.len())];
                host.set_audit(c, s, AuditSetting::NONE);
                format!("{c}/{s}")
            }
            DriftKind::ResetLockoutPolicy => {
                host.set_lockout_threshold(0);
                "lockout_threshold=0".to_string()
            }
        };
        DriftEvent { kind, detail }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unix_drift_is_deterministic_per_seed() {
        let mut a = UnixHost::baseline_ubuntu_1804();
        let mut b = UnixHost::baseline_ubuntu_1804();
        let ea = DriftInjector::new(7).drift(&mut a, Platform::Unix, 10);
        let eb = DriftInjector::new(7).drift_unix(&mut b, 10);
        assert_eq!(ea, eb, "generic and wrapper entry points draw identically");
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = UnixHost::baseline_ubuntu_1804();
        let mut b = UnixHost::baseline_ubuntu_1804();
        let ea = DriftInjector::new(1).drift(&mut a, Platform::Unix, 20);
        let eb = DriftInjector::new(2).drift(&mut b, Platform::Unix, 20);
        assert_ne!(ea, eb, "20 events from different seeds should not coincide");
    }

    #[test]
    fn unix_events_actually_mutate() {
        let mut h = UnixHost::new("clean");
        h.add_account("admin", 1000, false, true);
        let before = h.clone();
        let events = DriftInjector::new(3).drift(&mut h, Platform::Unix, 8);
        assert_eq!(events.len(), 8);
        assert_ne!(h, before, "eight drift events must leave a trace");
    }

    #[test]
    fn windows_drift_disables_things() {
        let mut h = WindowsHost::baseline_win10();
        h.set_lockout_threshold(5);
        let events = DriftInjector::new(11).drift(&mut h, Platform::Windows, 12);
        assert_eq!(events.len(), 12);
        // With 12 events over 2 kinds, both kinds occur w.h.p. for this seed.
        assert!(events
            .iter()
            .any(|e| e.kind == DriftKind::ResetLockoutPolicy));
        assert_eq!(h.lockout_threshold(), 0);
    }

    #[test]
    fn drift_kinds_are_disjoint_per_platform() {
        for k in UNIX_DRIFT_KINDS {
            assert!(!WINDOWS_DRIFT_KINDS.contains(&k));
        }
    }
}
