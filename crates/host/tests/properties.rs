//! Observational-equivalence properties: the columnar [`FleetStore`]
//! must be indistinguishable from the legacy per-host-struct [`Fleet`]
//! at equal seeds — same drift counts, same diff reports, same
//! materialized hosts — across the whole configuration space.

use proptest::prelude::*;
use vdo_host::{
    diff_hosts, diff_unix, DriftInjector, Fleet, FleetConfig, FleetStore, HostRead, Platform,
    UnixHost,
};

fn cfg(size: usize, seed: u64, p: f64, platform: Platform) -> FleetConfig {
    FleetConfig::builder()
        .size(size)
        .seed(seed)
        .drift_probability(p)
        .drift_events_per_host(4)
        .platform(platform)
        .build()
        .expect("valid config")
}

proptest! {
    /// Equal seeds ⇒ the columnar store and the legacy fleet drift the
    /// same hosts and show identical per-host diffs vs. the baseline.
    #[test]
    fn store_and_fleet_agree_observably(
        seed in 0u64..300,
        size in 1usize..30,
        p in 0.0f64..1.0,
    ) {
        let config = cfg(size, seed, p, Platform::Unix);
        let fleet = Fleet::generate(&config);
        let store = FleetStore::generate(&config);
        prop_assert_eq!(fleet.drifted_count(), store.drifted_count());

        let base = UnixHost::baseline_ubuntu_1804();
        for (i, host) in fleet.hosts().enumerate() {
            let legacy = host.as_unix().expect("unix fleet");
            let legacy_diff = diff_unix(&base, legacy);
            let store_diff = diff_hosts(&base, &store.host(i));
            prop_assert_eq!(&legacy_diff, &store_diff, "host {} diff diverged", i);
        }
    }

    /// Materializing a store host yields a struct that diffs empty
    /// against the store view it came from.
    #[test]
    fn materialized_hosts_match_their_views(
        seed in 0u64..300,
        size in 1usize..20,
    ) {
        let config = cfg(size, seed, 0.8, Platform::Unix);
        let store = FleetStore::generate(&config);
        for i in 0..store.len() {
            let owned = store.materialize_unix(i);
            prop_assert!(diff_hosts(&owned, &store.host(i)).is_empty());
            prop_assert!(diff_hosts(&store.host(i), &owned).is_empty());
        }
    }

    /// Windows fleets agree on the trait-visible surface at equal seeds.
    #[test]
    fn windows_store_and_fleet_agree(
        seed in 0u64..200,
        size in 1usize..20,
        p in 0.0f64..1.0,
    ) {
        let config = cfg(size, seed, p, Platform::Windows);
        let fleet = Fleet::generate(&config);
        let store = FleetStore::generate(&config);
        prop_assert_eq!(fleet.drifted_count(), store.drifted_count());
        for (i, host) in fleet.hosts().enumerate() {
            let view = store.host(i);
            for (c, s) in [
                ("Account Management", "User Account Management"),
                ("Logon/Logoff", "Logon"),
                ("Privilege Use", "Sensitive Privilege Use"),
                ("Account Logon", "Credential Validation"),
            ] {
                prop_assert_eq!(host.audit_setting(c, s), view.audit_setting(c, s));
            }
            prop_assert_eq!(host.lockout_threshold(), view.lockout_threshold());
            prop_assert_eq!(
                host.lockout_duration_minutes(),
                view.lockout_duration_minutes()
            );
            prop_assert_eq!(
                host.registry_value(
                    r"HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Policies\System",
                    "EnableLUA"
                ),
                view.registry_value(
                    r"HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Policies\System",
                    "EnableLUA"
                )
            );
        }
    }

    /// Writing the same drift stream through a store view and an owned
    /// struct leaves the two representations observationally equal, and
    /// the dirty set names exactly the touched host.
    #[test]
    fn drift_through_views_matches_owned_structs(
        seed in 0u64..300,
        events in 1usize..10,
    ) {
        let config = cfg(5, 1, 0.0, Platform::Unix);
        let mut store = FleetStore::generate(&config);
        let mut owned = UnixHost::baseline_ubuntu_1804();

        let ev_a = DriftInjector::new(seed).drift(&mut store.host_mut(2), Platform::Unix, events);
        let ev_b = DriftInjector::new(seed).drift(&mut owned, Platform::Unix, events);
        prop_assert_eq!(ev_a, ev_b, "identical RNG draws on both representations");
        prop_assert!(diff_hosts(&owned, &store.host(2)).is_empty());

        let dirty = store.take_dirty();
        prop_assert!(dirty.iter().all(|&h| h == 2));
        prop_assert!(store.take_dirty().is_empty(), "take_dirty drains");
    }
}
