//! Three-valued verdicts for checking and enforcing requirements.
//!
//! RQCODE deliberately uses *three*-valued statuses: a requirement whose
//! precondition is not met, or whose evidence is not yet available, is
//! neither satisfied nor violated. The same trichotomy reappears in
//! finite-trace temporal monitoring (`vdo-temporal`), where a property may
//! be undecided until more of the trace is observed.

use std::fmt;
use std::ops::{BitAnd, BitOr, Not as OpNot};

/// Outcome of checking a requirement against an environment.
///
/// Mirrors `rqcode.concepts.Checkable.CheckStatus { PASS, FAIL, INCOMPLETE }`.
///
/// `CheckStatus` forms a Kleene strong three-valued logic under
/// [`and`](CheckStatus::and) / [`or`](CheckStatus::or) /
/// [`negate`](CheckStatus::negate), which is what makes composite
/// requirements ([`crate::AllOf`], [`crate::AnyOf`], [`crate::Not`])
/// well-defined in the presence of undecided sub-requirements.
///
/// ```
/// use vdo_core::CheckStatus::{Pass, Fail, Incomplete};
/// assert_eq!(Pass.and(Incomplete), Incomplete);
/// assert_eq!(Fail.and(Incomplete), Fail);      // Fail dominates conjunction
/// assert_eq!(Pass.or(Incomplete), Pass);       // Pass dominates disjunction
/// assert_eq!(Incomplete.negate(), Incomplete);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CheckStatus {
    /// The environment satisfies the requirement.
    Pass,
    /// The environment violates the requirement.
    Fail,
    /// The verdict cannot (yet) be decided.
    Incomplete,
}

impl CheckStatus {
    /// `true` iff the verdict is [`Pass`](CheckStatus::Pass).
    #[must_use]
    pub fn is_pass(self) -> bool {
        self == CheckStatus::Pass
    }

    /// `true` iff the verdict is [`Fail`](CheckStatus::Fail).
    #[must_use]
    pub fn is_fail(self) -> bool {
        self == CheckStatus::Fail
    }

    /// `true` iff the verdict is [`Incomplete`](CheckStatus::Incomplete).
    #[must_use]
    pub fn is_incomplete(self) -> bool {
        self == CheckStatus::Incomplete
    }

    /// `true` iff the verdict is decided (not [`Incomplete`](CheckStatus::Incomplete)).
    #[must_use]
    pub fn is_decided(self) -> bool {
        !self.is_incomplete()
    }

    /// Kleene conjunction: `Fail` dominates, then `Incomplete`, then `Pass`.
    #[must_use]
    pub fn and(self, other: CheckStatus) -> CheckStatus {
        use CheckStatus::*;
        match (self, other) {
            (Fail, _) | (_, Fail) => Fail,
            (Incomplete, _) | (_, Incomplete) => Incomplete,
            (Pass, Pass) => Pass,
        }
    }

    /// Kleene disjunction: `Pass` dominates, then `Incomplete`, then `Fail`.
    #[must_use]
    pub fn or(self, other: CheckStatus) -> CheckStatus {
        use CheckStatus::*;
        match (self, other) {
            (Pass, _) | (_, Pass) => Pass,
            (Incomplete, _) | (_, Incomplete) => Incomplete,
            (Fail, Fail) => Fail,
        }
    }

    /// Kleene negation: swaps `Pass`/`Fail`, preserves `Incomplete`.
    #[must_use]
    pub fn negate(self) -> CheckStatus {
        use CheckStatus::*;
        match self {
            Pass => Fail,
            Fail => Pass,
            Incomplete => Incomplete,
        }
    }

    /// Collapses the verdict to a boolean, treating `Incomplete` as the
    /// given default. Gate logic in `vdo-pipeline` uses
    /// `to_bool(false)` — undecided requirements block the gate.
    #[must_use]
    pub fn to_bool(self, incomplete_as: bool) -> bool {
        match self {
            CheckStatus::Pass => true,
            CheckStatus::Fail => false,
            CheckStatus::Incomplete => incomplete_as,
        }
    }

    /// Folds an iterator of verdicts with [`and`](Self::and); the empty
    /// conjunction is `Pass`.
    pub fn all<I: IntoIterator<Item = CheckStatus>>(iter: I) -> CheckStatus {
        iter.into_iter().fold(CheckStatus::Pass, CheckStatus::and)
    }

    /// Folds an iterator of verdicts with [`or`](Self::or); the empty
    /// disjunction is `Fail`.
    pub fn any<I: IntoIterator<Item = CheckStatus>>(iter: I) -> CheckStatus {
        iter.into_iter().fold(CheckStatus::Fail, CheckStatus::or)
    }
}

impl From<bool> for CheckStatus {
    fn from(b: bool) -> Self {
        if b {
            CheckStatus::Pass
        } else {
            CheckStatus::Fail
        }
    }
}

impl From<Option<bool>> for CheckStatus {
    fn from(b: Option<bool>) -> Self {
        match b {
            Some(true) => CheckStatus::Pass,
            Some(false) => CheckStatus::Fail,
            None => CheckStatus::Incomplete,
        }
    }
}

impl BitAnd for CheckStatus {
    type Output = CheckStatus;
    fn bitand(self, rhs: Self) -> Self {
        self.and(rhs)
    }
}

impl BitOr for CheckStatus {
    type Output = CheckStatus;
    fn bitor(self, rhs: Self) -> Self {
        self.or(rhs)
    }
}

impl OpNot for CheckStatus {
    type Output = CheckStatus;
    fn not(self) -> Self {
        self.negate()
    }
}

impl fmt::Display for CheckStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CheckStatus::Pass => "PASS",
            CheckStatus::Fail => "FAIL",
            CheckStatus::Incomplete => "INCOMPLETE",
        })
    }
}

/// Outcome of enforcing a requirement on an environment.
///
/// Mirrors `rqcode.concepts.Enforceable.EnforcementStatus
/// { SUCCESS, FAILURE, INCOMPLETE }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EnforcementStatus {
    /// The environment was (or already is) brought into compliance.
    Success,
    /// Remediation was attempted and failed.
    Failure,
    /// Remediation could not be completed (missing privileges or data).
    Incomplete,
}

impl EnforcementStatus {
    /// `true` iff enforcement succeeded.
    #[must_use]
    pub fn is_success(self) -> bool {
        self == EnforcementStatus::Success
    }

    /// Combines two enforcement outcomes pessimistically: `Failure`
    /// dominates, then `Incomplete`.
    #[must_use]
    pub fn and(self, other: EnforcementStatus) -> EnforcementStatus {
        use EnforcementStatus::*;
        match (self, other) {
            (Failure, _) | (_, Failure) => Failure,
            (Incomplete, _) | (_, Incomplete) => Incomplete,
            (Success, Success) => Success,
        }
    }

    /// Folds outcomes with [`and`](Self::and); the empty fold is `Success`.
    pub fn all<I: IntoIterator<Item = EnforcementStatus>>(iter: I) -> EnforcementStatus {
        iter.into_iter()
            .fold(EnforcementStatus::Success, EnforcementStatus::and)
    }
}

impl From<bool> for EnforcementStatus {
    fn from(b: bool) -> Self {
        if b {
            EnforcementStatus::Success
        } else {
            EnforcementStatus::Failure
        }
    }
}

impl fmt::Display for EnforcementStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EnforcementStatus::Success => "SUCCESS",
            EnforcementStatus::Failure => "FAILURE",
            EnforcementStatus::Incomplete => "INCOMPLETE",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CheckStatus::*;

    const ALL: [CheckStatus; 3] = [Pass, Fail, Incomplete];

    #[test]
    fn and_truth_table() {
        assert_eq!(Pass.and(Pass), Pass);
        assert_eq!(Pass.and(Fail), Fail);
        assert_eq!(Pass.and(Incomplete), Incomplete);
        assert_eq!(Fail.and(Incomplete), Fail);
        assert_eq!(Incomplete.and(Incomplete), Incomplete);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Fail.or(Fail), Fail);
        assert_eq!(Fail.or(Incomplete), Incomplete);
        assert_eq!(Pass.or(Incomplete), Pass);
        assert_eq!(Incomplete.or(Incomplete), Incomplete);
    }

    #[test]
    fn de_morgan_holds() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b).negate(), a.negate().or(b.negate()));
                assert_eq!(a.or(b).negate(), a.negate().and(b.negate()));
            }
        }
    }

    #[test]
    fn and_or_commutative_associative() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                for c in ALL {
                    assert_eq!(a.and(b).and(c), a.and(b.and(c)));
                    assert_eq!(a.or(b).or(c), a.or(b.or(c)));
                }
            }
        }
    }

    #[test]
    fn double_negation() {
        for a in ALL {
            assert_eq!(a.negate().negate(), a);
        }
    }

    #[test]
    fn fold_identities() {
        assert_eq!(CheckStatus::all([]), Pass);
        assert_eq!(CheckStatus::any([]), Fail);
        assert_eq!(CheckStatus::all([Pass, Incomplete, Pass]), Incomplete);
        assert_eq!(CheckStatus::any([Fail, Incomplete, Pass]), Pass);
    }

    #[test]
    fn bool_conversions() {
        assert_eq!(CheckStatus::from(true), Pass);
        assert_eq!(CheckStatus::from(Some(false)), Fail);
        assert_eq!(CheckStatus::from(None::<bool>), Incomplete);
        assert!(Pass.to_bool(false));
        assert!(!Incomplete.to_bool(false));
        assert!(Incomplete.to_bool(true));
    }

    #[test]
    fn operator_sugar_matches_methods() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a & b, a.and(b));
                assert_eq!(a | b, a.or(b));
            }
            assert_eq!(!a, a.negate());
        }
    }

    #[test]
    fn enforcement_combination() {
        use EnforcementStatus::*;
        assert_eq!(Success.and(Success), Success);
        assert_eq!(Success.and(Incomplete), Incomplete);
        assert_eq!(Incomplete.and(Failure), Failure);
        assert_eq!(EnforcementStatus::all([]), Success);
        assert_eq!(EnforcementStatus::all([Success, Failure]), Failure);
    }

    #[test]
    fn display_is_screaming() {
        assert_eq!(Pass.to_string(), "PASS");
        assert_eq!(EnforcementStatus::Incomplete.to_string(), "INCOMPLETE");
    }
}
