//! Composite requirements: conjunction, disjunction, negation, naming.
//!
//! RQCODE's "requirements are classes" pitch gets its mileage from reuse
//! and composition — a Windows 10 STIG instance is a conjunction of dozens
//! of audit-policy requirements. These combinators make that composition a
//! first-class value while preserving three-valued semantics (see
//! [`crate::CheckStatus`]'s Kleene algebra).

use crate::{CheckStatus, Checkable, Enforceable, EnforcementStatus};

/// Conjunction of requirements: passes iff every child passes.
///
/// Enforcing an `AllOf` enforces every child (even after a child fails, so
/// that one broken remediation does not mask the rest) and combines the
/// outcomes pessimistically.
///
/// ```
/// use vdo_core::{AllOf, Checkable, CheckStatus};
/// let all = AllOf::new(vec![])
///     .with(|e: &i32| CheckStatus::from(*e > 0))
///     .with(|e: &i32| CheckStatus::from(*e % 2 == 0));
/// assert_eq!(all.check(&4), CheckStatus::Pass);
/// assert_eq!(all.check(&3), CheckStatus::Fail);
/// ```
pub struct AllOf<E: ?Sized> {
    children: Vec<Box<dyn Checkable<E> + Send + Sync>>,
}

impl<E: ?Sized> AllOf<E> {
    /// Creates a conjunction over the given children. The empty
    /// conjunction passes.
    #[must_use]
    pub fn new(children: Vec<Box<dyn Checkable<E> + Send + Sync>>) -> Self {
        AllOf { children }
    }

    /// Adds a child requirement (builder style).
    #[must_use]
    pub fn with<C>(mut self, child: C) -> Self
    where
        C: Checkable<E> + Send + Sync + 'static,
    {
        self.children.push(Box::new(child));
        self
    }

    /// Number of direct children.
    #[must_use]
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// `true` iff there are no children.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

impl<E: ?Sized> Default for AllOf<E> {
    fn default() -> Self {
        AllOf::new(Vec::new())
    }
}

impl<E: ?Sized> Checkable<E> for AllOf<E> {
    fn check(&self, env: &E) -> CheckStatus {
        CheckStatus::all(self.children.iter().map(|c| c.check(env)))
    }
}

/// Disjunction of requirements: passes iff at least one child passes.
///
/// `AnyOf` models alternative acceptable configurations (e.g. "smart-card
/// login **or** hardware token"). The empty disjunction fails.
pub struct AnyOf<E: ?Sized> {
    children: Vec<Box<dyn Checkable<E> + Send + Sync>>,
}

impl<E: ?Sized> AnyOf<E> {
    /// Creates a disjunction over the given children.
    #[must_use]
    pub fn new(children: Vec<Box<dyn Checkable<E> + Send + Sync>>) -> Self {
        AnyOf { children }
    }

    /// Adds a child requirement (builder style).
    #[must_use]
    pub fn with<C>(mut self, child: C) -> Self
    where
        C: Checkable<E> + Send + Sync + 'static,
    {
        self.children.push(Box::new(child));
        self
    }

    /// Number of direct children.
    #[must_use]
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// `true` iff there are no children.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

impl<E: ?Sized> Default for AnyOf<E> {
    fn default() -> Self {
        AnyOf::new(Vec::new())
    }
}

impl<E: ?Sized> Checkable<E> for AnyOf<E> {
    fn check(&self, env: &E) -> CheckStatus {
        CheckStatus::any(self.children.iter().map(|c| c.check(env)))
    }
}

/// Negation of a requirement (Kleene: `Incomplete` stays `Incomplete`).
///
/// Used for prohibitions: "the `rsh-server` package must **not** be
/// installed" is `Not(installed("rsh-server"))`.
pub struct Not<C> {
    inner: C,
}

impl<C> Not<C> {
    /// Wraps the requirement whose verdict is to be negated.
    #[must_use]
    pub fn new(inner: C) -> Self {
        Not { inner }
    }

    /// Returns the wrapped requirement.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<E: ?Sized, C: Checkable<E>> Checkable<E> for Not<C> {
    fn check(&self, env: &E) -> CheckStatus {
        self.inner.check(env).negate()
    }
}

/// Attaches a human-readable label to a requirement without changing its
/// semantics. Reports and gate logs use the label.
pub struct Named<C> {
    name: String,
    inner: C,
}

impl<C> Named<C> {
    /// Wraps `inner` under the given display name.
    #[must_use]
    pub fn new(name: impl Into<String>, inner: C) -> Self {
        Named {
            name: name.into(),
            inner,
        }
    }

    /// The display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the wrapped requirement.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<E: ?Sized, C: Checkable<E>> Checkable<E> for Named<C> {
    fn check(&self, env: &E) -> CheckStatus {
        self.inner.check(env)
    }
}

impl<E: ?Sized, C: Enforceable<E>> Enforceable<E> for Named<C> {
    fn enforce(&self, env: &mut E) -> EnforcementStatus {
        self.inner.enforce(env)
    }
}

/// Conjunction that can also *enforce*: drives every child to compliance.
///
/// Unlike [`AllOf`] (check-only trait objects), `EnforceAll` holds
/// [`CheckEnforce`](crate::CheckEnforce) objects so the planner can use it
/// as a single composite remediation unit.
pub struct EnforceAll<E: ?Sized> {
    children: Vec<Box<dyn crate::CheckEnforce<E> + Send + Sync>>,
}

impl<E: ?Sized> EnforceAll<E> {
    /// Creates an empty composite.
    #[must_use]
    pub fn new() -> Self {
        EnforceAll {
            children: Vec::new(),
        }
    }

    /// Adds a child (builder style).
    #[must_use]
    pub fn with<C>(mut self, child: C) -> Self
    where
        C: crate::CheckEnforce<E> + Send + Sync + 'static,
    {
        self.children.push(Box::new(child));
        self
    }

    /// Number of direct children.
    #[must_use]
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// `true` iff there are no children.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

impl<E: ?Sized> Default for EnforceAll<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: ?Sized> Checkable<E> for EnforceAll<E> {
    fn check(&self, env: &E) -> CheckStatus {
        CheckStatus::all(self.children.iter().map(|c| c.check(env)))
    }
}

impl<E: ?Sized> Enforceable<E> for EnforceAll<E> {
    fn enforce(&self, env: &mut E) -> EnforcementStatus {
        // Enforce only the children that currently fail; this keeps the
        // composite idempotent whenever its children are.
        let mut outcome = EnforcementStatus::Success;
        for child in &self.children {
            if child.check(env) != CheckStatus::Pass {
                outcome = outcome.and(child.enforce(env));
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Env {
        a: bool,
        b: bool,
    }

    fn a_on() -> impl Checkable<Env> + Send + Sync {
        |e: &Env| CheckStatus::from(e.a)
    }
    fn b_on() -> impl Checkable<Env> + Send + Sync {
        |e: &Env| CheckStatus::from(e.b)
    }

    #[test]
    fn all_of_requires_every_child() {
        let all = AllOf::new(vec![]).with(a_on()).with(b_on());
        assert_eq!(all.check(&Env { a: true, b: true }), CheckStatus::Pass);
        assert_eq!(all.check(&Env { a: true, b: false }), CheckStatus::Fail);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn any_of_requires_one_child() {
        let any = AnyOf::new(vec![]).with(a_on()).with(b_on());
        assert_eq!(any.check(&Env { a: false, b: true }), CheckStatus::Pass);
        assert_eq!(any.check(&Env { a: false, b: false }), CheckStatus::Fail);
    }

    #[test]
    fn empty_identities() {
        let all: AllOf<Env> = AllOf::default();
        let any: AnyOf<Env> = AnyOf::default();
        assert!(all.is_empty() && any.is_empty());
        let env = Env { a: false, b: false };
        assert_eq!(all.check(&env), CheckStatus::Pass);
        assert_eq!(any.check(&env), CheckStatus::Fail);
    }

    #[test]
    fn not_flips_and_preserves_incomplete() {
        let unknown = |_: &Env| CheckStatus::Incomplete;
        assert_eq!(
            Not::new(unknown).check(&Env { a: false, b: false }),
            CheckStatus::Incomplete
        );
        let n = Not::new(a_on());
        assert_eq!(n.check(&Env { a: true, b: false }), CheckStatus::Fail);
    }

    #[test]
    fn named_is_transparent() {
        let named = Named::new("A is on", a_on());
        assert_eq!(named.name(), "A is on");
        assert_eq!(named.check(&Env { a: true, b: false }), CheckStatus::Pass);
    }

    struct Flag;
    impl Checkable<bool> for Flag {
        fn check(&self, env: &bool) -> CheckStatus {
            CheckStatus::from(*env)
        }
    }
    impl Enforceable<bool> for Flag {
        fn enforce(&self, env: &mut bool) -> EnforcementStatus {
            *env = true;
            EnforcementStatus::Success
        }
    }

    #[test]
    fn enforce_all_fixes_failing_children() {
        let composite = EnforceAll::new().with(Flag).with(Flag);
        let mut env = false;
        assert_eq!(composite.check(&env), CheckStatus::Fail);
        assert_eq!(composite.enforce(&mut env), EnforcementStatus::Success);
        assert_eq!(composite.check(&env), CheckStatus::Pass);
        // Idempotent: enforcing again is still a success.
        assert_eq!(composite.enforce(&mut env), EnforcementStatus::Success);
    }
}
