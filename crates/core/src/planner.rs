//! The remediation planner: check → enforce → re-check to a fixpoint.
//!
//! This is the engine behind "automated protection": given a catalogue and
//! a mutable environment, the planner sweeps all requirements, enforces the
//! failing enforceable ones, and repeats until compliant, stuck, or out of
//! iterations. Enforcing one requirement may *break* another (e.g. removing
//! a package that a second requirement expects), which is why a single
//! sweep is not enough and why the planner tracks convergence explicitly.

use crate::{
    Catalog, CheckStatus, ComplianceReport, EnforcementStatus, RequirementResult, WaiverSet,
};

/// Planner tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Maximum number of full check/enforce sweeps (default 4).
    pub max_iterations: u32,
    /// If `true`, requirements whose check is `Incomplete` are also
    /// enforced (default: only `Fail` triggers enforcement).
    pub enforce_incomplete: bool,
    /// If `true`, stop the whole run at the first `Failure` enforcement
    /// outcome (default `false`: keep remediating the rest).
    pub fail_fast: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            max_iterations: 4,
            enforce_incomplete: false,
            fail_fast: false,
        }
    }
}

/// How a planner run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerOutcome {
    /// Every requirement passes.
    Compliant,
    /// Some requirements still fail but no enforcement changed anything in
    /// the last sweep — further iterations would loop.
    Stuck,
    /// The iteration budget ran out while progress was still being made.
    IterationBudgetExhausted,
    /// `fail_fast` was set and an enforcement reported `Failure`.
    Aborted,
}

/// Drives a [`Catalog`] of requirements against a mutable environment.
///
/// ```
/// use vdo_core::{Catalog, CheckStatus, Checkable, EnforcementStatus, Enforceable,
///                PlannerConfig, PlannerOutcome, RemediationPlanner, RequirementSpec};
///
/// struct AtLeast(u32);
/// impl Checkable<u32> for AtLeast {
///     fn check(&self, env: &u32) -> CheckStatus { CheckStatus::from(*env >= self.0) }
/// }
/// impl Enforceable<u32> for AtLeast {
///     fn enforce(&self, env: &mut u32) -> EnforcementStatus {
///         *env = self.0; EnforcementStatus::Success
///     }
/// }
///
/// let mut cat = Catalog::new();
/// cat.register_enforceable("demo", RequirementSpec::builder("V-1").build(), AtLeast(10));
/// let planner = RemediationPlanner::new(PlannerConfig::default());
/// let mut env = 0u32;
/// let run = planner.run(&cat, &mut env);
/// assert_eq!(run.outcome, PlannerOutcome::Compliant);
/// assert_eq!(env, 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RemediationPlanner {
    config: PlannerConfig,
    obs: vdo_obs::Registry,
    journal: vdo_trace::Journal,
    trace_seed: u64,
}

/// Everything a planner run produced.
#[derive(Debug, Clone)]
pub struct PlannerRun {
    /// Why the run stopped.
    pub outcome: PlannerOutcome,
    /// Number of full sweeps performed.
    pub iterations: u32,
    /// Total individual enforcement attempts.
    pub enforcements: u32,
    /// Per-requirement verdicts (initial vs final).
    pub report: ComplianceReport,
}

impl RemediationPlanner {
    /// Creates a planner with the given configuration.
    #[must_use]
    pub fn new(config: PlannerConfig) -> Self {
        RemediationPlanner {
            config,
            obs: vdo_obs::Registry::disabled(),
            journal: vdo_trace::Journal::default(),
            trace_seed: 0,
        }
    }

    /// Attaches an observability registry: every run records the
    /// `core.checks` / `core.enforcements` counters and times itself
    /// under the `core/planner` span. The default planner carries a
    /// disabled registry, so instrumentation costs one branch per
    /// event when unused.
    #[must_use]
    pub fn observed(mut self, obs: vdo_obs::Registry) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches a trace journal: every enforcement attempt is recorded
    /// as a `core.enforce` event whose trace is a child of the finding's
    /// requirement root (`TraceContext::root(trace_seed, finding_id)`),
    /// so remediations resolve to the requirement they serve. The
    /// default planner carries a disabled journal — the untraced cost is
    /// one branch per enforcement.
    #[must_use]
    pub fn traced(mut self, journal: vdo_trace::Journal, trace_seed: u64) -> Self {
        self.journal = journal;
        self.trace_seed = trace_seed;
        self
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Assesses the catalogue and remediates until compliant, stuck, or
    /// out of budget. See [`PlannerRun`] for what is reported.
    pub fn run<E: ?Sized>(&self, catalog: &Catalog<E>, env: &mut E) -> PlannerRun {
        self.run_with_waivers(catalog, env, &WaiverSet::new(), 0)
    }

    /// Like [`run`](Self::run), but findings covered by an active waiver
    /// (at time `now`) are neither enforced nor counted against
    /// compliance; the report marks them as waived.
    pub fn run_with_waivers<E: ?Sized>(
        &self,
        catalog: &Catalog<E>,
        env: &mut E,
        waivers: &WaiverSet,
        now: u64,
    ) -> PlannerRun {
        let _span = self.obs.span("core/planner");
        let checks_counter = self.obs.counter("core.checks");
        let enforcements_counter = self.obs.counter("core.enforcements");
        let n = catalog.len();
        let waived: Vec<bool> = catalog
            .iter()
            .map(|e| waivers.is_waived(e.spec().finding_id(), now))
            .collect();
        let initial: Vec<CheckStatus> = catalog.iter().map(|e| e.check(env)).collect();
        checks_counter.add(n as u64);
        let mut current = initial.clone();
        let mut attempts = vec![0u32; n];
        let mut last_enforcement: Vec<Option<EnforcementStatus>> = vec![None; n];
        let mut enforcements = 0u32;
        let mut iterations = 0u32;
        let all_pass = |cur: &[CheckStatus], waived: &[bool]| {
            cur.iter().zip(waived).all(|(s, &w)| w || s.is_pass())
        };
        let mut outcome = if all_pass(&current, &waived) {
            PlannerOutcome::Compliant
        } else {
            PlannerOutcome::IterationBudgetExhausted
        };

        'sweeps: while iterations < self.config.max_iterations && !all_pass(&current, &waived) {
            iterations += 1;
            let mut any_progress = false;
            for (i, entry) in catalog.iter().enumerate() {
                let needs_fix = match current[i] {
                    CheckStatus::Fail => true,
                    CheckStatus::Incomplete => self.config.enforce_incomplete,
                    CheckStatus::Pass => false,
                };
                if !needs_fix || !entry.is_enforceable() || waived[i] {
                    continue;
                }
                let status = entry.enforce(env);
                attempts[i] += 1;
                enforcements += 1;
                enforcements_counter.inc();
                last_enforcement[i] = Some(status);
                if self.journal.is_enabled() {
                    let rule = entry.spec().finding_id();
                    let ctx = vdo_trace::TraceContext::root(self.trace_seed, rule)
                        .child_u64("enforce", u64::from(attempts[i]));
                    self.journal.emit(
                        vdo_trace::Event::info("core.enforce")
                            .at(now)
                            .trace(ctx)
                            .field("rule", rule)
                            .field("success", status == EnforcementStatus::Success),
                    );
                }
                if status == EnforcementStatus::Failure && self.config.fail_fast {
                    outcome = PlannerOutcome::Aborted;
                    // Refresh verdicts before reporting.
                    for (j, e) in catalog.iter().enumerate() {
                        current[j] = e.check(env);
                    }
                    checks_counter.add(n as u64);
                    break 'sweeps;
                }
            }
            // Re-check everything: enforcements may interact.
            for (j, e) in catalog.iter().enumerate() {
                let new = e.check(env);
                if new != current[j] {
                    any_progress = true;
                }
                current[j] = new;
            }
            checks_counter.add(n as u64);
            if all_pass(&current, &waived) {
                outcome = PlannerOutcome::Compliant;
                break;
            }
            if !any_progress {
                outcome = PlannerOutcome::Stuck;
                break;
            }
        }
        if iterations == 0 && all_pass(&current, &waived) {
            outcome = PlannerOutcome::Compliant;
        }

        let report: ComplianceReport = catalog
            .iter()
            .enumerate()
            .map(|(i, e)| RequirementResult {
                finding_id: e.spec().finding_id().to_string(),
                title: e.spec().title().to_string(),
                severity: e.spec().severity(),
                initial: initial[i],
                final_status: current[i],
                enforce_attempts: attempts[i],
                last_enforcement: last_enforcement[i],
                waived: waived[i],
            })
            .collect();

        PlannerRun {
            outcome,
            iterations,
            enforcements,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Checkable, Enforceable, RequirementSpec, Severity};

    fn spec(id: &str) -> RequirementSpec {
        RequirementSpec::builder(id)
            .title(id)
            .severity(Severity::Medium)
            .build()
    }

    /// Requires `env[idx] == want`; enforcing sets it.
    struct Slot {
        idx: usize,
        want: bool,
    }
    impl Checkable<Vec<bool>> for Slot {
        fn check(&self, env: &Vec<bool>) -> CheckStatus {
            CheckStatus::from(env[self.idx] == self.want)
        }
    }
    impl Enforceable<Vec<bool>> for Slot {
        fn enforce(&self, env: &mut Vec<bool>) -> EnforcementStatus {
            env[self.idx] = self.want;
            EnforcementStatus::Success
        }
    }

    #[test]
    fn compliant_environment_needs_no_sweeps() {
        let mut cat = Catalog::new();
        cat.register_enforceable("p", spec("V-1"), Slot { idx: 0, want: true });
        let mut env = vec![true];
        let run = RemediationPlanner::default().run(&cat, &mut env);
        assert_eq!(run.outcome, PlannerOutcome::Compliant);
        assert_eq!(run.iterations, 0);
        assert_eq!(run.enforcements, 0);
    }

    #[test]
    fn single_sweep_remediation() {
        let mut cat = Catalog::new();
        cat.register_enforceable("p", spec("V-1"), Slot { idx: 0, want: true });
        cat.register_enforceable("p", spec("V-2"), Slot { idx: 1, want: true });
        let mut env = vec![false, false];
        let run = RemediationPlanner::default().run(&cat, &mut env);
        assert_eq!(run.outcome, PlannerOutcome::Compliant);
        assert_eq!(run.iterations, 1);
        assert_eq!(run.enforcements, 2);
        assert_eq!(run.report.summary().remediated, 2);
        assert!(env.iter().all(|&b| b));
    }

    /// A pair of requirements whose enforcements interact: fixing A breaks
    /// B's precondition once, so two sweeps are needed.
    struct CopyFrom {
        src: usize,
        dst: usize,
    }
    impl Checkable<Vec<bool>> for CopyFrom {
        fn check(&self, env: &Vec<bool>) -> CheckStatus {
            CheckStatus::from(env[self.dst])
        }
    }
    impl Enforceable<Vec<bool>> for CopyFrom {
        fn enforce(&self, env: &mut Vec<bool>) -> EnforcementStatus {
            // Can only set dst if src is already set (dependency).
            if env[self.src] {
                env[self.dst] = true;
                EnforcementStatus::Success
            } else {
                EnforcementStatus::Incomplete
            }
        }
    }

    #[test]
    fn dependent_requirements_converge_over_multiple_sweeps() {
        let mut cat = Catalog::new();
        // V-2 depends on V-1's effect. Register dependent first so one
        // sweep is insufficient.
        cat.register_enforceable("p", spec("V-2"), CopyFrom { src: 0, dst: 1 });
        cat.register_enforceable("p", spec("V-1"), Slot { idx: 0, want: true });
        let mut env = vec![false, false];
        let run = RemediationPlanner::default().run(&cat, &mut env);
        assert_eq!(run.outcome, PlannerOutcome::Compliant);
        assert_eq!(run.iterations, 2);
        assert!(env[1]);
    }

    /// Never satisfiable, never changes the environment.
    struct Broken;
    impl Checkable<Vec<bool>> for Broken {
        fn check(&self, _: &Vec<bool>) -> CheckStatus {
            CheckStatus::Fail
        }
    }
    impl Enforceable<Vec<bool>> for Broken {
        fn enforce(&self, _: &mut Vec<bool>) -> EnforcementStatus {
            EnforcementStatus::Failure
        }
    }

    #[test]
    fn stuck_detection() {
        let mut cat = Catalog::new();
        cat.register_enforceable("p", spec("V-1"), Broken);
        let mut env = vec![];
        let run = RemediationPlanner::default().run(&cat, &mut env);
        assert_eq!(run.outcome, PlannerOutcome::Stuck);
        assert!(run.iterations < PlannerConfig::default().max_iterations);
        assert!(!run.report.is_fully_compliant());
    }

    #[test]
    fn fail_fast_aborts() {
        let mut cat = Catalog::new();
        cat.register_enforceable("p", spec("V-1"), Broken);
        cat.register_enforceable("p", spec("V-2"), Slot { idx: 0, want: true });
        let planner = RemediationPlanner::new(PlannerConfig {
            fail_fast: true,
            ..PlannerConfig::default()
        });
        let mut env = vec![false];
        let run = planner.run(&cat, &mut env);
        assert_eq!(run.outcome, PlannerOutcome::Aborted);
        assert!(!env[0], "fail_fast must stop before later enforcements");
    }

    #[test]
    fn waived_findings_do_not_block_or_get_enforced() {
        let mut cat = Catalog::new();
        cat.register_enforceable("p", spec("V-1"), Slot { idx: 0, want: true });
        cat.register_enforceable("p", spec("V-2"), Slot { idx: 1, want: true });
        let mut waivers = WaiverSet::new();
        waivers.waive("V-2", "hardware constraint until refresh");
        let mut env = vec![false, false];
        let run = RemediationPlanner::default().run_with_waivers(&cat, &mut env, &waivers, 0);
        assert_eq!(
            run.outcome,
            PlannerOutcome::Compliant,
            "waived V-2 must not block"
        );
        assert!(env[0], "V-1 enforced");
        assert!(!env[1], "V-2 skipped — the waiver means hands off");
        let summary = run.report.summary();
        assert_eq!(summary.waived, 1);
        assert_eq!(summary.failing, 0, "waived failure is not an open finding");
        assert!(run.report.open_findings().is_empty());
        assert!(run.report.is_fully_compliant());

        // An expired waiver stops protecting.
        let mut waivers = WaiverSet::new();
        waivers.add(crate::Waiver {
            finding_id: "V-2".into(),
            reason: "temporary".into(),
            expires_at: Some(10),
        });
        let mut env = vec![false, false];
        let run = RemediationPlanner::default().run_with_waivers(&cat, &mut env, &waivers, 11);
        assert!(env[1], "expired waiver: V-2 enforced again");
        assert_eq!(run.report.summary().waived, 0);
    }

    #[test]
    fn check_only_requirements_are_never_enforced() {
        let mut cat: Catalog<Vec<bool>> = Catalog::new();
        cat.register("p", spec("V-1"), |_: &Vec<bool>| CheckStatus::Fail);
        let mut env = vec![];
        let run = RemediationPlanner::default().run(&cat, &mut env);
        assert_eq!(run.enforcements, 0);
        assert_eq!(run.outcome, PlannerOutcome::Stuck);
    }

    #[test]
    fn silent_ratchet_counts_as_stuck() {
        // Enforcement mutates the environment but the verdict never
        // changes within a sweep — the planner must not spin on it.
        struct Ratchet;
        impl Checkable<u32> for Ratchet {
            fn check(&self, env: &u32) -> CheckStatus {
                CheckStatus::from(*env >= 10)
            }
        }
        impl Enforceable<u32> for Ratchet {
            fn enforce(&self, env: &mut u32) -> EnforcementStatus {
                *env += 1;
                EnforcementStatus::Incomplete
            }
        }
        let mut cat = Catalog::new();
        cat.register_enforceable("p", spec("V-1"), Ratchet);
        let mut env = 0u32;
        let run = RemediationPlanner::default().run(&cat, &mut env);
        assert_eq!(run.outcome, PlannerOutcome::Stuck);
        assert_eq!(run.iterations, 1);
        assert_eq!(env, 1);
    }

    #[test]
    fn observed_planner_records_checks_and_enforcements() {
        let registry = vdo_obs::Registry::new();
        let mut cat = Catalog::new();
        cat.register_enforceable("p", spec("V-1"), Slot { idx: 0, want: true });
        let planner = RemediationPlanner::default().observed(registry.clone());
        let mut env = vec![false];
        let run = planner.run(&cat, &mut env);
        assert_eq!(run.outcome, PlannerOutcome::Compliant);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("core.enforcements"), Some(1));
        assert_eq!(snap.counter("core.checks"), Some(2), "initial + re-check");
        assert_eq!(snap.span_count("core/planner"), Some(1));
    }

    #[test]
    fn traced_planner_roots_enforcements_at_their_requirements() {
        use vdo_trace::{Journal, TraceContext};
        let journal = Journal::new();
        let mut cat = Catalog::new();
        cat.register_enforceable("p", spec("V-1"), Slot { idx: 0, want: true });
        cat.register_enforceable("p", spec("V-2"), Slot { idx: 1, want: true });
        let planner = RemediationPlanner::default().traced(journal.clone(), 5);
        let mut env = vec![false, true];
        let run = planner.run(&cat, &mut env);
        assert_eq!(run.outcome, PlannerOutcome::Compliant);
        let snap = journal.snapshot();
        let enforces = snap.events_named("core.enforce");
        assert_eq!(enforces.len(), 1, "only the failing finding is enforced");
        let t = enforces[0].trace.expect("traced planner stamps events");
        assert_eq!(t.trace_id, TraceContext::root(5, "V-1").trace_id);
        // The default planner journals nothing.
        let mut env = vec![false, false];
        RemediationPlanner::default().run(&cat, &mut env);
        assert_eq!(snap.events.len(), journal.len(), "no stray events");
    }

    #[test]
    fn iteration_budget_respected() {
        // A 3-link dependency chain makes real verdict progress each
        // sweep; with budget 1 the run must stop as exhausted.
        let mut cat = Catalog::new();
        cat.register_enforceable("p", spec("V-3"), CopyFrom { src: 1, dst: 2 });
        cat.register_enforceable("p", spec("V-2"), CopyFrom { src: 0, dst: 1 });
        cat.register_enforceable("p", spec("V-1"), Slot { idx: 0, want: true });
        let planner = RemediationPlanner::new(PlannerConfig {
            max_iterations: 1,
            ..PlannerConfig::default()
        });
        let mut env = vec![false, false, false];
        let run = planner.run(&cat, &mut env);
        assert_eq!(run.outcome, PlannerOutcome::IterationBudgetExhausted);
        assert_eq!(run.iterations, 1);
        assert!(env[0] && !env[2]);

        // With a generous budget the same chain converges.
        let mut env = vec![false, false, false];
        let run = RemediationPlanner::default().run(&cat, &mut env);
        assert_eq!(run.outcome, PlannerOutcome::Compliant);
        assert!(env.iter().all(|&b| b));
    }
}
