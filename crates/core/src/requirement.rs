//! Structured requirement specifications.
//!
//! [`RequirementSpec`] is a direct mapping of the structure of STIG
//! findings as presented on stigviewer.com — the same fields the Java
//! `rqcode.concepts.Requirement` class exposes as methods (`findingID`,
//! `ruleID`, `severity`, `checkText`, `fixText`, …).

use std::fmt;

/// Severity category of a security requirement.
///
/// STIGs use CAT I (high) / CAT II (medium) / CAT III (low); IEC 62443
/// security levels map onto the same coarse ordering for gate decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// CAT III — low impact.
    Low,
    /// CAT II — medium impact.
    Medium,
    /// CAT I — high impact; any open finding blocks promotion.
    High,
}

impl Severity {
    /// STIG category label (`"CAT I"`, `"CAT II"`, `"CAT III"`).
    #[must_use]
    pub fn stig_category(self) -> &'static str {
        match self {
            Severity::High => "CAT I",
            Severity::Medium => "CAT II",
            Severity::Low => "CAT III",
        }
    }

    /// Parses the spellings used in STIG exports (`high`, `medium`, `low`,
    /// `CAT I`…). Returns `None` for anything else.
    #[must_use]
    pub fn parse(s: &str) -> Option<Severity> {
        match s.trim().to_ascii_lowercase().as_str() {
            "high" | "cat i" | "cat1" | "cat_i" | "i" => Some(Severity::High),
            "medium" | "cat ii" | "cat2" | "cat_ii" | "ii" => Some(Severity::Medium),
            "low" | "cat iii" | "cat3" | "cat_iii" | "iii" => Some(Severity::Low),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::High => "high",
            Severity::Medium => "medium",
            Severity::Low => "low",
        })
    }
}

/// Structured metadata of one security requirement (STIG finding shape).
///
/// Construct with [`RequirementSpec::builder`]:
///
/// ```
/// use vdo_core::{RequirementSpec, Severity};
///
/// let spec = RequirementSpec::builder("V-219157")
///     .title("The Ubuntu operating system must not have the NIS package installed")
///     .severity(Severity::Medium)
///     .stig("Canonical Ubuntu 18.04 LTS STIG")
///     .rule_id("SV-219157r508662_rule")
///     .description("Removing the NIS package decreases the risk of \
///                   accidental activation of NIS/NIS+ services.")
///     .check_text("Run: dpkg -l | grep nis — no output expected.")
///     .fix_text("Run: sudo apt-get remove nis")
///     .build();
/// assert_eq!(spec.finding_id(), "V-219157");
/// assert_eq!(spec.severity(), Severity::Medium);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RequirementSpec {
    finding_id: String,
    title: String,
    version: String,
    rule_id: String,
    ia_controls: String,
    severity: Severity,
    description: String,
    stig: String,
    date: String,
    check_text: String,
    fix_text: String,
}

impl RequirementSpec {
    /// Starts building a spec for the given finding id (e.g. `"V-219157"`).
    #[must_use]
    pub fn builder(finding_id: impl Into<String>) -> RequirementSpecBuilder {
        RequirementSpecBuilder {
            spec: RequirementSpec {
                finding_id: finding_id.into(),
                title: String::new(),
                version: String::new(),
                rule_id: String::new(),
                ia_controls: String::new(),
                severity: Severity::Medium,
                description: String::new(),
                stig: String::new(),
                date: String::new(),
                check_text: String::new(),
                fix_text: String::new(),
            },
        }
    }

    /// STIG finding id, e.g. `"V-219157"`.
    #[must_use]
    pub fn finding_id(&self) -> &str {
        &self.finding_id
    }

    /// One-line requirement title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// STIG version string.
    #[must_use]
    pub fn version(&self) -> &str {
        &self.version
    }

    /// Rule id, e.g. `"SV-219157r508662_rule"`.
    #[must_use]
    pub fn rule_id(&self) -> &str {
        &self.rule_id
    }

    /// IA controls annotation (often empty in modern STIGs).
    #[must_use]
    pub fn ia_controls(&self) -> &str {
        &self.ia_controls
    }

    /// Severity category.
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// Long-form rationale text.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Name of the STIG this finding belongs to.
    #[must_use]
    pub fn stig(&self) -> &str {
        &self.stig
    }

    /// Publication date of the STIG revision.
    #[must_use]
    pub fn date(&self) -> &str {
        &self.date
    }

    /// Manual check procedure text.
    #[must_use]
    pub fn check_text(&self) -> &str {
        &self.check_text
    }

    /// Manual fix procedure text.
    #[must_use]
    pub fn fix_text(&self) -> &str {
        &self.fix_text
    }

    /// Renders the finding as a plain-text document — the counterpart of
    /// the Java prototype's `toString()` ("a crude parsing of the finding
    /// specification into a document").
    #[must_use]
    pub fn to_document(&self) -> String {
        let mut doc = String::new();
        let mut field = |k: &str, v: &str| {
            if !v.is_empty() {
                doc.push_str(k);
                doc.push_str(": ");
                doc.push_str(v);
                doc.push('\n');
            }
        };
        field("Finding ID", &self.finding_id);
        field("Title", &self.title);
        field("Version", &self.version);
        field("Rule ID", &self.rule_id);
        field("IA Controls", &self.ia_controls);
        field("Severity", self.severity.stig_category());
        field("STIG", &self.stig);
        field("Date", &self.date);
        field("Description", &self.description);
        field("Check Text", &self.check_text);
        field("Fix Text", &self.fix_text);
        doc
    }
}

impl fmt::Display for RequirementSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.finding_id, self.title)
    }
}

/// Builder for [`RequirementSpec`]; every field except the finding id is
/// optional and defaults to empty / [`Severity::Medium`].
#[derive(Debug, Clone)]
pub struct RequirementSpecBuilder {
    spec: RequirementSpec,
}

impl RequirementSpecBuilder {
    /// Sets the one-line title.
    #[must_use]
    pub fn title(mut self, v: impl Into<String>) -> Self {
        self.spec.title = v.into();
        self
    }

    /// Sets the STIG version string.
    #[must_use]
    pub fn version(mut self, v: impl Into<String>) -> Self {
        self.spec.version = v.into();
        self
    }

    /// Sets the rule id.
    #[must_use]
    pub fn rule_id(mut self, v: impl Into<String>) -> Self {
        self.spec.rule_id = v.into();
        self
    }

    /// Sets the IA controls annotation.
    #[must_use]
    pub fn ia_controls(mut self, v: impl Into<String>) -> Self {
        self.spec.ia_controls = v.into();
        self
    }

    /// Sets the severity (default [`Severity::Medium`]).
    #[must_use]
    pub fn severity(mut self, v: Severity) -> Self {
        self.spec.severity = v;
        self
    }

    /// Sets the rationale text.
    #[must_use]
    pub fn description(mut self, v: impl Into<String>) -> Self {
        self.spec.description = v.into();
        self
    }

    /// Sets the owning STIG name.
    #[must_use]
    pub fn stig(mut self, v: impl Into<String>) -> Self {
        self.spec.stig = v.into();
        self
    }

    /// Sets the STIG revision date.
    #[must_use]
    pub fn date(mut self, v: impl Into<String>) -> Self {
        self.spec.date = v.into();
        self
    }

    /// Sets the manual check procedure.
    #[must_use]
    pub fn check_text(mut self, v: impl Into<String>) -> Self {
        self.spec.check_text = v.into();
        self
    }

    /// Sets the manual fix procedure.
    #[must_use]
    pub fn fix_text(mut self, v: impl Into<String>) -> Self {
        self.spec.fix_text = v.into();
        self
    }

    /// Finishes building.
    #[must_use]
    pub fn build(self) -> RequirementSpec {
        self.spec
    }
}

/// A named requirement: something with a [`RequirementSpec`].
///
/// Concrete STIG requirement types in `vdo-stigs` implement this so that
/// catalogues can inventory their metadata without knowing the
/// environment type they check against.
pub trait Requirement {
    /// The structured specification of this requirement.
    fn spec(&self) -> &RequirementSpec;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RequirementSpec {
        RequirementSpec::builder("V-0001")
            .title("Sample")
            .severity(Severity::High)
            .stig("Test STIG")
            .date("2021-06-16")
            .check_text("look")
            .fix_text("fix")
            .build()
    }

    #[test]
    fn builder_round_trip() {
        let s = sample();
        assert_eq!(s.finding_id(), "V-0001");
        assert_eq!(s.title(), "Sample");
        assert_eq!(s.severity(), Severity::High);
        assert_eq!(s.stig(), "Test STIG");
        assert_eq!(s.check_text(), "look");
        assert_eq!(s.fix_text(), "fix");
        assert_eq!(s.version(), "");
    }

    #[test]
    fn document_contains_populated_fields_only() {
        let doc = sample().to_document();
        assert!(doc.contains("Finding ID: V-0001"));
        assert!(doc.contains("Severity: CAT I"));
        assert!(!doc.contains("Rule ID"), "empty field must be omitted");
    }

    #[test]
    fn severity_ordering_and_labels() {
        assert!(Severity::High > Severity::Medium);
        assert!(Severity::Medium > Severity::Low);
        assert_eq!(Severity::High.stig_category(), "CAT I");
        assert_eq!(Severity::Low.to_string(), "low");
    }

    #[test]
    fn severity_parsing() {
        assert_eq!(Severity::parse("HIGH"), Some(Severity::High));
        assert_eq!(Severity::parse("cat ii"), Some(Severity::Medium));
        assert_eq!(Severity::parse(" CAT III "), Some(Severity::Low));
        assert_eq!(Severity::parse("critical"), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(sample().to_string(), "[V-0001] Sample");
    }
}
