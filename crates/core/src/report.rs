//! Compliance reports.
//!
//! A [`ComplianceReport`] records per-requirement verdicts from a catalogue
//! sweep (and, after a planner run, the enforcement history), plus rollups
//! by severity — the artefact a DevOps gate or an auditor consumes.

use std::fmt;

use crate::{CheckStatus, EnforcementStatus, Severity};

/// Verdict for a single requirement within a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequirementResult {
    /// Finding id of the requirement (e.g. `"V-219157"`).
    pub finding_id: String,
    /// Requirement title.
    pub title: String,
    /// Severity of the requirement.
    pub severity: Severity,
    /// Verdict before any enforcement.
    pub initial: CheckStatus,
    /// Verdict after the planner finished (equals `initial` if the
    /// planner did not run or did not touch this requirement).
    pub final_status: CheckStatus,
    /// Number of enforcement attempts made on this requirement.
    pub enforce_attempts: u32,
    /// Outcome of the last enforcement attempt, if any.
    pub last_enforcement: Option<EnforcementStatus>,
    /// `true` iff an active waiver covers this finding (accepted risk):
    /// the planner does not enforce it and it does not block compliance.
    pub waived: bool,
}

impl RequirementResult {
    /// `true` iff the requirement ended compliant (waived findings count
    /// as accepted, not compliant — query [`waived`](Self::waived)).
    #[must_use]
    pub fn is_compliant(&self) -> bool {
        self.final_status.is_pass()
    }

    /// `true` iff the planner repaired this requirement (failed initially,
    /// passes now).
    #[must_use]
    pub fn was_remediated(&self) -> bool {
        self.initial.is_fail() && self.final_status.is_pass()
    }
}

/// Aggregated counts over a report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReportSummary {
    /// Total requirements assessed.
    pub total: usize,
    /// Requirements passing at the end.
    pub passing: usize,
    /// Requirements failing at the end.
    pub failing: usize,
    /// Requirements undecided at the end.
    pub incomplete: usize,
    /// Requirements that the planner repaired.
    pub remediated: usize,
    /// Failing CAT I (high-severity) findings at the end.
    pub open_high: usize,
    /// Findings covered by an active waiver.
    pub waived: usize,
}

impl ReportSummary {
    /// Compliance ratio in `[0, 1]`; an empty report is vacuously 1.
    #[must_use]
    pub fn compliance_ratio(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.passing as f64 / self.total as f64
        }
    }
}

/// Result of assessing (and optionally remediating) a set of requirements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComplianceReport {
    results: Vec<RequirementResult>,
}

impl ComplianceReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new() -> Self {
        ComplianceReport::default()
    }

    /// Appends one requirement verdict.
    pub fn push(&mut self, result: RequirementResult) {
        self.results.push(result);
    }

    /// All per-requirement results, in assessment order.
    #[must_use]
    pub fn results(&self) -> &[RequirementResult] {
        &self.results
    }

    /// Number of assessed requirements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// `true` iff nothing was assessed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// `true` iff every non-waived requirement ended `Pass`.
    #[must_use]
    pub fn is_fully_compliant(&self) -> bool {
        self.results.iter().all(|r| r.is_compliant() || r.waived)
    }

    /// Results that ended failing (waivers excluded), most severe first.
    #[must_use]
    pub fn open_findings(&self) -> Vec<&RequirementResult> {
        let mut open: Vec<&RequirementResult> = self
            .results
            .iter()
            .filter(|r| !r.final_status.is_pass() && !r.waived)
            .collect();
        open.sort_by_key(|r| std::cmp::Reverse(r.severity));
        open
    }

    /// Rollup counts.
    #[must_use]
    pub fn summary(&self) -> ReportSummary {
        let mut s = ReportSummary {
            total: self.results.len(),
            ..ReportSummary::default()
        };
        for r in &self.results {
            if r.waived {
                s.waived += 1;
            }
            match r.final_status {
                CheckStatus::Pass => s.passing += 1,
                CheckStatus::Fail => {
                    if !r.waived {
                        s.failing += 1;
                        if r.severity == Severity::High {
                            s.open_high += 1;
                        }
                    }
                }
                CheckStatus::Incomplete => {
                    if !r.waived {
                        s.incomplete += 1;
                    }
                }
            }
            if r.was_remediated() {
                s.remediated += 1;
            }
        }
        s
    }

    /// Renders the report as CSV (header + one row per requirement) for
    /// ingestion by external dashboards.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("finding_id,severity,initial,final,enforce_attempts,title\n");
        for r in &self.results {
            // Titles may contain commas; quote them and double any quotes.
            let title = r.title.replace('"', "\"\"");
            out.push_str(&format!(
                "{},{},{},{},{},\"{}\"\n",
                r.finding_id, r.severity, r.initial, r.final_status, r.enforce_attempts, title
            ));
        }
        out
    }

    /// Renders a fixed-width text table, one row per requirement.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:<8} {:>10} {:>10} {:>8}  {}\n",
            "FINDING", "SEV", "INITIAL", "FINAL", "ATTEMPTS", "TITLE"
        ));
        for r in &self.results {
            out.push_str(&format!(
                "{:<12} {:<8} {:>10} {:>10} {:>8}  {}\n",
                r.finding_id,
                r.severity.to_string(),
                r.initial.to_string(),
                r.final_status.to_string(),
                r.enforce_attempts,
                r.title
            ));
        }
        let s = self.summary();
        out.push_str(&format!(
            "-- {} total, {} pass, {} fail ({} CAT I open), {} incomplete, {} remediated ({:.1}% compliant)\n",
            s.total,
            s.passing,
            s.failing,
            s.open_high,
            s.incomplete,
            s.remediated,
            100.0 * s.compliance_ratio()
        ));
        out
    }
}

impl FromIterator<RequirementResult> for ComplianceReport {
    fn from_iter<I: IntoIterator<Item = RequirementResult>>(iter: I) -> Self {
        ComplianceReport {
            results: iter.into_iter().collect(),
        }
    }
}

impl Extend<RequirementResult> for ComplianceReport {
    fn extend<I: IntoIterator<Item = RequirementResult>>(&mut self, iter: I) {
        self.results.extend(iter);
    }
}

impl fmt::Display for ComplianceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(
        id: &str,
        sev: Severity,
        initial: CheckStatus,
        fin: CheckStatus,
    ) -> RequirementResult {
        RequirementResult {
            finding_id: id.into(),
            title: format!("req {id}"),
            severity: sev,
            initial,
            final_status: fin,
            enforce_attempts: u32::from(initial != fin),
            last_enforcement: None,
            waived: false,
        }
    }

    fn sample() -> ComplianceReport {
        [
            result("V-1", Severity::High, CheckStatus::Fail, CheckStatus::Pass),
            result(
                "V-2",
                Severity::Medium,
                CheckStatus::Pass,
                CheckStatus::Pass,
            ),
            result("V-3", Severity::High, CheckStatus::Fail, CheckStatus::Fail),
            result(
                "V-4",
                Severity::Low,
                CheckStatus::Incomplete,
                CheckStatus::Incomplete,
            ),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn summary_counts() {
        let s = sample().summary();
        assert_eq!(s.total, 4);
        assert_eq!(s.passing, 2);
        assert_eq!(s.failing, 1);
        assert_eq!(s.incomplete, 1);
        assert_eq!(s.remediated, 1);
        assert_eq!(s.open_high, 1);
        assert!((s.compliance_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn open_findings_sorted_by_severity() {
        let r = sample();
        let open = r.open_findings();
        assert_eq!(open.len(), 2);
        assert_eq!(open[0].finding_id, "V-3"); // High before Low
        assert_eq!(open[1].finding_id, "V-4");
    }

    #[test]
    fn full_compliance_detection() {
        assert!(!sample().is_fully_compliant());
        let all_pass: ComplianceReport = [result(
            "V-9",
            Severity::Low,
            CheckStatus::Pass,
            CheckStatus::Pass,
        )]
        .into_iter()
        .collect();
        assert!(all_pass.is_fully_compliant());
        assert!(ComplianceReport::new().is_fully_compliant());
    }

    #[test]
    fn empty_report_ratio_is_one() {
        assert!((ComplianceReport::new().summary().compliance_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_contains_rows_and_summary() {
        let t = sample().to_table();
        assert!(t.contains("V-1"));
        assert!(t.contains("50.0% compliant"));
    }

    #[test]
    fn csv_escapes_titles() {
        let mut r = sample();
        r.push(RequirementResult {
            finding_id: "V-5".into(),
            title: "has, comma and \"quote\"".into(),
            severity: Severity::Low,
            initial: CheckStatus::Pass,
            final_status: CheckStatus::Pass,
            enforce_attempts: 0,
            last_enforcement: None,
            waived: false,
        });
        let csv = r.to_csv();
        assert!(csv.starts_with("finding_id,severity"));
        assert!(csv.contains("\"has, comma and \"\"quote\"\"\""));
        assert_eq!(csv.lines().count(), 6); // header + 5 rows
    }
}
