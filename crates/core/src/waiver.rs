//! Waivers — accepted risks.
//!
//! Real compliance programmes never run at 100 %: some findings are
//! formally accepted for a period (a vendor dependency needs `rsh`
//! until Q3, a lab machine is exempt from lockout policy). A
//! [`WaiverSet`] records those decisions; the planner skips waived
//! findings and the report marks them, so "open finding" and "accepted
//! risk" stay distinguishable in the numbers.

use std::collections::BTreeMap;
use std::fmt;

/// One accepted risk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Finding this waiver covers (e.g. `"V-219158"`).
    pub finding_id: String,
    /// Why the risk was accepted.
    pub reason: String,
    /// Tick after which the waiver no longer applies (`None` = open
    /// ended). Interpreted on whatever clock the caller uses.
    pub expires_at: Option<u64>,
}

/// A set of waivers, keyed by finding id.
///
/// ```
/// use vdo_core::WaiverSet;
/// let mut waivers = WaiverSet::new();
/// waivers.waive("V-219158", "vendor appliance requires rsh until Q3 migration");
/// assert!(waivers.is_waived("V-219158", 0));
/// assert!(!waivers.is_waived("V-219157", 0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaiverSet {
    waivers: BTreeMap<String, Waiver>,
}

impl WaiverSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        WaiverSet::default()
    }

    /// Adds (or replaces) a waiver. Returns the previous waiver for the
    /// finding, if any.
    pub fn add(&mut self, waiver: Waiver) -> Option<Waiver> {
        self.waivers.insert(waiver.finding_id.clone(), waiver)
    }

    /// Convenience: waive a finding with a reason, open ended.
    pub fn waive(&mut self, finding_id: impl Into<String>, reason: impl Into<String>) {
        let finding_id = finding_id.into();
        self.add(Waiver {
            finding_id,
            reason: reason.into(),
            expires_at: None,
        });
    }

    /// Removes a waiver; returns it if present.
    pub fn revoke(&mut self, finding_id: &str) -> Option<Waiver> {
        self.waivers.remove(finding_id)
    }

    /// `true` iff the finding is waived at time `now`.
    #[must_use]
    pub fn is_waived(&self, finding_id: &str, now: u64) -> bool {
        self.waivers
            .get(finding_id)
            .is_some_and(|w| w.expires_at.is_none_or(|t| now <= t))
    }

    /// The waiver covering a finding, if any (expired or not).
    #[must_use]
    pub fn get(&self, finding_id: &str) -> Option<&Waiver> {
        self.waivers.get(finding_id)
    }

    /// Number of recorded waivers (including expired ones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.waivers.len()
    }

    /// `true` iff no waivers are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.waivers.is_empty()
    }

    /// Iterates over all waivers.
    pub fn iter(&self) -> impl Iterator<Item = &Waiver> {
        self.waivers.values()
    }

    /// Drops waivers that are expired at time `now`; returns how many
    /// were removed.
    pub fn expire(&mut self, now: u64) -> usize {
        let before = self.waivers.len();
        self.waivers
            .retain(|_, w| w.expires_at.is_none_or(|t| now <= t));
        before - self.waivers.len()
    }
}

impl FromIterator<Waiver> for WaiverSet {
    fn from_iter<I: IntoIterator<Item = Waiver>>(iter: I) -> Self {
        let mut set = WaiverSet::new();
        for w in iter {
            set.add(w);
        }
        set
    }
}

impl fmt::Display for WaiverSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for w in self.waivers.values() {
            writeln!(
                f,
                "{}: {} (expires: {})",
                w.finding_id,
                w.reason,
                w.expires_at.map_or("never".to_string(), |t| t.to_string())
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_query_revoke() {
        let mut set = WaiverSet::new();
        assert!(!set.is_waived("V-1", 0));
        set.waive("V-1", "vendor dependency until migration");
        assert!(set.is_waived("V-1", 0));
        assert!(set.is_waived("V-1", u64::MAX));
        assert_eq!(set.len(), 1);
        let w = set.revoke("V-1").unwrap();
        assert_eq!(w.finding_id, "V-1");
        assert!(!set.is_waived("V-1", 0));
    }

    #[test]
    fn expiry_semantics() {
        let mut set = WaiverSet::new();
        set.add(Waiver {
            finding_id: "V-2".into(),
            reason: "lab exemption".into(),
            expires_at: Some(100),
        });
        assert!(set.is_waived("V-2", 100), "expiry is inclusive");
        assert!(!set.is_waived("V-2", 101));
        assert_eq!(set.expire(50), 0);
        assert_eq!(set.expire(101), 1);
        assert!(set.is_empty());
    }

    #[test]
    fn replacement_returns_previous() {
        let mut set = WaiverSet::new();
        set.waive("V-3", "first");
        let prev = set.add(Waiver {
            finding_id: "V-3".into(),
            reason: "second".into(),
            expires_at: None,
        });
        assert_eq!(prev.unwrap().reason, "first");
        assert_eq!(set.get("V-3").unwrap().reason, "second");
    }

    #[test]
    fn collect_and_display() {
        let set: WaiverSet = [Waiver {
            finding_id: "V-4".into(),
            reason: "accepted".into(),
            expires_at: Some(9),
        }]
        .into_iter()
        .collect();
        let s = set.to_string();
        assert!(s.contains("V-4: accepted (expires: 9)"));
        assert_eq!(set.iter().count(), 1);
    }
}
