//! Requirement catalogues.
//!
//! The Java prototype organises requirements in a package tree
//! (`rqcode.patterns.temporal`, `rqcode.stigs.ubuntu`, …) and ships a
//! `Windows10SecurityTechnicalImplementationGuide` class that aggregates
//! "all STIGs". [`Catalog`] is the Rust counterpart: a registry of
//! requirement entries, each carrying its [`RequirementSpec`]
//! metadata, a package path for grouping, and the executable
//! check/enforce capability.

use std::collections::BTreeMap;
use std::fmt;

use crate::{
    CheckEnforce, CheckStatus, Checkable, Enforceable, EnforcementStatus, RequirementSpec, Severity,
};

/// Dot-separated package path used to group catalogue entries, mirroring
/// the Java package tree (`"rqcode.stigs.ubuntu"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackagePath(String);

impl PackagePath {
    /// Creates a package path. Empty segments are not validated here;
    /// paths are opaque grouping keys.
    #[must_use]
    pub fn new(path: impl Into<String>) -> Self {
        PackagePath(path.into())
    }

    /// The full dot-separated path.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterates over the dot-separated segments.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// `true` iff `self` equals `prefix` or lies beneath it.
    #[must_use]
    pub fn starts_with(&self, prefix: &PackagePath) -> bool {
        self.0 == prefix.0
            || (self.0.starts_with(&prefix.0)
                && self.0.as_bytes().get(prefix.0.len()) == Some(&b'.'))
    }
}

impl fmt::Display for PackagePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for PackagePath {
    fn from(s: &str) -> Self {
        PackagePath::new(s)
    }
}

/// Executable capability of a catalogue entry.
enum Capability<E: ?Sized> {
    /// Check-only requirement.
    Check(Box<dyn Checkable<E> + Send + Sync>),
    /// Requirement that can also self-remediate.
    CheckEnforce(Box<dyn CheckEnforce<E> + Send + Sync>),
}

/// One registered requirement: metadata + package + capability.
pub struct CatalogEntry<E: ?Sized> {
    spec: RequirementSpec,
    package: PackagePath,
    capability: Capability<E>,
}

impl<E: ?Sized> CatalogEntry<E> {
    /// The structured specification.
    #[must_use]
    pub fn spec(&self) -> &RequirementSpec {
        &self.spec
    }

    /// The grouping package.
    #[must_use]
    pub fn package(&self) -> &PackagePath {
        &self.package
    }

    /// `true` iff the entry can enforce as well as check.
    #[must_use]
    pub fn is_enforceable(&self) -> bool {
        matches!(self.capability, Capability::CheckEnforce(_))
    }

    /// Checks this entry against `env`.
    pub fn check(&self, env: &E) -> CheckStatus {
        match &self.capability {
            Capability::Check(c) => c.check(env),
            Capability::CheckEnforce(c) => c.check(env),
        }
    }

    /// Enforces this entry on `env`.
    ///
    /// Check-only entries return [`EnforcementStatus::Incomplete`] —
    /// they must be remediated manually.
    pub fn enforce(&self, env: &mut E) -> EnforcementStatus {
        match &self.capability {
            Capability::Check(_) => EnforcementStatus::Incomplete,
            Capability::CheckEnforce(c) => c.enforce(env),
        }
    }
}

impl<E: ?Sized> Checkable<E> for CatalogEntry<E> {
    fn check(&self, env: &E) -> CheckStatus {
        CatalogEntry::check(self, env)
    }
}

impl<E: ?Sized> Enforceable<E> for CatalogEntry<E> {
    fn enforce(&self, env: &mut E) -> EnforcementStatus {
        CatalogEntry::enforce(self, env)
    }
}

/// A registry of requirements for environments of type `E`.
///
/// ```
/// use vdo_core::{Catalog, CheckStatus, RequirementSpec, Severity};
///
/// let mut cat: Catalog<bool> = Catalog::new();
/// cat.register(
///     "demo.flags",
///     RequirementSpec::builder("V-1").title("flag must be set").severity(Severity::High).build(),
///     |e: &bool| CheckStatus::from(*e),
/// );
/// assert_eq!(cat.len(), 1);
/// assert_eq!(cat.check_all(&true).iter().filter(|r| r.1.is_pass()).count(), 1);
/// ```
pub struct Catalog<E: ?Sized> {
    entries: Vec<CatalogEntry<E>>,
}

impl<E: ?Sized> Catalog<E> {
    /// Creates an empty catalogue.
    #[must_use]
    pub fn new() -> Self {
        Catalog {
            entries: Vec::new(),
        }
    }

    /// Registers a check-only requirement. Returns the entry index.
    pub fn register<C>(
        &mut self,
        package: impl Into<PackagePath>,
        spec: RequirementSpec,
        checkable: C,
    ) -> usize
    where
        C: Checkable<E> + Send + Sync + 'static,
    {
        self.entries.push(CatalogEntry {
            spec,
            package: package.into(),
            capability: Capability::Check(Box::new(checkable)),
        });
        self.entries.len() - 1
    }

    /// Registers a requirement that can also enforce. Returns the entry
    /// index.
    pub fn register_enforceable<C>(
        &mut self,
        package: impl Into<PackagePath>,
        spec: RequirementSpec,
        requirement: C,
    ) -> usize
    where
        C: CheckEnforce<E> + Send + Sync + 'static,
    {
        self.entries.push(CatalogEntry {
            spec,
            package: package.into(),
            capability: Capability::CheckEnforce(Box::new(requirement)),
        });
        self.entries.len() - 1
    }

    /// Number of registered requirements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &CatalogEntry<E>> {
        self.entries.iter()
    }

    /// Entry by index.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&CatalogEntry<E>> {
        self.entries.get(index)
    }

    /// Looks an entry up by its finding id.
    #[must_use]
    pub fn find(&self, finding_id: &str) -> Option<&CatalogEntry<E>> {
        self.entries
            .iter()
            .find(|e| e.spec.finding_id() == finding_id)
    }

    /// Entries whose package equals or lies beneath `prefix`.
    pub fn in_package<'a>(
        &'a self,
        prefix: &'a PackagePath,
    ) -> impl Iterator<Item = &'a CatalogEntry<E>> + 'a {
        self.entries
            .iter()
            .filter(move |e| e.package.starts_with(prefix))
    }

    /// Checks every entry against `env`, returning `(entry, verdict)`
    /// pairs in registration order.
    pub fn check_all<'a>(&'a self, env: &E) -> Vec<(&'a CatalogEntry<E>, CheckStatus)> {
        self.entries
            .iter()
            .map(|e| {
                let v = e.check(env);
                (e, v)
            })
            .collect()
    }

    /// Inventory: entry counts per package, as used to regenerate the
    /// D2.7 catalogue tables (experiment T1).
    #[must_use]
    pub fn inventory(&self) -> BTreeMap<PackagePath, PackageStats> {
        let mut map: BTreeMap<PackagePath, PackageStats> = BTreeMap::new();
        for e in &self.entries {
            let s = map.entry(e.package.clone()).or_default();
            s.total += 1;
            if e.is_enforceable() {
                s.enforceable += 1;
            }
            match e.spec.severity() {
                Severity::High => s.high += 1,
                Severity::Medium => s.medium += 1,
                Severity::Low => s.low += 1,
            }
        }
        map
    }
}

impl<E: ?Sized> Default for Catalog<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: ?Sized> fmt::Debug for Catalog<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Catalog")
            .field("entries", &self.entries.len())
            .finish()
    }
}

/// Per-package counts produced by [`Catalog::inventory`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackageStats {
    /// Total requirements registered under the package.
    pub total: usize,
    /// Of which enforceable (check + fix).
    pub enforceable: usize,
    /// CAT I count.
    pub high: usize,
    /// CAT II count.
    pub medium: usize,
    /// CAT III count.
    pub low: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: &str, sev: Severity) -> RequirementSpec {
        RequirementSpec::builder(id).title(id).severity(sev).build()
    }

    struct SetTo(u32);
    impl Checkable<u32> for SetTo {
        fn check(&self, env: &u32) -> CheckStatus {
            CheckStatus::from(*env == self.0)
        }
    }
    impl Enforceable<u32> for SetTo {
        fn enforce(&self, env: &mut u32) -> EnforcementStatus {
            *env = self.0;
            EnforcementStatus::Success
        }
    }

    fn sample_catalog() -> Catalog<u32> {
        let mut cat = Catalog::new();
        cat.register(
            "rqcode.stigs.ubuntu",
            spec("V-1", Severity::High),
            |e: &u32| CheckStatus::from(*e > 0),
        );
        cat.register_enforceable(
            "rqcode.stigs.win10",
            spec("V-2", Severity::Medium),
            SetTo(7),
        );
        cat.register_enforceable("rqcode.stigs.win10", spec("V-3", Severity::Low), SetTo(7));
        cat
    }

    #[test]
    fn register_and_lookup() {
        let cat = sample_catalog();
        assert_eq!(cat.len(), 3);
        assert!(cat.find("V-2").is_some());
        assert!(cat.find("V-99").is_none());
        assert!(!cat.get(0).unwrap().is_enforceable());
        assert!(cat.get(1).unwrap().is_enforceable());
    }

    #[test]
    fn package_filtering() {
        let cat = sample_catalog();
        let win = PackagePath::new("rqcode.stigs.win10");
        assert_eq!(cat.in_package(&win).count(), 2);
        let root = PackagePath::new("rqcode");
        assert_eq!(cat.in_package(&root).count(), 3);
        let other = PackagePath::new("rqcode.stigs.win");
        assert_eq!(
            cat.in_package(&other).count(),
            0,
            "prefix must respect segment boundaries"
        );
    }

    #[test]
    fn check_all_reports_each_entry() {
        let cat = sample_catalog();
        let results = cat.check_all(&7);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|(_, v)| v.is_pass()));
        let results = cat.check_all(&0);
        assert_eq!(results.iter().filter(|(_, v)| v.is_fail()).count(), 3);
    }

    #[test]
    fn check_only_entry_cannot_enforce() {
        let cat = sample_catalog();
        let mut env = 0;
        assert_eq!(
            cat.get(0).unwrap().enforce(&mut env),
            EnforcementStatus::Incomplete
        );
        assert_eq!(
            cat.get(1).unwrap().enforce(&mut env),
            EnforcementStatus::Success
        );
        assert_eq!(env, 7);
    }

    #[test]
    fn inventory_counts_per_package() {
        let cat = sample_catalog();
        let inv = cat.inventory();
        let win = &inv[&PackagePath::new("rqcode.stigs.win10")];
        assert_eq!(win.total, 2);
        assert_eq!(win.enforceable, 2);
        assert_eq!(win.medium, 1);
        assert_eq!(win.low, 1);
        let ubu = &inv[&PackagePath::new("rqcode.stigs.ubuntu")];
        assert_eq!(ubu.total, 1);
        assert_eq!(ubu.high, 1);
        assert_eq!(ubu.enforceable, 0);
    }

    #[test]
    fn package_path_segments() {
        let p = PackagePath::new("a.b.c");
        assert_eq!(p.segments().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        assert_eq!(p.to_string(), "a.b.c");
    }
}
