//! # vdo-core — the Requirements-as-Code (RQCODE) kernel
//!
//! This crate is the Rust reproduction of the VeriDevOps project's primary
//! contribution: *security requirements as code*. A requirement is an
//! ordinary value that carries
//!
//! 1. its **specification** — the natural-language text plus structured
//!    metadata mirroring a STIG finding ([`RequirementSpec`]),
//! 2. its **verification means** — the [`Checkable`] trait, whose
//!    [`check`](Checkable::check) method inspects a hosting environment and
//!    returns a three-valued [`CheckStatus`], and
//! 3. optionally its **remediation means** — the [`Enforceable`] trait,
//!    whose [`enforce`](Enforceable::enforce) method mutates the hosting
//!    environment towards compliance.
//!
//! Requirements compose ([`AllOf`], [`AnyOf`], [`Not`]), register into a
//! [`Catalog`] grouped by package (mirroring the Java `rqcode.*` package
//! tree), and are driven to compliance by the [`RemediationPlanner`], which
//! implements the check → enforce → re-check fixpoint loop that the paper's
//! "prevention at development" work package automates.
//!
//! The hosting environment is a type parameter `E`: the same requirement
//! classes work against the simulated Ubuntu/Windows hosts in `vdo-host`,
//! against execution traces in `vdo-temporal`, or against anything else
//! that can be queried and mutated.
//!
//! ```
//! use vdo_core::{Checkable, CheckStatus, AllOf, Not};
//!
//! // Any closure over the environment is a requirement check.
//! struct Env { tls: bool, telnet: bool }
//! let tls_on = |e: &Env| CheckStatus::from(e.tls);
//! let telnet_off = Not::new(|e: &Env| CheckStatus::from(e.telnet));
//!
//! let policy = AllOf::new(vec![]).with(tls_on).with(telnet_off);
//! assert_eq!(policy.check(&Env { tls: true, telnet: false }), CheckStatus::Pass);
//! assert_eq!(policy.check(&Env { tls: true, telnet: true }), CheckStatus::Fail);
//! ```

pub mod catalog;
pub mod composite;
pub mod planner;
pub mod report;
pub mod requirement;
pub mod status;
pub mod waiver;

pub use catalog::{Catalog, CatalogEntry, PackagePath};
pub use composite::{AllOf, AnyOf, Named, Not};
pub use planner::{PlannerConfig, PlannerOutcome, RemediationPlanner};
pub use report::{ComplianceReport, ReportSummary, RequirementResult};
pub use requirement::{Requirement, RequirementSpec, RequirementSpecBuilder, Severity};
pub use status::{CheckStatus, EnforcementStatus};
pub use waiver::{Waiver, WaiverSet};

/// A requirement whose satisfaction can be decided against a hosting
/// environment of type `E`.
///
/// This is the Rust rendering of RQCODE's `rqcode.concepts.Checkable`
/// interface. The environment is passed explicitly instead of being
/// ambient (as in the Java prototype, where `check()` inspected the
/// machine the JVM ran on): that is what makes the same requirement
/// testable against simulated hosts, recorded traces, and live systems.
///
/// Closures `Fn(&E) -> CheckStatus` implement this trait, so ad-hoc
/// propositions need no boilerplate.
pub trait Checkable<E: ?Sized> {
    /// Decides whether `env` currently satisfies the requirement.
    ///
    /// Returns [`CheckStatus::Incomplete`] when the environment does not
    /// expose enough information to decide (e.g. a query for a policy
    /// that does not exist on this host class).
    fn check(&self, env: &E) -> CheckStatus;
}

/// A requirement that can drive a hosting environment of type `E`
/// towards compliance.
///
/// Rust rendering of `rqcode.concepts.Enforceable`. Implementations are
/// expected (and property-tested, see `vdo-stigs`) to be **idempotent**:
/// enforcing an already-compliant environment must succeed and leave it
/// compliant.
pub trait Enforceable<E: ?Sized> {
    /// Mutates `env` so that the requirement becomes satisfied.
    ///
    /// Returns [`EnforcementStatus::Incomplete`] when remediation needs
    /// information or privileges the environment does not provide.
    fn enforce(&self, env: &mut E) -> EnforcementStatus;
}

/// A requirement that is both [`Checkable`] and [`Enforceable`] — the
/// analogue of RQCODE's `CheckableEnforceableRequirement`.
///
/// Blanket-implemented for every type with both capabilities; use it as a
/// trait object (`Box<dyn CheckEnforce<E>>`) when a catalogue needs to mix
/// heterogeneous requirement types.
pub trait CheckEnforce<E: ?Sized>: Checkable<E> + Enforceable<E> {}

impl<T, E: ?Sized> CheckEnforce<E> for T where T: Checkable<E> + Enforceable<E> {}

impl<E: ?Sized, F> Checkable<E> for F
where
    F: Fn(&E) -> CheckStatus,
{
    fn check(&self, env: &E) -> CheckStatus {
        self(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_is_checkable() {
        let req = |e: &u32| CheckStatus::from(*e > 3);
        assert_eq!(req.check(&4), CheckStatus::Pass);
        assert_eq!(req.check(&2), CheckStatus::Fail);
    }

    #[test]
    fn boxed_trait_object_is_checkable() {
        let req: Box<dyn Checkable<u32>> =
            Box::new(|e: &u32| CheckStatus::from(e.is_multiple_of(2)));
        assert_eq!(req.check(&8), CheckStatus::Pass);
    }

    #[test]
    fn reference_is_checkable() {
        let req = |e: &bool| CheckStatus::from(*e);
        let by_ref: &dyn Checkable<bool> = &req;
        assert_eq!(by_ref.check(&true), CheckStatus::Pass);
    }

    #[test]
    fn key_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CheckStatus>();
        assert_send_sync::<EnforcementStatus>();
        assert_send_sync::<RequirementSpec>();
        assert_send_sync::<ComplianceReport>();
        assert_send_sync::<WaiverSet>();
        assert_send_sync::<RemediationPlanner>();
        assert_send_sync::<Catalog<u32>>();
    }
}
