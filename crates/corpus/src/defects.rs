//! Planted-defect corpora for the static analyzer (experiment E13).
//!
//! NALABS precision/recall (E1) is measured against requirement smells
//! planted at known positions; this module does the same for
//! `vdo-analyze`. [`generate`] builds an [`ArtifactSet`] containing a
//! configurable number of *clean* requirements-as-code artifacts plus
//! `defects_per_class` planted defects for **every** lint class
//! `VDA001`–`VDA012`, and records the exact `(artifact, code)` pairs
//! the analyzer is expected to report. [`DefectCorpus::score`] then
//! turns an [`vdo_analyze::AnalysisReport`] into
//! per-class and overall precision/recall against that ground truth.
//!
//! The seed shuffles catalogue-entry insertion order (the analyzer's
//! output must not depend on it) but never changes which defects are
//! planted.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vdo_analyze::{AnalysisReport, ArtifactSet, EntryArtifact, LintCode, ReqExpr};
use vdo_core::Waiver;
use vdo_gwt::GraphModel;
use vdo_tears::{Expr, GuardedAssertion};
use vdo_temporal::Formula;

/// The corpus is generated at this tick; expired-waiver plants expire
/// well before it.
const NOW: u64 = 100;

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefectConfig {
    /// Number of clean catalogue entries (each dev-covered, with a
    /// satisfiable expression; every third also ships a contingent
    /// monitor formula, plus occasional clean models and assertions).
    pub clean_entries: usize,
    /// Number of defects planted *per lint class*.
    pub defects_per_class: usize,
    /// Shuffles catalogue-entry insertion order only; the planted
    /// ground truth is seed-independent.
    pub seed: u64,
}

impl Default for DefectConfig {
    fn default() -> Self {
        DefectConfig {
            clean_entries: 60,
            defects_per_class: 3,
            seed: 7,
        }
    }
}

/// A generated corpus: the artifacts plus the exact diagnostics ground
/// truth.
#[derive(Debug, Clone)]
pub struct DefectCorpus {
    /// The artifacts to analyse.
    pub artifacts: ArtifactSet,
    /// Every `(artifact id, lint code)` pair the analyzer must report —
    /// nothing more, nothing less.
    pub expected: BTreeSet<(String, LintCode)>,
}

/// Detection quality for one lint class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassScore {
    /// Expected diagnostics of this class.
    pub planted: usize,
    /// Reported diagnostics matching an expected pair.
    pub true_positives: usize,
    /// Reported diagnostics matching no expected pair.
    pub false_positives: usize,
    /// Expected pairs the analyzer missed.
    pub false_negatives: usize,
}

impl ClassScore {
    /// `tp / (tp + fp)`; `1.0` when nothing was reported.
    #[must_use]
    pub fn precision(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_positives,
        )
    }

    /// `tp / (tp + fn)`; `1.0` when nothing was planted.
    #[must_use]
    pub fn recall(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_negatives,
        )
    }
}

/// Overall detection quality of one analysis run against the corpus
/// ground truth.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DefectScore {
    /// Per-class breakdown, one row per [`LintCode`].
    pub per_class: BTreeMap<LintCode, ClassScore>,
    /// Reported diagnostics matching an expected pair.
    pub true_positives: usize,
    /// Reported diagnostics matching no expected pair.
    pub false_positives: usize,
    /// Expected pairs the analyzer missed.
    pub false_negatives: usize,
}

impl DefectScore {
    /// Overall precision; `1.0` when nothing was reported.
    #[must_use]
    pub fn precision(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_positives,
        )
    }

    /// Overall recall; `1.0` when nothing was planted.
    #[must_use]
    pub fn recall(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_negatives,
        )
    }

    /// `true` iff every planted defect was found and nothing else was
    /// reported.
    #[must_use]
    pub fn is_perfect(&self) -> bool {
        self.false_positives == 0 && self.false_negatives == 0
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

impl DefectCorpus {
    /// Total number of planted `(artifact, code)` pairs.
    #[must_use]
    pub fn planted_total(&self) -> usize {
        self.expected.len()
    }

    /// Scores an analysis run of [`Self::artifacts`] against the
    /// planted ground truth.
    #[must_use]
    pub fn score(&self, report: &AnalysisReport) -> DefectScore {
        let found: BTreeSet<(String, LintCode)> = report
            .diagnostics
            .iter()
            .map(|d| (d.artifact.clone(), d.code))
            .collect();
        let mut score = DefectScore::default();
        for code in LintCode::ALL {
            score.per_class.insert(code, ClassScore::default());
        }
        for (artifact, code) in &found {
            let class = score.per_class.entry(*code).or_default();
            if self.expected.contains(&(artifact.clone(), *code)) {
                class.true_positives += 1;
                score.true_positives += 1;
            } else {
                class.false_positives += 1;
                score.false_positives += 1;
            }
        }
        for (artifact, code) in &self.expected {
            let class = score.per_class.entry(*code).or_default();
            class.planted += 1;
            if !found.contains(&(artifact.clone(), *code)) {
                class.false_negatives += 1;
                score.false_negatives += 1;
            }
        }
        score
    }
}

/// Generates a corpus with known-clean artifacts and
/// `defects_per_class` planted defects for every lint class.
#[must_use]
pub fn generate(config: &DefectConfig) -> DefectCorpus {
    let mut entries: Vec<(EntryArtifact, bool)> = Vec::new(); // (entry, dev-covered)
    let mut formulas: Vec<(String, Formula)> = Vec::new();
    let mut models: Vec<GraphModel> = Vec::new();
    let mut assertions: Vec<GuardedAssertion> = Vec::new();
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut dangling_dev: Vec<String> = Vec::new();
    let mut dangling_ops: Vec<String> = Vec::new();
    let mut expected: BTreeSet<(String, LintCode)> = BTreeSet::new();
    // Identical-expression pairs: which side gets flagged depends on
    // insertion order, so they are resolved after the shuffle.
    let mut twin_pairs: Vec<(String, String)> = Vec::new();

    for i in 0..config.clean_entries {
        let id = format!("REQ-{i:04}");
        entries.push((
            EntryArtifact::new(&id)
                .title(format!("baseline hardening requirement {i}"))
                .expr(ReqExpr::all_of([
                    ReqExpr::atom(format!("cfg_{i}")),
                    ReqExpr::not(ReqExpr::atom(format!("weak_{i}"))),
                ])),
            true,
        ));
        if i % 3 == 0 {
            // Contingent response pattern: satisfiable and falsifiable.
            formulas.push((
                format!("monitor-{id}"),
                Formula::globally(Formula::implies(
                    Formula::atom(format!("request_{i}")),
                    Formula::finally(Formula::atom(format!("response_{i}"))),
                )),
            ));
        }
        if i % 10 == 4 {
            let mut m = GraphModel::new(format!("model-{id}"));
            let idle = m.add_vertex("idle");
            let active = m.add_vertex("active");
            let done = m.add_vertex("done");
            m.add_edge(idle, active, "start");
            m.add_edge(active, done, "finish");
            m.add_edge(done, idle, "reset");
            m.set_start(idle);
            models.push(m);
        }
        if i % 10 == 7 {
            assertions.push(GuardedAssertion::new(
                format!("assert-{id}"),
                Expr::parse("load > 90").expect("clean guard parses"),
                Expr::parse("throttled == 1").expect("clean assertion parses"),
                5,
            ));
        }
    }

    for i in 0..config.defects_per_class {
        // VDA001 — a composite requiring an atom and its negation.
        let id = format!("DEF-VDA001-{i}");
        entries.push((
            EntryArtifact::new(&id).expr(ReqExpr::all_of([
                ReqExpr::atom(format!("k1_{i}")),
                ReqExpr::not(ReqExpr::atom(format!("k1_{i}"))),
            ])),
            true,
        ));
        expected.insert((id, LintCode::ContradictoryComposite));

        // VDA002, flavour one — the same finding id declared twice.
        let id = format!("DEF-VDA002-ID-{i}");
        entries.push((
            EntryArtifact::new(&id).expr(ReqExpr::atom(format!("k2a_{i}"))),
            true,
        ));
        entries.push((
            EntryArtifact::new(&id).expr(ReqExpr::atom(format!("k2b_{i}"))),
            true,
        ));
        expected.insert((id, LintCode::DuplicateEntry));

        // VDA002, flavour two — distinct ids, identical expression.
        // The later entry in insertion order is flagged, so the
        // expected pair is resolved after the shuffle below.
        let twin = ReqExpr::all_of([
            ReqExpr::atom(format!("k2c_{i}")),
            ReqExpr::atom(format!("k2d_{i}")),
        ]);
        let a = format!("DEF-VDA002-EQ-{i}-a");
        let b = format!("DEF-VDA002-EQ-{i}-b");
        entries.push((EntryArtifact::new(&a).expr(twin.clone()), true));
        entries.push((EntryArtifact::new(&b).expr(twin), true));
        twin_pairs.push((a, b));

        // VDA003 — a weak entry implied by a stronger one.
        let weak = format!("DEF-VDA003-{i}-weak");
        entries.push((
            EntryArtifact::new(&weak).expr(ReqExpr::atom(format!("k3_{i}"))),
            true,
        ));
        entries.push((
            EntryArtifact::new(format!("DEF-VDA003-{i}-strong")).expr(ReqExpr::all_of([
                ReqExpr::atom(format!("k3_{i}")),
                ReqExpr::atom(format!("k3x_{i}")),
            ])),
            true,
        ));
        expected.insert((weak, LintCode::SubsumedEntry));

        // VDA004 — a waiver for a finding id no entry carries.
        let ghost = format!("GHOST-{i}");
        waivers.push(Waiver {
            finding_id: ghost.clone(),
            reason: "exception kept after the finding was retired".into(),
            expires_at: None,
        });
        expected.insert((ghost, LintCode::UnknownWaiver));

        // VDA005 — a waiver that lapsed before the current tick.
        let id = format!("DEF-VDA005-{i}");
        entries.push((
            EntryArtifact::new(&id).expr(ReqExpr::atom(format!("k5_{i}"))),
            true,
        ));
        waivers.push(Waiver {
            finding_id: id.clone(),
            reason: "quarterly exemption".into(),
            expires_at: Some(NOW - 60),
        });
        expected.insert((id, LintCode::ExpiredWaiver));

        // VDA006 — fails on every trace: G p ∧ F ¬p.
        let name = format!("contradiction-{i}");
        formulas.push((
            name.clone(),
            Formula::and(
                Formula::globally(Formula::atom(format!("p6_{i}"))),
                Formula::finally(Formula::not(Formula::atom(format!("p6_{i}")))),
            ),
        ));
        expected.insert((name, LintCode::ContradictoryFormula));

        // VDA007 — passes on every trace: p ∨ ¬p.
        let name = format!("tautology-{i}");
        formulas.push((
            name.clone(),
            Formula::or(
                Formula::atom(format!("p7_{i}")),
                Formula::not(Formula::atom(format!("p7_{i}"))),
            ),
        ));
        expected.insert((name, LintCode::TautologicalFormula));

        // VDA008 — a response pattern whose antecedent is unsatisfiable.
        // Five atoms in total keeps the formula outside the bounded
        // witness search's atom budget, so only the vacuity lint (which
        // inspects the propositional antecedent alone) reports it.
        let name = format!("vacuous-{i}");
        let alert = |n: u32| Formula::atom(format!("alert{n}_{i}"));
        formulas.push((
            name.clone(),
            Formula::globally(Formula::implies(
                Formula::and(
                    Formula::atom(format!("a8_{i}")),
                    Formula::not(Formula::atom(format!("a8_{i}"))),
                ),
                Formula::finally(Formula::or(
                    Formula::or(alert(1), alert(2)),
                    Formula::or(alert(3), alert(4)),
                )),
            )),
        ));
        expected.insert((name, LintCode::VacuousPattern));

        // VDA009 — a model with an island the start vertex never reaches.
        let name = format!("island-{i}");
        let mut m = GraphModel::new(&name);
        let start = m.add_vertex("start");
        let up = m.add_vertex("up");
        let lost_a = m.add_vertex("lost_a");
        let lost_b = m.add_vertex("lost_b");
        m.add_edge(start, up, "boot");
        m.add_edge(up, start, "shutdown");
        m.add_edge(lost_a, lost_b, "drift");
        m.set_start(start);
        models.push(m);
        expected.insert((name, LintCode::UnreachableModel));

        // VDA010 — a guard no signal valuation satisfies.
        let name = format!("dead-guard-{i}");
        assertions.push(GuardedAssertion::new(
            &name,
            Expr::parse("load > 1 and load < 0").expect("dead guard parses"),
            Expr::parse("throttled == 1").expect("assertion parses"),
            5,
        ));
        expected.insert((name, LintCode::UnsatisfiableGuard));

        // VDA011 — an entry neither gated, monitored, nor waived.
        let id = format!("DEF-VDA011-{i}");
        entries.push((
            EntryArtifact::new(&id).expr(ReqExpr::atom(format!("k11_{i}"))),
            false,
        ));
        expected.insert((id, LintCode::UntracedRequirement));

        // VDA012 — a coverage claim for a finding id no entry carries
        // (the entry was deleted, the trace link stayed behind).
        // Alternate the link kind so both dev- and ops-side dangling
        // edges appear in the corpus.
        let ghost = format!("DEF-VDA012-GHOST-{i}");
        if i % 2 == 0 {
            dangling_dev.push(ghost.clone());
        } else {
            dangling_ops.push(ghost.clone());
        }
        expected.insert((ghost, LintCode::DanglingEdge));
    }

    // Entry insertion order must not affect the analyzer's findings;
    // shuffle it so every seed exercises a different order.
    let mut rng = StdRng::seed_from_u64(config.seed);
    for i in (1..entries.len()).rev() {
        let j = rng.gen_range(0..=i);
        entries.swap(i, j);
    }
    for (a, b) in twin_pairs {
        let pos = |id: &str| {
            entries
                .iter()
                .position(|(e, _)| e.finding_id == id)
                .expect("twin entry present")
        };
        let later = if pos(&a) < pos(&b) { b } else { a };
        expected.insert((later, LintCode::DuplicateEntry));
    }

    let mut artifacts = ArtifactSet::new().at_tick(NOW);
    for (entry, covered) in entries {
        let id = entry.finding_id.clone();
        artifacts = artifacts.with_entry(entry);
        if covered {
            artifacts = artifacts.covered_dev(id);
        }
    }
    for w in waivers {
        artifacts = artifacts.with_waiver(w);
    }
    for id in dangling_dev {
        artifacts = artifacts.covered_dev(id);
    }
    for id in dangling_ops {
        artifacts = artifacts.covered_ops(id);
    }
    for (name, f) in formulas {
        artifacts = artifacts.with_formula(name, f);
    }
    for m in models {
        artifacts = artifacts.with_model(m);
    }
    for ga in assertions {
        artifacts = artifacts.with_assertion(ga);
    }

    DefectCorpus {
        artifacts,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdo_analyze::{AnalysisConfig, Analyzer};

    #[test]
    fn default_corpus_scores_perfectly() {
        let corpus = generate(&DefectConfig::default());
        let report = Analyzer::new(AnalysisConfig::default()).analyze(&corpus.artifacts);
        let score = corpus.score(&report);
        assert!(
            score.is_perfect(),
            "fp={} fn={} listing:\n{}",
            score.false_positives,
            score.false_negatives,
            report.listing()
        );
        assert_eq!(score.precision(), 1.0);
        assert_eq!(score.recall(), 1.0);
        assert!(score.per_class.values().all(|c| c.planted >= 1));
        assert_eq!(score.per_class.len(), LintCode::ALL.len());
    }

    #[test]
    fn every_seed_scores_perfectly() {
        for seed in [1, 2, 3, 99] {
            let corpus = generate(&DefectConfig {
                clean_entries: 20,
                defects_per_class: 2,
                seed,
            });
            let report = Analyzer::new(AnalysisConfig::default()).analyze(&corpus.artifacts);
            assert!(
                corpus.score(&report).is_perfect(),
                "seed {seed} not perfect:\n{}",
                report.listing()
            );
        }
    }

    #[test]
    fn clean_half_produces_no_diagnostics() {
        let corpus = generate(&DefectConfig {
            clean_entries: 50,
            defects_per_class: 0,
            seed: 7,
        });
        assert!(corpus.expected.is_empty());
        let report = Analyzer::new(AnalysisConfig::default()).analyze(&corpus.artifacts);
        assert!(report.is_clean(), "unexpected:\n{}", report.listing());
    }

    #[test]
    fn expected_pairs_scale_with_defect_count() {
        // 12 classes, with VDA002 planted in two flavours.
        let corpus = generate(&DefectConfig {
            clean_entries: 0,
            defects_per_class: 4,
            seed: 7,
        });
        assert_eq!(corpus.planted_total(), 13 * 4);
    }

    #[test]
    fn score_counts_misses_and_extras() {
        let corpus = generate(&DefectConfig {
            clean_entries: 5,
            defects_per_class: 1,
            seed: 7,
        });
        let empty = AnalysisReport {
            diagnostics: Vec::new(),
        };
        let score = corpus.score(&empty);
        assert_eq!(score.true_positives, 0);
        assert_eq!(score.false_negatives, corpus.planted_total());
        assert_eq!(score.recall(), 0.0);
        assert_eq!(score.precision(), 1.0);
    }
}
