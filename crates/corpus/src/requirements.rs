//! Synthetic natural-language security requirements with planted smells.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vdo_nalabs::RequirementDoc;

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Number of requirement documents.
    pub size: usize,
    /// Probability that a document gets smells planted.
    pub smell_rate: f64,
    /// RNG seed (same seed ⇒ identical corpus).
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            size: 100,
            smell_rate: 0.2,
            seed: 0,
        }
    }
}

/// A generated corpus with its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    /// The requirement documents (ids `REQ-0001`, `REQ-0002`, …).
    pub documents: Vec<RequirementDoc>,
    smelly_ids: BTreeSet<String>,
}

impl Corpus {
    /// Ground truth: was this document generated with planted smells?
    #[must_use]
    pub fn is_smelly(&self, id: &str) -> bool {
        self.smelly_ids.contains(id)
    }

    /// Number of documents with planted smells.
    #[must_use]
    pub fn planted_count(&self) -> usize {
        self.smelly_ids.len()
    }
}

const SUBJECTS: [&str; 8] = [
    "The system",
    "The operating system",
    "The application server",
    "The gateway",
    "The control unit",
    "The audit service",
    "The authentication module",
    "The network device",
];

const CLEAN_BODIES: [&str; 12] = [
    "shall lock the user session after 15 minutes of inactivity",
    "shall record every failed logon attempt in the security log",
    "shall encrypt stored credentials with AES-256",
    "shall terminate remote sessions after 10 minutes of idle time",
    "shall enforce an account lockout after 3 consecutive failed logons",
    "shall validate all input received on external interfaces",
    "shall disable the telnet service on all production interfaces",
    "shall require multifactor authentication for privileged accounts",
    "shall verify the integrity of configuration files at boot",
    "shall retain audit records for 90 days",
    "shall restrict access to the password database to administrators",
    "shall generate an alert within 5 seconds of an intrusion event",
];

/// Smell injections: (smell phrase inserted, trailing clause), chosen so
/// a planted document trips at least one NALABS dictionary.
const SMELL_INJECTIONS: [&str; 10] = [
    "may, if needed, and as appropriate,",
    "can possibly, where applicable,",
    "should, as far as possible,",
    "may eventually, at the discretion of the operator,",
    "can, when necessary and if practical,",
    "may provide adequate and user friendly handling and",
    "should be able to be fast and easy to use and",
    "may, TBD, as described in section 4.2,",
    "can, see table 3 and refer to appendix B,",
    "may support several, many, or some of the following and",
];

const SMELL_TAILS: [&str; 5] = [
    " as appropriate",
    ", which should be good and efficient",
    ", see section 9 for details, TBD",
    " in a timely and adequate manner",
    ", and so on, etc",
];

/// Generates a corpus per `config`. The generator is deterministic in
/// the seed; documents with planted smells replace the modal verb with
/// optional/weak phrasing and append vague tails, tripping the NALABS
/// dictionaries while staying grammatical.
#[must_use]
pub fn generate(config: &CorpusConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut documents = Vec::with_capacity(config.size);
    let mut smelly_ids = BTreeSet::new();
    for i in 0..config.size {
        let id = format!("REQ-{:04}", i + 1);
        let subject = SUBJECTS[rng.gen_range(0..SUBJECTS.len())];
        let body = CLEAN_BODIES[rng.gen_range(0..CLEAN_BODIES.len())];
        let text = if rng.gen_bool(config.smell_rate) {
            smelly_ids.insert(id.clone());
            let injection = SMELL_INJECTIONS[rng.gen_range(0..SMELL_INJECTIONS.len())];
            let tail = SMELL_TAILS[rng.gen_range(0..SMELL_TAILS.len())];
            // Replace the imperative with the smelly phrasing.
            let weakened = body.replacen("shall", injection, 1);
            format!("{subject} {weakened}{tail}.")
        } else {
            format!("{subject} {body}.")
        };
        documents.push(RequirementDoc::new(id, text));
    }
    Corpus {
        documents,
        smelly_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdo_nalabs::Analyzer;

    #[test]
    fn deterministic_per_seed() {
        let cfg = CorpusConfig {
            size: 50,
            smell_rate: 0.3,
            seed: 5,
        };
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = CorpusConfig { seed: 6, ..cfg };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn smell_rate_extremes() {
        let none = generate(&CorpusConfig {
            size: 30,
            smell_rate: 0.0,
            seed: 1,
        });
        assert_eq!(none.planted_count(), 0);
        let all = generate(&CorpusConfig {
            size: 30,
            smell_rate: 1.0,
            seed: 1,
        });
        assert_eq!(all.planted_count(), 30);
    }

    #[test]
    fn nalabs_detects_planted_smells_well() {
        let corpus = generate(&CorpusConfig {
            size: 200,
            smell_rate: 0.25,
            seed: 42,
        });
        let analyzer = Analyzer::with_default_metrics();
        let report = analyzer.analyze_corpus(&corpus.documents);
        let pr = report.score_against(&|id: &str| corpus.is_smelly(id));
        assert!(
            pr.recall() > 0.9,
            "planted smells must be found: recall = {}",
            pr.recall()
        );
        assert!(
            pr.precision() > 0.7,
            "clean documents must mostly pass: precision = {}",
            pr.precision()
        );
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let corpus = generate(&CorpusConfig {
            size: 12,
            smell_rate: 0.5,
            seed: 0,
        });
        let ids: Vec<_> = corpus.documents.iter().map(|d| d.id()).collect();
        assert_eq!(ids[0], "REQ-0001");
        assert_eq!(ids[11], "REQ-0012");
        let unique: BTreeSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), 12);
    }
}
