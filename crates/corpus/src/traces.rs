//! Monitoring workloads with known ground truth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vdo_temporal::{Tick, Trace};

/// An invariant-violation workload: a boolean "healthy" trace that turns
/// (and stays) unhealthy at a known tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationTrace {
    /// The ground-truth trace (`true` = invariant holds at that tick).
    pub trace: Trace<bool>,
    /// First tick at which the invariant is violated.
    pub violation_tick: Tick,
}

impl ViolationTrace {
    /// Builds a trace of `len` ticks with the violation starting at a
    /// seed-chosen tick in `[min_at, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `min_at >= len`.
    #[must_use]
    pub fn random(len: Tick, min_at: Tick, seed: u64) -> ViolationTrace {
        assert!(min_at < len, "violation window empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let violation_tick = rng.gen_range(min_at..len);
        ViolationTrace::at(len, violation_tick)
    }

    /// Builds a trace of `len` ticks violating exactly from
    /// `violation_tick` on.
    ///
    /// # Panics
    ///
    /// Panics if `violation_tick >= len`.
    #[must_use]
    pub fn at(len: Tick, violation_tick: Tick) -> ViolationTrace {
        assert!(violation_tick < len, "violation must lie inside the trace");
        ViolationTrace {
            trace: (0..len).map(|t| t < violation_tick).collect(),
            violation_tick,
        }
    }

    /// Builds a trace with a transient glitch: unhealthy only during
    /// `[glitch_at, glitch_at + width)`.
    ///
    /// # Panics
    ///
    /// Panics if the glitch does not fit inside the trace.
    #[must_use]
    pub fn glitch(len: Tick, glitch_at: Tick, width: Tick) -> ViolationTrace {
        assert!(glitch_at + width <= len, "glitch must fit inside the trace");
        ViolationTrace {
            trace: (0..len)
                .map(|t| !(t >= glitch_at && t < glitch_at + width))
                .collect(),
            violation_tick: glitch_at,
        }
    }
}

/// A request/response workload for the timed-response experiments:
/// states are `(trigger, response)` pairs with known response delays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseWorkload {
    /// The trace of `(trigger, response)` observations.
    pub trace: Trace<(bool, bool)>,
    /// `(trigger_tick, response_tick)` pairs; a response tick of
    /// `None` means the trigger is never answered.
    pub requests: Vec<(Tick, Option<Tick>)>,
}

impl ResponseWorkload {
    /// Generates `len` ticks with triggers arriving at rate
    /// `trigger_probability`; each trigger is answered after a random
    /// delay in `[0, max_delay]`, except with probability `drop_rate`
    /// it is never answered.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // `t` indexes two vectors plus arithmetic
    pub fn random(
        len: Tick,
        trigger_probability: f64,
        max_delay: Tick,
        drop_rate: f64,
        seed: u64,
    ) -> ResponseWorkload {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = len as usize;
        let mut triggers = vec![false; n];
        let mut responses = vec![false; n];
        let mut requests = Vec::new();
        for t in 0..n {
            if rng.gen_bool(trigger_probability) {
                triggers[t] = true;
                if rng.gen_bool(drop_rate) {
                    requests.push((t as Tick, None));
                } else {
                    let delay = rng.gen_range(0..=max_delay);
                    let at = t as Tick + delay;
                    if (at as usize) < n {
                        responses[at as usize] = true;
                        requests.push((t as Tick, Some(at)));
                    } else {
                        requests.push((t as Tick, None));
                    }
                }
            }
        }
        ResponseWorkload {
            trace: (0..n).map(|t| (triggers[t], responses[t])).collect(),
            requests,
        }
    }

    /// The worst (largest) response delay among answered requests.
    #[must_use]
    pub fn max_observed_delay(&self) -> Option<Tick> {
        self.requests
            .iter()
            .filter_map(|(t, r)| r.map(|r| r - t))
            .max()
    }

    /// Count of triggers never answered within the trace.
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.requests.iter().filter(|(_, r)| r.is_none()).count()
    }
}

/// Generates a TEARS-style signal log: `load` wanders in `[0, 1]`,
/// `throttled` follows `load > 0.9` after `lag` ticks — except for
/// `faults` seed-chosen occasions where throttling silently fails.
/// Returns the samples as `(load, throttled)` rows plus the ticks of the
/// planted faults.
#[must_use]
pub fn throttle_log(
    len: Tick,
    lag: Tick,
    faults: usize,
    seed: u64,
) -> (Vec<(f64, f64)>, Vec<Tick>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = len as usize;
    let mut load = Vec::with_capacity(n);
    let mut level: f64 = 0.5;
    for _ in 0..n {
        level = (level + rng.gen_range(-0.15..0.15)).clamp(0.0, 1.0);
        load.push(level);
    }
    // Ticks where load first exceeds 0.9 (rising edges).
    let hot: Vec<usize> = (0..n)
        .filter(|&t| load[t] > 0.9 && (t == 0 || load[t - 1] <= 0.9))
        .collect();
    let mut fault_ticks: Vec<Tick> = Vec::new();
    let mut faulty = vec![false; hot.len()];
    if !hot.is_empty() {
        for _ in 0..faults.min(hot.len()) {
            let k = rng.gen_range(0..hot.len());
            if !faulty[k] {
                faulty[k] = true;
                fault_ticks.push(hot[k] as Tick);
            }
        }
    }
    fault_ticks.sort_unstable();
    let mut throttled = vec![0.0; n];
    for (k, &h) in hot.iter().enumerate() {
        if faulty[k] {
            continue;
        }
        let start = h + lag as usize;
        // Throttle stays up while load remains hot.
        let mut t = start;
        while t < n && load[t.saturating_sub(lag as usize).min(n - 1)] > 0.9 {
            throttled[t] = 1.0;
            t += 1;
        }
        if start < n {
            throttled[start] = 1.0;
        }
    }
    (load.into_iter().zip(throttled).collect(), fault_ticks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdo_core::CheckStatus;
    use vdo_temporal::{GlobalUniversality, MonitorOutcome, MonitoringLoop};

    #[test]
    fn violation_trace_shape() {
        let w = ViolationTrace::at(10, 4);
        assert_eq!(w.trace.len(), 10);
        assert_eq!(w.trace.state_at(3), Some(&true));
        assert_eq!(w.trace.state_at(4), Some(&false));
        assert_eq!(w.trace.state_at(9), Some(&false), "violation persists");
    }

    #[test]
    fn random_violation_is_deterministic_and_in_range() {
        let a = ViolationTrace::random(100, 10, 3);
        let b = ViolationTrace::random(100, 10, 3);
        assert_eq!(a, b);
        assert!(a.violation_tick >= 10 && a.violation_tick < 100);
    }

    #[test]
    fn glitch_recovers() {
        let w = ViolationTrace::glitch(10, 3, 2);
        assert_eq!(w.trace.state_at(2), Some(&true));
        assert_eq!(w.trace.state_at(3), Some(&false));
        assert_eq!(w.trace.state_at(4), Some(&false));
        assert_eq!(w.trace.state_at(5), Some(&true));
    }

    #[test]
    fn monitor_detects_planted_violation_with_exact_latency() {
        let w = ViolationTrace::at(50, 23);
        let pattern = GlobalUniversality::new(|b: &bool| CheckStatus::from(*b));
        let report = MonitoringLoop::new(5)
            .expect("nonzero period")
            .run(&pattern, &w.trace);
        // Polls at 0,5,10,15,20,25 → detection at 25, latency 2.
        assert_eq!(report.outcome, MonitorOutcome::ViolationDetected(25));
        assert_eq!(report.detection_latency(w.violation_tick), Some(2));
    }

    #[test]
    fn response_workload_consistency() {
        let w = ResponseWorkload::random(500, 0.1, 10, 0.1, 9);
        assert_eq!(w.trace.len(), 500);
        for (t, r) in &w.requests {
            assert!(w.trace.state_at(*t).unwrap().0, "trigger recorded");
            if let Some(r) = r {
                assert!(r >= t);
                assert!(w.trace.state_at(*r).unwrap().1, "response recorded");
            }
        }
        if let Some(d) = w.max_observed_delay() {
            assert!(d <= 10);
        }
    }

    #[test]
    fn throttle_log_plants_faults_on_hot_edges() {
        let (rows, faults) = throttle_log(2000, 2, 3, 11);
        assert_eq!(rows.len(), 2000);
        for &f in &faults {
            let t = f as usize;
            assert!(rows[t].0 > 0.9, "fault tick must be a hot edge");
        }
    }
}
