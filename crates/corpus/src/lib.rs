//! # vdo-corpus — synthetic requirement corpora and monitoring workloads
//!
//! The VeriDevOps case studies evaluate on confidential industrial
//! requirement documents and production telemetry, neither of which is
//! publicly available. This crate provides the substitutes DESIGN.md
//! documents:
//!
//! * [`requirements`] — a deterministic generator of natural-language
//!   security requirements with **planted smells at a controlled rate**,
//!   so NALABS precision/recall (experiment E1) is measured against
//!   known ground truth instead of hand labels;
//! * [`traces`] — monitoring workloads with **planted violations at
//!   known ticks**, so detection latency (experiment E4) is exact, plus
//!   signal logs for the TEARS throughput experiment (E9);
//! * [`defects`] — requirements-as-code artifact sets with **planted
//!   defects for every `vdo-analyze` lint class**, so the static
//!   analyzer's precision/recall (experiment E13) is exact.
//!
//! ```
//! use vdo_corpus::requirements::{CorpusConfig, generate};
//!
//! let corpus = generate(&CorpusConfig { size: 100, smell_rate: 0.2, seed: 7 });
//! assert_eq!(corpus.documents.len(), 100);
//! let planted = corpus.documents.iter().filter(|d| corpus.is_smelly(d.id())).count();
//! assert!(planted > 0);
//! ```

pub mod defects;
pub mod requirements;
pub mod traces;

pub use defects::{ClassScore, DefectConfig, DefectCorpus, DefectScore};
pub use requirements::{Corpus, CorpusConfig};
pub use traces::{ResponseWorkload, ViolationTrace};
