//! Document and corpus analysis: run the metric suite, apply smell
//! thresholds, aggregate, and score against planted ground truth.

use std::collections::BTreeMap;
use std::fmt;

use crate::metrics::{self, Metric, MetricValue};
use crate::text::{RequirementDoc, TextStats};

/// Per-metric decision thresholds: a document *smells* of a metric when
/// its value crosses the metric's threshold.
///
/// Most smells trigger on density (hits per word); `imperatives` is
/// inverted (raw == 0 is the smell); `readability_ari` and `size_words`
/// trigger on raw value.
#[derive(Debug, Clone, PartialEq)]
pub struct SmellThresholds {
    /// Density above which a dictionary smell is flagged.
    pub density: f64,
    /// ARI above which text is flagged unreadable.
    pub max_ari: f64,
    /// Word count above which a requirement is flagged over-complex.
    pub max_words: usize,
}

impl Default for SmellThresholds {
    fn default() -> Self {
        // Note on max_ari: D2.7's formula `WS + 9·SW` sits near 9·5 = 45
        // for ordinary prose (SW ≈ 5 letters/word) before the sentence
        // term; 80 flags only genuinely long-winded text.
        SmellThresholds {
            density: 0.05,
            max_ari: 80.0,
            max_words: 60,
        }
    }
}

impl SmellThresholds {
    /// Decides whether the named metric's value constitutes a smell.
    #[must_use]
    pub fn is_smelly(&self, metric: &str, value: MetricValue, stats: &TextStats) -> bool {
        match metric {
            "imperatives" => value.raw == 0.0 && stats.word_count() > 0,
            "readability_ari" => value.raw > self.max_ari,
            "size_words" => value.raw as usize > self.max_words,
            // Incompleteness placeholders are a smell at any density.
            "incompleteness" => value.raw > 0.0,
            _ => value.density > self.density,
        }
    }
}

/// Analysis result for one requirement document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocumentReport {
    id: String,
    values: BTreeMap<&'static str, MetricValue>,
    smells: Vec<&'static str>,
}

impl DocumentReport {
    /// Requirement id this report describes.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Metric value by name.
    #[must_use]
    pub fn value(&self, metric: &str) -> Option<MetricValue> {
        self.values.get(metric).copied()
    }

    /// All metric values.
    #[must_use]
    pub fn values(&self) -> &BTreeMap<&'static str, MetricValue> {
        &self.values
    }

    /// Names of metrics flagged as smells.
    #[must_use]
    pub fn smells(&self) -> &[&'static str] {
        &self.smells
    }

    /// Number of flagged smells.
    #[must_use]
    pub fn smell_count(&self) -> usize {
        self.smells.len()
    }

    /// `true` iff at least one smell was flagged.
    #[must_use]
    pub fn is_smelly(&self) -> bool {
        !self.smells.is_empty()
    }
}

/// Aggregate over a corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusReport {
    reports: Vec<DocumentReport>,
}

impl CorpusReport {
    /// Per-document reports in input order.
    #[must_use]
    pub fn documents(&self) -> &[DocumentReport] {
        &self.reports
    }

    /// Number of analysed documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// `true` iff no documents were analysed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Fraction of documents with at least one smell.
    #[must_use]
    pub fn smelly_ratio(&self) -> f64 {
        if self.reports.is_empty() {
            0.0
        } else {
            self.reports.iter().filter(|r| r.is_smelly()).count() as f64 / self.reports.len() as f64
        }
    }

    /// Count of documents flagged with the named smell.
    #[must_use]
    pub fn flagged_with(&self, metric: &str) -> usize {
        self.reports
            .iter()
            .filter(|r| r.smells.contains(&metric))
            .count()
    }

    /// Precision/recall of the smell flags against ground truth: `truth`
    /// maps document ids to "really smelly". Used by E1, where the corpus
    /// generator knows which documents it salted.
    #[must_use]
    pub fn score_against(&self, truth: &dyn Fn(&str) -> bool) -> PrecisionRecall {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        let mut tn = 0usize;
        for r in &self.reports {
            match (r.is_smelly(), truth(r.id())) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => tn += 1,
            }
        }
        PrecisionRecall {
            true_positives: tp,
            false_positives: fp,
            false_negatives: fn_,
            true_negatives: tn,
        }
    }

    /// Renders the corpus analysis as CSV: one row per document with
    /// every metric's raw value plus the flagged-smell list. Column
    /// order follows the first document's metric map (stable across the
    /// corpus since every document runs the same suite).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let Some(first) = self.reports.first() else {
            return String::from("req_id,smells\n");
        };
        let metric_names: Vec<&str> = first.values.keys().copied().collect();
        let mut out = String::from("req_id");
        for m in &metric_names {
            out.push(',');
            out.push_str(m);
        }
        out.push_str(",smells\n");
        for r in &self.reports {
            out.push_str(r.id());
            for m in &metric_names {
                let v = r.value(m).map_or(0.0, |v| v.raw);
                out.push_str(&format!(",{v}"));
            }
            out.push_str(&format!(",\"{}\"\n", r.smells().join(";")));
        }
        out
    }

    /// Renders a fixed-width table, one row per document: id, smell
    /// count, flagged smell names.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<16} {:>7}  {}\n", "REQ", "SMELLS", "FLAGGED"));
        for r in &self.reports {
            out.push_str(&format!(
                "{:<16} {:>7}  {}\n",
                r.id(),
                r.smell_count(),
                r.smells().join(", ")
            ));
        }
        out.push_str(&format!(
            "-- {} documents, {:.1}% smelly\n",
            self.len(),
            100.0 * self.smelly_ratio()
        ));
        out
    }
}

impl fmt::Display for CorpusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

/// Binary-classification counts with derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecisionRecall {
    /// Flagged and actually smelly.
    pub true_positives: usize,
    /// Flagged but clean.
    pub false_positives: usize,
    /// Missed smells.
    pub false_negatives: usize,
    /// Correctly unflagged.
    pub true_negatives: usize,
}

impl PrecisionRecall {
    /// `tp / (tp + fp)`; 1 when nothing was flagged.
    #[must_use]
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// `tp / (tp + fn)`; 1 when nothing was smelly.
    #[must_use]
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall (0 when both are 0).
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Runs a metric suite over documents and corpora.
pub struct Analyzer {
    metrics: Vec<Box<dyn Metric>>,
    thresholds: SmellThresholds,
}

impl Analyzer {
    /// Creates an analyzer over a custom metric suite.
    #[must_use]
    pub fn new(metrics: Vec<Box<dyn Metric>>, thresholds: SmellThresholds) -> Self {
        Analyzer {
            metrics,
            thresholds,
        }
    }

    /// The default NALABS configuration: full metric suite, default
    /// thresholds.
    #[must_use]
    pub fn with_default_metrics() -> Self {
        Analyzer::new(metrics::default_suite(), SmellThresholds::default())
    }

    /// The thresholds in force.
    #[must_use]
    pub fn thresholds(&self) -> &SmellThresholds {
        &self.thresholds
    }

    /// Analyses one document.
    #[must_use]
    pub fn analyze(&self, doc: &RequirementDoc) -> DocumentReport {
        let stats = TextStats::of(doc.text());
        let mut values = BTreeMap::new();
        let mut smells = Vec::new();
        for m in &self.metrics {
            let v = m.evaluate(&stats);
            if self.thresholds.is_smelly(m.name(), v, &stats) {
                smells.push(m.name());
            }
            values.insert(m.name(), v);
        }
        DocumentReport {
            id: doc.id().to_string(),
            values,
            smells,
        }
    }

    /// Analyses a corpus.
    #[must_use]
    pub fn analyze_corpus<'a, I>(&self, docs: I) -> CorpusReport
    where
        I: IntoIterator<Item = &'a RequirementDoc>,
    {
        CorpusReport {
            reports: docs.into_iter().map(|d| self.analyze(d)).collect(),
        }
    }

    /// Like [`analyze_corpus`](Self::analyze_corpus), but records one
    /// `nalabs.verdict` event per document in `journal` — Info for a
    /// clean document, Warn for a smelly one. When `parent` is given
    /// (the commit's trace context in the pipeline), each verdict is a
    /// child span labelled with the document id, so a rejected
    /// requirement resolves back to the commit that shipped it. With a
    /// disabled journal this is exactly `analyze_corpus`.
    #[must_use]
    pub fn analyze_corpus_traced(
        &self,
        docs: &[RequirementDoc],
        parent: Option<vdo_trace::TraceContext>,
        journal: &vdo_trace::Journal,
    ) -> CorpusReport {
        let report = self.analyze_corpus(docs);
        if journal.is_enabled() {
            for d in report.documents() {
                let mut ev = if d.is_smelly() {
                    vdo_trace::Event::warn("nalabs.verdict")
                } else {
                    vdo_trace::Event::info("nalabs.verdict")
                }
                .field("doc", d.id())
                .field("smelly", d.is_smelly())
                .field("smells", d.smell_count());
                if let Some(p) = parent {
                    ev = ev.trace(p.child(d.id()));
                }
                journal.emit(ev);
            }
        }
        report
    }

    /// Analyses a corpus on `threads` worker threads (documents are
    /// independent, so the corpus is chunked and results reassembled in
    /// input order). Produces exactly the same report as
    /// [`analyze_corpus`](Self::analyze_corpus).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn analyze_corpus_parallel(&self, docs: &[RequirementDoc], threads: usize) -> CorpusReport {
        assert!(threads > 0, "need at least one worker thread");
        if docs.is_empty() {
            return CorpusReport {
                reports: Vec::new(),
            };
        }
        let chunk = docs.len().div_ceil(threads);
        let reports = std::thread::scope(|scope| {
            let handles: Vec<_> = docs
                .chunks(chunk)
                .map(|slice| {
                    scope.spawn(move || slice.iter().map(|d| self.analyze(d)).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("analysis worker panicked"))
                .collect()
        });
        CorpusReport { reports }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: &str, text: &str) -> RequirementDoc {
        RequirementDoc::new(id, text)
    }

    #[test]
    fn clean_requirement_is_clean() {
        let a = Analyzer::with_default_metrics();
        let r = a.analyze(&doc(
            "R-1",
            "The system shall lock the user session after 15 minutes of inactivity.",
        ));
        assert!(!r.is_smelly(), "flagged: {:?}", r.smells());
    }

    #[test]
    fn smelly_requirement_is_flagged() {
        let a = Analyzer::with_default_metrics();
        let r = a.analyze(&doc(
            "R-2",
            "The system may possibly provide adequate security as appropriate, \
             see section 3 and refer to table 2, TBD.",
        ));
        assert!(r.smells().contains(&"optionality"));
        assert!(r.smells().contains(&"references"));
        assert!(r.smells().contains(&"incompleteness"));
        assert!(r.smells().contains(&"imperatives"), "no modal verb present");
    }

    #[test]
    fn missing_imperative_only_flagged_for_nonempty() {
        let a = Analyzer::with_default_metrics();
        let empty = a.analyze(&doc("R-0", ""));
        assert!(!empty.smells().contains(&"imperatives"));
    }

    #[test]
    fn oversize_flagged() {
        let a = Analyzer::with_default_metrics();
        let long = "word ".repeat(100) + "shall";
        let r = a.analyze(&doc("R-3", &long));
        assert!(r.smells().contains(&"size_words"));
    }

    #[test]
    fn corpus_aggregation_and_scoring() {
        let a = Analyzer::with_default_metrics();
        let docs = vec![
            doc(
                "clean-1",
                "The system shall log every failed logon attempt.",
            ),
            doc(
                "smelly-1",
                "The system may be fast and easy, TBD, see section 9.",
            ),
            doc(
                "clean-2",
                "The device shall encrypt stored credentials with AES-256.",
            ),
        ];
        let report = a.analyze_corpus(&docs);
        assert_eq!(report.len(), 3);
        assert!((report.smelly_ratio() - 1.0 / 3.0).abs() < 1e-9);
        let pr = report.score_against(&|id: &str| id.starts_with("smelly"));
        assert_eq!(pr.true_positives, 1);
        assert_eq!(pr.false_positives, 0);
        assert_eq!(pr.false_negatives, 0);
        assert!((pr.precision() - 1.0).abs() < 1e-9);
        assert!((pr.recall() - 1.0).abs() < 1e-9);
        assert!((pr.f1() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn precision_recall_edge_cases() {
        let pr = PrecisionRecall {
            true_positives: 0,
            false_positives: 0,
            false_negatives: 0,
            true_negatives: 5,
        };
        assert_eq!(pr.precision(), 1.0);
        assert_eq!(pr.recall(), 1.0);
        let bad = PrecisionRecall {
            true_positives: 0,
            false_positives: 3,
            false_negatives: 2,
            true_negatives: 0,
        };
        assert_eq!(bad.precision(), 0.0);
        assert_eq!(bad.recall(), 0.0);
        assert_eq!(bad.f1(), 0.0);
    }

    #[test]
    fn traced_analysis_journals_per_document_verdicts() {
        use vdo_trace::{Journal, TraceContext};
        let a = Analyzer::with_default_metrics();
        let docs = vec![
            doc("clean-1", "The system shall log every failed logon."),
            doc("smelly-1", "The system may be fast and easy, TBD."),
        ];
        let journal = Journal::new();
        let parent = TraceContext::root(9, "commit-7");
        let traced = a.analyze_corpus_traced(&docs, Some(parent), &journal);
        assert_eq!(
            traced,
            a.analyze_corpus(&docs),
            "tracing never changes verdicts"
        );
        let snap = journal.snapshot();
        let verdicts = snap.events_named("nalabs.verdict");
        assert_eq!(verdicts.len(), 2);
        for (ev, d) in verdicts.iter().zip(&docs) {
            let t = ev.trace.expect("parent given, child minted");
            assert_eq!(t, parent.child(d.id()));
        }
        // Disabled journal: silent, identical report.
        let silent = Journal::default();
        let r = a.analyze_corpus_traced(&docs, None, &silent);
        assert_eq!(r, traced);
        assert!(silent.snapshot().events.is_empty());
    }

    #[test]
    fn parallel_analysis_matches_sequential() {
        let a = Analyzer::with_default_metrics();
        let docs: Vec<RequirementDoc> = (0..57)
            .map(|i| {
                doc(
                    &format!("R-{i}"),
                    if i % 3 == 0 {
                        "The system may possibly be adequate, TBD."
                    } else {
                        "The system shall log all failed logons."
                    },
                )
            })
            .collect();
        let sequential = a.analyze_corpus(&docs);
        for threads in [1, 2, 4, 7] {
            let parallel = a.analyze_corpus_parallel(&docs, threads);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
        assert!(a.analyze_corpus_parallel(&[], 4).is_empty());
    }

    #[test]
    fn csv_has_metric_columns() {
        let a = Analyzer::with_default_metrics();
        let report = a.analyze_corpus(&[doc("R-1", "The system may crash.")]);
        let csv = report.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(header.starts_with("req_id,"));
        assert!(header.contains("optionality"));
        assert!(header.ends_with("smells"));
        assert!(csv.lines().nth(1).unwrap().starts_with("R-1,"));
        // Empty corpus still yields a header.
        assert_eq!(a.analyze_corpus(&[]).to_csv(), "req_id,smells\n");
    }

    #[test]
    fn table_renders() {
        let a = Analyzer::with_default_metrics();
        let report = a.analyze_corpus(&[doc("R-9", "The system may crash.")]);
        let t = report.to_table();
        assert!(t.contains("R-9"));
        assert!(t.contains("documents"));
        assert_eq!(report.flagged_with("optionality"), 1);
    }
}
