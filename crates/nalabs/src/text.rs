//! Requirement documents and basic text statistics.

use std::fmt;

/// One natural-language requirement: an identifier plus its text, the
/// shape NALABS reads from the "REQ ID" and "Text" columns of a
/// requirements spreadsheet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RequirementDoc {
    id: String,
    text: String,
}

impl RequirementDoc {
    /// Creates a requirement document.
    #[must_use]
    pub fn new(id: impl Into<String>, text: impl Into<String>) -> Self {
        RequirementDoc {
            id: id.into(),
            text: text.into(),
        }
    }

    /// The requirement identifier.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The requirement text.
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }
}

impl fmt::Display for RequirementDoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.id, self.text)
    }
}

/// Tokenised view of a requirement's text with the counts every metric
/// needs. Computing it once per document and sharing it across metrics is
/// what makes corpus analysis linear in corpus size (experiment E2).
#[derive(Debug, Clone, PartialEq)]
pub struct TextStats {
    lower: String,
    words: Vec<String>,
    sentences: usize,
    letters: usize,
    chars: usize,
}

impl TextStats {
    /// Tokenises `text`: words are maximal alphanumeric (plus `-`/`'`)
    /// runs, lower-cased; sentences are split on `.`, `!`, `?`, `;`.
    #[must_use]
    pub fn of(text: &str) -> Self {
        let lower = text.to_lowercase();
        let mut words = Vec::new();
        let mut current = String::new();
        for c in lower.chars() {
            if c.is_alphanumeric() || (c == '-' || c == '\'') && !current.is_empty() {
                current.push(c);
            } else if !current.is_empty() {
                words.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            words.push(current);
        }
        // Trailing hyphens/apostrophes are punctuation, not word chars.
        for w in &mut words {
            while w.ends_with(['-', '\'']) {
                w.pop();
            }
        }
        words.retain(|w| !w.is_empty());

        let sentences = text
            .split(['.', '!', '?', ';'])
            .filter(|s| s.chars().any(char::is_alphanumeric))
            .count();
        let letters = text.chars().filter(|c| c.is_alphanumeric()).count();
        let chars = text.chars().count();
        TextStats {
            lower,
            words,
            sentences,
            letters,
            chars,
        }
    }

    /// Lower-cased full text (for phrase matching).
    #[must_use]
    pub fn lower(&self) -> &str {
        &self.lower
    }

    /// The word tokens, lower-cased, in order.
    #[must_use]
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Word count.
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Sentence count (at least 1 for non-empty text is *not*
    /// guaranteed — text without alphanumerics has zero sentences).
    #[must_use]
    pub fn sentence_count(&self) -> usize {
        self.sentences
    }

    /// Count of alphanumeric characters.
    #[must_use]
    pub fn letter_count(&self) -> usize {
        self.letters
    }

    /// Total character count.
    #[must_use]
    pub fn char_count(&self) -> usize {
        self.chars
    }

    /// Average words per sentence (`WS` in the D2.7 ARI formula);
    /// 0 for empty text.
    #[must_use]
    pub fn words_per_sentence(&self) -> f64 {
        if self.sentences == 0 {
            0.0
        } else {
            self.words.len() as f64 / self.sentences as f64
        }
    }

    /// Average letters per word (`SW` in the D2.7 ARI formula);
    /// 0 for empty text.
    #[must_use]
    pub fn letters_per_word(&self) -> f64 {
        if self.words.is_empty() {
            0.0
        } else {
            self.words.iter().map(|w| w.chars().count()).sum::<usize>() as f64
                / self.words.len() as f64
        }
    }

    /// Number of occurrences of `word` among the tokens.
    #[must_use]
    pub fn count_word(&self, word: &str) -> usize {
        let w = word.to_lowercase();
        self.words.iter().filter(|t| **t == w).count()
    }

    /// Number of (possibly overlapping) occurrences of a lower-case
    /// phrase in the text, matched on word boundaries.
    #[must_use]
    pub fn count_phrase(&self, phrase: &str) -> usize {
        let p = phrase.to_lowercase();
        if p.is_empty() {
            return 0;
        }
        // Word-boundary check: preceding/following char must not be
        // alphanumeric.
        let bytes = self.lower.as_bytes();
        let mut count = 0;
        let mut start = 0;
        while let Some(pos) = self.lower[start..].find(&p) {
            let at = start + pos;
            let before_ok = at == 0
                || !self.lower[..at]
                    .chars()
                    .next_back()
                    .is_some_and(char::is_alphanumeric);
            let end = at + p.len();
            let after_ok = end >= bytes.len()
                || !self.lower[end..]
                    .chars()
                    .next()
                    .is_some_and(char::is_alphanumeric);
            if before_ok && after_ok {
                count += 1;
            }
            start = at + 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenisation_basics() {
        let s = TextStats::of("The system SHALL lock the session. See section 4-2!");
        assert_eq!(s.word_count(), 9);
        assert_eq!(s.sentence_count(), 2);
        assert!(s.words().contains(&"shall".to_string()));
        assert!(s.words().contains(&"4-2".to_string()));
    }

    #[test]
    fn empty_and_punctuation_only() {
        let s = TextStats::of("");
        assert_eq!(s.word_count(), 0);
        assert_eq!(s.sentence_count(), 0);
        assert_eq!(s.words_per_sentence(), 0.0);
        assert_eq!(s.letters_per_word(), 0.0);
        let p = TextStats::of("... !!! ???");
        assert_eq!(p.word_count(), 0);
        assert_eq!(p.sentence_count(), 0);
    }

    #[test]
    fn word_counting() {
        let s = TextStats::of("may or may not, MAY be");
        assert_eq!(s.count_word("may"), 3);
        assert_eq!(s.count_word("or"), 1);
        assert_eq!(s.count_word("absent"), 0);
    }

    #[test]
    fn phrase_counting_respects_boundaries() {
        let s = TextStats::of("As appropriate, do X. Inappropriate things happen as appropriate.");
        assert_eq!(s.count_phrase("as appropriate"), 2);
        assert_eq!(
            s.count_phrase("appropriate"),
            2,
            "'Inappropriate' must not match"
        );
    }

    #[test]
    fn averages() {
        let s = TextStats::of("one two three. four five six.");
        assert!((s.words_per_sentence() - 3.0).abs() < 1e-9);
        // letters per word: (3+3+5+4+4+3)/6 = 22/6
        assert!((s.letters_per_word() - 22.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn apostrophes_and_hyphens_inside_words() {
        let s = TextStats::of("user's log-in shan't fail-");
        assert!(s.words().contains(&"user's".to_string()));
        assert!(s.words().contains(&"log-in".to_string()));
        assert!(
            s.words().contains(&"fail".to_string()),
            "trailing hyphen stripped"
        );
    }

    #[test]
    fn document_display() {
        let d = RequirementDoc::new("R-1", "text");
        assert_eq!(d.to_string(), "R-1: text");
        assert_eq!(d.id(), "R-1");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Tokenisation is total and its counts are mutually
            /// consistent on arbitrary (including non-ASCII) input.
            #[test]
            fn stats_invariants(s in "\\PC{0,200}") {
                let stats = TextStats::of(&s);
                prop_assert!(stats.letter_count() <= stats.char_count());
                if stats.word_count() == 0 {
                    prop_assert_eq!(stats.letters_per_word(), 0.0);
                } else {
                    prop_assert!(stats.letters_per_word() > 0.0);
                }
                // Phrase counting with any single word never exceeds the
                // raw substring count bound and never panics.
                let _ = stats.count_phrase("the");
                let _ = stats.count_word("the");
            }

            /// A word occurs among tokens at most as many times as its
            /// pattern appears in the text.
            #[test]
            fn count_word_bounded_by_tokens(words in prop::collection::vec("[a-z]{1,6}", 0..20)) {
                let text = words.join(" ");
                let stats = TextStats::of(&text);
                prop_assert_eq!(stats.word_count(), words.len());
                for w in &words {
                    let expected = words.iter().filter(|x| *x == w).count();
                    prop_assert_eq!(stats.count_word(w), expected);
                }
            }
        }
    }
}
