//! Smell dictionaries.
//!
//! NALABS metrics are dictionary-based: each smell has a curated list of
//! indicator words/phrases drawn from the requirements-quality literature
//! (Wilson et al.'s ARM quality indicators, QuARS, and the smells listed
//! in D2.7 §2.2.2). [`Dictionary`] supports deterministic shrinking for
//! the A1 ablation (recall vs dictionary size).

use crate::text::TextStats;

/// A list of indicator words/phrases for one smell category.
///
/// Entries containing a space are matched as phrases (word-boundary
/// aware); single words are matched against tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dictionary {
    name: &'static str,
    entries: Vec<&'static str>,
}

impl Dictionary {
    /// Creates a dictionary from a static entry list.
    #[must_use]
    pub fn new(name: &'static str, entries: Vec<&'static str>) -> Self {
        Dictionary { name, entries }
    }

    /// The smell category this dictionary indicates.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The entries.
    #[must_use]
    pub fn entries(&self) -> &[&'static str] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the dictionary has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of occurrences of any entry in `stats`.
    #[must_use]
    pub fn count_in(&self, stats: &TextStats) -> usize {
        self.entries
            .iter()
            .map(|e| {
                if e.contains(' ') {
                    stats.count_phrase(e)
                } else {
                    stats.count_word(e)
                }
            })
            .sum()
    }

    /// A deterministic prefix of the dictionary keeping `fraction` of the
    /// entries (at least one if the source is non-empty and
    /// `fraction > 0`). Used by the A1 ablation.
    #[must_use]
    pub fn shrunk(&self, fraction: f64) -> Dictionary {
        let f = fraction.clamp(0.0, 1.0);
        let keep = if f == 0.0 {
            0
        } else {
            ((self.entries.len() as f64 * f).round() as usize).max(1)
        };
        Dictionary {
            name: self.name,
            entries: self.entries.iter().copied().take(keep).collect(),
        }
    }
}

/// Coordinating conjunctions and connectives indicating compound
/// requirements (`ConjunctionMetric.cs`).
#[must_use]
pub fn conjunctions() -> Dictionary {
    Dictionary::new(
        "conjunctions",
        vec![
            "and",
            "or",
            "but",
            "however",
            "whereas",
            "although",
            "though",
            "meanwhile",
            "otherwise",
            "furthermore",
            "moreover",
            "also",
            "additionally",
            "besides",
            "on the other hand",
        ],
    )
}

/// Continuances indicating nested/structured requirements
/// (`ContinuancesMetric.cs`).
#[must_use]
pub fn continuances() -> Dictionary {
    Dictionary::new(
        "continuances",
        vec![
            "below",
            "as follows",
            "following",
            "listed",
            "in particular",
            "such as",
            "and so on",
            "etc",
            "in addition",
            "note that",
        ],
    )
}

/// Imperative (modal) verbs; their *presence* signals a well-formed
/// requirement, so this dictionary is scored inversely
/// (`ImperativesMetric.cs`).
#[must_use]
pub fn imperatives() -> Dictionary {
    Dictionary::new(
        "imperatives",
        vec![
            "shall",
            "must",
            "will",
            "is required to",
            "are applicable",
            "responsible for",
        ],
    )
}

/// Incompleteness placeholders (`ICountMetric.cs`).
#[must_use]
pub fn incompleteness() -> Dictionary {
    Dictionary::new(
        "incompleteness",
        vec![
            "tbd",
            "tbs",
            "tbe",
            "tbc",
            "tbr",
            "to be decided",
            "to be defined",
            "to be determined",
            "not defined",
            "not determined",
            "as a minimum",
        ],
    )
}

/// Optionality words giving developers latitude (`OptionalityMetric.cs`).
#[must_use]
pub fn optionality() -> Dictionary {
    Dictionary::new(
        "optionality",
        vec![
            "may",
            "can",
            "optionally",
            "as appropriate",
            "if needed",
            "if necessary",
            "possibly",
            "at the discretion of",
            "in case of",
            "as desired",
            "eventually",
        ],
    )
}

/// Out-of-document reference markers (`ReferencesMetric.cs`,
/// `References2.cs`).
#[must_use]
pub fn references() -> Dictionary {
    Dictionary::new(
        "references",
        vec![
            "see",
            "refer to",
            "as defined in",
            "as specified in",
            "according to",
            "in accordance with",
            "section",
            "paragraph",
            "clause",
            "figure",
            "table",
            "appendix",
            "annex",
            "document",
        ],
    )
}

/// Subjective / opinion words (`SubjectivityMetric.cs`).
#[must_use]
pub fn subjectivity() -> Dictionary {
    Dictionary::new(
        "subjectivity",
        vec![
            "similar",
            "better",
            "worse",
            "best",
            "worst",
            "take into account",
            "as far as possible",
            "user friendly",
            "user-friendly",
            "easy to use",
            "having in mind",
            "to the extent practical",
            "state of the art",
            "intuitive",
        ],
    )
}

/// Vague adjectives and quantifiers (the `Vagueness` smell).
#[must_use]
pub fn vagueness() -> Dictionary {
    Dictionary::new(
        "vagueness",
        vec![
            "clear",
            "easy",
            "strong",
            "good",
            "bad",
            "efficient",
            "useful",
            "significant",
            "fast",
            "slow",
            "recent",
            "some",
            "several",
            "many",
            "few",
            "about",
            "almost",
            "approximately",
            "roughly",
            "sufficient",
            "flexible",
            "robust",
            "seamless",
            "minimal",
            "reasonable",
        ],
    )
}

/// Weak words leaving room for interpretation (`WeaknessMetric.cs`).
#[must_use]
pub fn weakness() -> Dictionary {
    Dictionary::new(
        "weakness",
        vec![
            "adequate",
            "as appropriate",
            "be able to",
            "capable of",
            "effective",
            "as required",
            "normal",
            "provide for",
            "timely",
            "easy to",
            "if practical",
            "when necessary",
            "where applicable",
            "as applicable",
            "as a goal",
        ],
    )
}

/// Every smell dictionary, in a stable order.
#[must_use]
pub fn all() -> Vec<Dictionary> {
    vec![
        conjunctions(),
        continuances(),
        imperatives(),
        incompleteness(),
        optionality(),
        references(),
        subjectivity(),
        vagueness(),
        weakness(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_dictionaries_nonempty_and_lowercase() {
        for d in all() {
            assert!(!d.is_empty(), "{} is empty", d.name());
            for e in d.entries() {
                assert_eq!(*e, e.to_lowercase(), "{e} must be stored lower-case");
            }
        }
    }

    #[test]
    fn counting_words_and_phrases() {
        let stats = TextStats::of("The system shall be able to respond as appropriate and fast.");
        assert_eq!(weakness().count_in(&stats), 2); // "be able to", "as appropriate"
        assert_eq!(imperatives().count_in(&stats), 1); // "shall"
        assert_eq!(conjunctions().count_in(&stats), 1); // "and"
        assert_eq!(vagueness().count_in(&stats), 1); // "fast"
    }

    #[test]
    fn shrunk_keeps_prefix() {
        let d = vagueness();
        let half = d.shrunk(0.5);
        assert_eq!(half.len(), (d.len() as f64 / 2.0).round() as usize);
        assert_eq!(&d.entries()[..half.len()], half.entries());
        assert_eq!(d.shrunk(0.0).len(), 0);
        assert_eq!(d.shrunk(1.0).len(), d.len());
        assert_eq!(
            d.shrunk(0.0001).len(),
            1,
            "nonzero fraction keeps at least one entry"
        );
    }

    #[test]
    fn shrunk_clamps_out_of_range() {
        let d = optionality();
        assert_eq!(d.shrunk(7.0).len(), d.len());
        assert_eq!(d.shrunk(-1.0).len(), 0);
    }
}
