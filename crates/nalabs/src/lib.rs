//! # vdo-nalabs — bad-smell metrics for natural-language requirements
//!
//! Rust reproduction of **NALABS** (NAtural LAnguage Bad Smells), the
//! VeriDevOps tool that screens requirement documents *before* any
//! formalisation is attempted: a requirement that is vague, subjective,
//! or drowning in references cannot be turned into a checkable pattern,
//! so the pipeline's first quality gate measures these smells and rejects
//! or flags offending text.
//!
//! The metric suite mirrors the C# classes in the NALABS repository
//! (`ConjunctionMetric.cs`, `ContinuancesMetric.cs`, `ImperativesMetric.cs`,
//! `ICountMetric.cs`, `OptionalityMetric.cs`, `ReferencesMetric.cs`,
//! `SubjectivityMetric.cs`, `VaguenessMetric.cs`, `WeaknessMetric.cs`,
//! plus readability and size):
//!
//! | Metric | Smell |
//! |---|---|
//! | [`metrics::conjunctions`] | compound requirements (and/or chains) |
//! | [`metrics::continuances`] | nesting ("as follows:", "below:") |
//! | [`metrics::Imperatives`] | weak or missing modal verbs |
//! | [`metrics::incompleteness`] | TBD/TBS placeholders |
//! | [`metrics::optionality`] | latitude words ("may", "if needed") |
//! | [`metrics::references`] | out-of-document pointers |
//! | [`metrics::subjectivity`] | opinion words ("user friendly") |
//! | [`metrics::vagueness`] | imprecise adjectives ("fast", "adequate") |
//! | [`metrics::weakness`] | uncertainty words ("as appropriate") |
//! | [`metrics::Readability`] | ARI `WS + 9·SW` as defined in D2.7 |
//! | [`metrics::Size`] | over-complexity (chars/words/sentences) |
//!
//! ```
//! use vdo_nalabs::{Analyzer, RequirementDoc};
//!
//! let analyzer = Analyzer::with_default_metrics();
//! let doc = RequirementDoc::new(
//!     "REQ-1",
//!     "The system may, if needed, provide adequate security and good \
//!      performance as described in section 4.2.",
//! );
//! let report = analyzer.analyze(&doc);
//! assert!(report.smell_count() >= 3); // optionality, weakness/vagueness, references
//! ```

pub mod analysis;
pub mod dictionaries;
pub mod metrics;
pub mod text;

pub use analysis::{Analyzer, CorpusReport, DocumentReport, SmellThresholds};
pub use dictionaries::Dictionary;
pub use metrics::{Metric, MetricValue};
pub use text::{RequirementDoc, TextStats};
