//! The metric suite.
//!
//! Every metric maps a tokenised requirement ([`TextStats`]) to a
//! [`MetricValue`]: a raw count (or score) plus a density normalised by
//! word count, so thresholds transfer between short and long
//! requirements.

use std::fmt;

use crate::dictionaries::{self, Dictionary};
use crate::text::TextStats;

/// A metric result: the raw value and its per-word density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricValue {
    /// Raw count or score.
    pub raw: f64,
    /// `raw / word_count` (0 for empty text).
    pub density: f64,
}

impl MetricValue {
    /// Builds a value, computing density against `words`.
    #[must_use]
    pub fn counted(raw: f64, words: usize) -> Self {
        MetricValue {
            raw,
            density: if words == 0 { 0.0 } else { raw / words as f64 },
        }
    }
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ({:.3}/word)", self.raw, self.density)
    }
}

/// A requirement-quality metric.
pub trait Metric: Send + Sync {
    /// Stable metric name (used as report column header).
    fn name(&self) -> &'static str;

    /// Evaluates the metric on a tokenised requirement.
    fn evaluate(&self, stats: &TextStats) -> MetricValue;
}

/// Dictionary-count metric: raw = total occurrences of dictionary
/// entries. Covers conjunctions, continuances, incompleteness,
/// optionality, references, subjectivity, vagueness and weakness.
pub struct DictionaryMetric {
    name: &'static str,
    dictionary: Dictionary,
}

impl DictionaryMetric {
    /// Creates a metric counting hits of `dictionary`.
    #[must_use]
    pub fn new(name: &'static str, dictionary: Dictionary) -> Self {
        DictionaryMetric { name, dictionary }
    }

    /// The underlying dictionary.
    #[must_use]
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }
}

impl Metric for DictionaryMetric {
    fn name(&self) -> &'static str {
        self.name
    }
    fn evaluate(&self, stats: &TextStats) -> MetricValue {
        MetricValue::counted(self.dictionary.count_in(stats) as f64, stats.word_count())
    }
}

/// Compound-requirement smell (`ConjunctionMetric.cs`).
#[must_use]
pub fn conjunctions() -> DictionaryMetric {
    DictionaryMetric::new("conjunctions", dictionaries::conjunctions())
}

/// Nesting smell (`ContinuancesMetric.cs`).
#[must_use]
pub fn continuances() -> DictionaryMetric {
    DictionaryMetric::new("continuances", dictionaries::continuances())
}

/// Placeholder smell (`ICountMetric.cs`).
#[must_use]
pub fn incompleteness() -> DictionaryMetric {
    DictionaryMetric::new("incompleteness", dictionaries::incompleteness())
}

/// Latitude smell (`OptionalityMetric.cs`).
#[must_use]
pub fn optionality() -> DictionaryMetric {
    DictionaryMetric::new("optionality", dictionaries::optionality())
}

/// Reference smell (`ReferencesMetric.cs`).
#[must_use]
pub fn references() -> DictionaryMetric {
    DictionaryMetric::new("references", dictionaries::references())
}

/// Opinion smell (`SubjectivityMetric.cs`).
#[must_use]
pub fn subjectivity() -> DictionaryMetric {
    DictionaryMetric::new("subjectivity", dictionaries::subjectivity())
}

/// Imprecision smell.
#[must_use]
pub fn vagueness() -> DictionaryMetric {
    DictionaryMetric::new("vagueness", dictionaries::vagueness())
}

/// Uncertainty smell (`WeaknessMetric.cs`).
#[must_use]
pub fn weakness() -> DictionaryMetric {
    DictionaryMetric::new("weakness", dictionaries::weakness())
}

/// Imperative-mood check (`ImperativesMetric.cs`): a requirement without
/// any modal verb ("shall", "must", …) is not testable. Raw value is the
/// imperative count; the *smell* is a raw value of zero, which
/// [`crate::SmellThresholds`] flags.
pub struct Imperatives {
    dictionary: Dictionary,
}

impl Imperatives {
    /// Creates the imperative-presence metric.
    #[must_use]
    pub fn new() -> Self {
        Imperatives {
            dictionary: dictionaries::imperatives(),
        }
    }
}

impl Default for Imperatives {
    fn default() -> Self {
        Self::new()
    }
}

impl Metric for Imperatives {
    fn name(&self) -> &'static str {
        "imperatives"
    }
    fn evaluate(&self, stats: &TextStats) -> MetricValue {
        MetricValue::counted(self.dictionary.count_in(stats) as f64, stats.word_count())
    }
}

/// Automated Readability Index as defined in D2.7:
/// `ARI = WS + 9 × SW`, where `WS` is average words per sentence and
/// `SW` is average letters per word. Density is unused (0).
pub struct Readability;

impl Metric for Readability {
    fn name(&self) -> &'static str {
        "readability_ari"
    }
    fn evaluate(&self, stats: &TextStats) -> MetricValue {
        MetricValue {
            raw: stats.words_per_sentence() + 9.0 * stats.letters_per_word(),
            density: 0.0,
        }
    }
}

/// Over-complexity metric: requirement size in words (characters and
/// sentences are exposed on [`TextStats`]).
pub struct Size;

impl Metric for Size {
    fn name(&self) -> &'static str {
        "size_words"
    }
    fn evaluate(&self, stats: &TextStats) -> MetricValue {
        MetricValue {
            raw: stats.word_count() as f64,
            density: 0.0,
        }
    }
}

/// The full default metric suite, in report-column order.
#[must_use]
pub fn default_suite() -> Vec<Box<dyn Metric>> {
    vec![
        Box::new(conjunctions()),
        Box::new(continuances()),
        Box::new(Imperatives::new()),
        Box::new(incompleteness()),
        Box::new(optionality()),
        Box::new(references()),
        Box::new(subjectivity()),
        Box::new(vagueness()),
        Box::new(weakness()),
        Box::new(Readability),
        Box::new(Size),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(text: &str) -> TextStats {
        TextStats::of(text)
    }

    #[test]
    fn dictionary_metric_counts_and_normalises() {
        let m = vagueness();
        let v = m.evaluate(&stats("a fast and easy system"));
        assert_eq!(v.raw, 2.0);
        assert!((v.density - 2.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_text_is_zero_everywhere() {
        let s = stats("");
        for m in default_suite() {
            let v = m.evaluate(&s);
            assert_eq!(v.raw, 0.0, "{} must be 0 on empty text", m.name());
            assert_eq!(v.density, 0.0);
        }
    }

    #[test]
    fn imperatives_present_vs_absent() {
        let with = Imperatives::new().evaluate(&stats("The system shall lock."));
        assert_eq!(with.raw, 1.0);
        let without = Imperatives::new().evaluate(&stats("The system locks quickly."));
        assert_eq!(without.raw, 0.0);
    }

    #[test]
    fn readability_formula() {
        // 2 sentences, 6 words, letters: one3 two3 three5 four4 five4 six3 = 22
        let v = Readability.evaluate(&stats("one two three. four five six."));
        let expected = 3.0 + 9.0 * (22.0 / 6.0);
        assert!((v.raw - expected).abs() < 1e-9);
    }

    #[test]
    fn size_counts_words() {
        assert_eq!(Size.evaluate(&stats("a b c d")).raw, 4.0);
    }

    #[test]
    fn suite_has_unique_names() {
        let suite = default_suite();
        let mut names: Vec<_> = suite.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert_eq!(before, 11);
    }

    #[test]
    fn value_display() {
        let v = MetricValue::counted(3.0, 10);
        assert_eq!(v.to_string(), "3.00 (0.300/word)");
    }
}
