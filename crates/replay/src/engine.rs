//! Recording, checkpointing, and deterministic re-execution.
//!
//! # Why truncation-replay is exact
//!
//! Every source of randomness in the SOC engine (drift timing and
//! content, telemetry, fault rolls) is drawn on the main thread in
//! tick order from seeded generators, and every journal event is
//! emitted on the main thread. Events produced during tick `t`
//! therefore depend only on the simulation history up to `t` — so a
//! re-run of the same [`RunSpec`] truncated to `T` ticks emits *the
//! exact prefix* of the full run's accepted event stream (same events,
//! same order, same seqs). "Checkpoint + roll-forward" then needs no
//! serialized engine state at all: the genesis state is the
//! checkpoint (derivable from the spec alone), and rolling forward is
//! re-executing `T` ticks. A [`Checkpoint`] stores only the *digests*
//! of the causal cut at its tick, so verification is cheap.
//!
//! Worker counts are orthogonal: the engine's documented contract
//! (property-tested here and in `vdo-soc`) is that incident logs and
//! journal multisets are byte-identical at any worker count, so a run
//! recorded with 4 workers replays bit-exactly with 1 or 2.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use vdo_core::RemediationPlanner;
use vdo_host::UnixHost;
use vdo_soc::{SocEngine, SocMetrics, SocReport, SocTracing};
use vdo_stigs::ubuntu;
use vdo_trace::colfmt::{DirWriter, JournalDir};
use vdo_trace::{
    Event, Journal, JournalConfig, MemorySink, SamplingPolicy, SamplingSink, SamplingStats,
    Severity,
};

use crate::spec::RunSpec;

/// Version line leading `checkpoints.txt`.
pub const CHECKPOINTS_VERSION: &str = "vdo-replay-checkpoints v1";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv_fold(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

fn digest_sorted_lines(mut lines: Vec<String>) -> u64 {
    lines.sort_unstable();
    let mut h = FNV_OFFSET;
    for line in &lines {
        h = fnv_fold(h, line.as_bytes());
        h = fnv_fold(h, b"\n");
    }
    h
}

/// Order-independent digest of the causal cut at `upto_tick`: the
/// sorted canonical lines of every event with `at < upto_tick`.
#[must_use]
pub fn journal_digest_of(events: &[(u64, Event)], upto_tick: u64) -> u64 {
    digest_sorted_lines(
        events
            .iter()
            .filter(|(_, e)| e.at < upto_tick)
            .map(|(_, e)| e.canonical_line())
            .collect(),
    )
}

/// The verdict log of the cut at `upto_tick`: every `Warn`-and-above
/// event (detections, TEARS violations, retries, dead letters, SLO
/// alerts) as sorted canonical lines joined by `\n`. Two runs whose
/// verdict logs are equal as strings behaved identically on every
/// security-relevant outcome.
#[must_use]
pub fn verdict_log_of(events: &[(u64, Event)], upto_tick: u64) -> String {
    let mut lines: Vec<String> = events
        .iter()
        .filter(|(_, e)| e.at < upto_tick && e.severity >= Severity::Warn)
        .map(|(_, e)| e.canonical_line())
        .collect();
    lines.sort_unstable();
    lines.join("\n")
}

/// FNV digest of [`verdict_log_of`]'s bytes — equal digests ⇔
/// byte-identical verdict logs.
#[must_use]
pub fn verdict_digest_of(events: &[(u64, Event)], upto_tick: u64) -> u64 {
    fnv_fold(FNV_OFFSET, verdict_log_of(events, upto_tick).as_bytes())
}

/// Ring sizing for recording/replay journals: the sink (disk or
/// memory) is the durable copy, so the ring is kept minimal.
fn capture_config(spec: &RunSpec) -> JournalConfig {
    let _ = spec;
    JournalConfig {
        shards: 1,
        capacity_per_shard: 1,
        min_severity: Severity::Debug,
    }
}

/// Builds the spec's fleet and runs the SOC engine against `journal`,
/// optionally with a worker override and/or truncated duration.
fn run_soc(
    spec: &RunSpec,
    workers: Option<usize>,
    duration: Option<u64>,
    journal: &Journal,
) -> (SocReport, Vec<UnixHost>) {
    let catalog = ubuntu::catalog();
    let planner = RemediationPlanner::default();
    let mut fleet: Vec<UnixHost> = (0..spec.hosts)
        .map(|_| {
            let mut h = UnixHost::baseline_ubuntu_1804();
            planner.run(&catalog, &mut h);
            h
        })
        .collect();
    let engine = SocEngine::new(&catalog, spec.soc_config(workers, duration))
        .expect("replay spec maps to a valid SOC config");
    let tracing = SocTracing::new(journal.clone(), spec.trace_seed);
    let report = engine.run_traced(&mut fleet, &SocMetrics::new(), &tracing);
    (report, fleet)
}

/// One verified cut of the recorded run: the causal cut at `tick` is
/// the multiset of journal events with `at < tick`, summarized by two
/// digests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// The cut's tick boundary.
    pub tick: u64,
    /// Events in the cut.
    pub events: u64,
    /// [`journal_digest_of`] the cut.
    pub journal_digest: u64,
    /// [`verdict_digest_of`] the cut.
    pub verdict_digest: u64,
}

/// What [`record`] produced: the live report plus the journal
/// directory and its checkpoint schedule.
#[derive(Debug)]
pub struct Recording {
    /// The spec that was run.
    pub spec: RunSpec,
    /// The live run's report.
    pub report: SocReport,
    /// Checkpoints cut every `spec.checkpoint_period` ticks.
    pub checkpoints: Vec<Checkpoint>,
    /// Where the journal was written.
    pub dir: PathBuf,
}

/// Runs `spec` live with a columnar [`DirWriter`] sink under `dir`,
/// then derives and stores the checkpoint schedule
/// (`checkpoints.txt`). The spec itself rides in every segment header,
/// so the directory is self-describing: [`Replayer::open`] needs
/// nothing else.
pub fn record(spec: &RunSpec, dir: &Path) -> io::Result<Recording> {
    let sink = DirWriter::create(dir, &spec.to_header())?;
    let journal = Journal::with_sink(capture_config(spec), Box::new(sink));
    let (report, _fleet) = run_soc(spec, None, None, &journal);
    journal.sync();
    let checkpoints = derive_and_store_checkpoints(spec, dir)?;
    Ok(Recording {
        spec: *spec,
        report,
        checkpoints,
        dir: dir.to_path_buf(),
    })
}

/// Digests the on-disk event stream at every checkpoint tick and
/// writes `checkpoints.txt` beside the segments.
fn derive_and_store_checkpoints(spec: &RunSpec, dir: &Path) -> io::Result<Vec<Checkpoint>> {
    let events = JournalDir::open(dir)?.events()?;
    let checkpoints: Vec<Checkpoint> = spec
        .checkpoint_ticks()
        .into_iter()
        .map(|tick| Checkpoint {
            tick,
            events: events.iter().filter(|(_, e)| e.at < tick).count() as u64,
            journal_digest: journal_digest_of(&events, tick),
            verdict_digest: verdict_digest_of(&events, tick),
        })
        .collect();
    let mut text = format!("{CHECKPOINTS_VERSION}\n");
    for cp in &checkpoints {
        use std::fmt::Write as _;
        let _ = writeln!(
            text,
            "tick={} events={} journal={:016x} verdict={:016x}",
            cp.tick, cp.events, cp.journal_digest, cp.verdict_digest
        );
    }
    fs::write(dir.join("checkpoints.txt"), text)?;
    Ok(checkpoints)
}

/// Like [`record`], but the columnar sink rides behind an adaptive
/// tail-based [`SamplingSink`]: quiet traces are head-sampled at
/// `policy.keep_1_in`, anomalous causal chains (Warn-and-above,
/// slow spans, trace roots) are kept whole. Because the sampler always
/// keeps every `Warn`-and-above event, the sampled directory's verdict
/// digests — and therefore [`Replayer`] checkpoint verification, which
/// replays the *spec*, not the events — are identical to an unsampled
/// recording's; only the all-severity `journal_digest` differs.
pub fn record_sampled(
    spec: &RunSpec,
    dir: &Path,
    policy: SamplingPolicy,
) -> io::Result<(Recording, SamplingStats)> {
    let sink = SamplingSink::new(DirWriter::create(dir, &spec.to_header())?, policy);
    let stats = sink.stats();
    let journal = Journal::with_sink(capture_config(spec), Box::new(sink));
    let (report, _fleet) = run_soc(spec, None, None, &journal);
    journal.sync();
    let checkpoints = derive_and_store_checkpoints(spec, dir)?;
    Ok((
        Recording {
            spec: *spec,
            report,
            checkpoints,
            dir: dir.to_path_buf(),
        },
        stats,
    ))
}

fn parse_checkpoints(text: &str) -> io::Result<Vec<Checkpoint>> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut lines = text.lines();
    let version = lines.next().unwrap_or("");
    if version != CHECKPOINTS_VERSION {
        return Err(bad(format!("unsupported checkpoints version {version:?}")));
    }
    let mut out = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut cp = Checkpoint {
            tick: 0,
            events: 0,
            journal_digest: 0,
            verdict_digest: 0,
        };
        for token in line.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| bad(format!("malformed checkpoint token {token:?}")))?;
            let err = |_| bad(format!("malformed checkpoint value {token:?}"));
            match key {
                "tick" => cp.tick = value.parse().map_err(err)?,
                "events" => cp.events = value.parse().map_err(err)?,
                "journal" => cp.journal_digest = u64::from_str_radix(value, 16).map_err(err)?,
                "verdict" => cp.verdict_digest = u64::from_str_radix(value, 16).map_err(err)?,
                _ => continue,
            }
        }
        out.push(cp);
    }
    Ok(out)
}

/// The reconstructed state a replay produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The tick boundary replayed to (state *after* ticks
    /// `0..tick` executed).
    pub tick: u64,
    /// The truncated run's report (incidents, dead letters, metrics).
    pub report: SocReport,
    /// Fleet state at the boundary: every host's full configuration.
    pub fleet: Vec<UnixHost>,
    /// The replayed journal cut: every accepted event with
    /// `at < tick`, with its seq.
    pub events: Vec<(u64, Event)>,
}

impl ReplayOutcome {
    /// [`journal_digest_of`] the replayed cut.
    #[must_use]
    pub fn journal_digest(&self) -> u64 {
        journal_digest_of(&self.events, self.tick)
    }

    /// [`verdict_log_of`] the replayed cut.
    #[must_use]
    pub fn verdict_log(&self) -> String {
        verdict_log_of(&self.events, self.tick)
    }

    /// [`verdict_digest_of`] the replayed cut.
    #[must_use]
    pub fn verdict_digest(&self) -> u64 {
        verdict_digest_of(&self.events, self.tick)
    }

    /// Order-sensitive digest over every host's full debug rendering —
    /// two replays with equal fingerprints reconstructed bit-identical
    /// fleet state.
    #[must_use]
    pub fn fleet_fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for host in &self.fleet {
            h = fnv_fold(h, format!("{host:?}").as_bytes());
            h = fnv_fold(h, b"\n");
        }
        h
    }
}

/// A checkpoint replay plus its verification verdicts.
#[derive(Debug)]
pub struct CheckpointReplay {
    /// The checkpoint that was targeted.
    pub checkpoint: Checkpoint,
    /// The reconstructed state.
    pub outcome: ReplayOutcome,
    /// `true` when the replayed journal cut digests identically.
    pub journal_match: bool,
    /// `true` when the replayed verdict log digests identically.
    pub verdict_match: bool,
}

/// A counterfactual re-run of the recorded scenario under a modified
/// spec.
#[derive(Debug)]
pub struct WhatIf {
    /// The modified spec the variant ran under.
    pub variant_spec: RunSpec,
    /// The recorded scenario replayed as-is.
    pub baseline: SocReport,
    /// The scenario under the modified spec.
    pub variant: SocReport,
}

/// Incidents detected in the window `[start, end)` of a report.
#[must_use]
pub fn incidents_in_window(report: &SocReport, start: u64, end: u64) -> usize {
    report
        .incidents
        .iter()
        .filter(|i| i.detected_at >= start && i.detected_at < end)
        .count()
}

/// Re-executes a recorded run from its journal directory.
///
/// Open is cheap: only the segment header (the [`RunSpec`]) and the
/// checkpoint schedule are read. Each `replay_*` call then re-runs the
/// deterministic simulation up to the requested boundary — see the
/// module docs for why that reconstructs the live run bit-exactly.
#[derive(Debug)]
pub struct Replayer {
    spec: RunSpec,
    dir: PathBuf,
    checkpoints: Vec<Checkpoint>,
}

impl Replayer {
    /// Opens a journal directory written by [`record`] (or a
    /// [`vdo_trace::colfmt::compact`]ed copy of one — compaction
    /// preserves the header; the checkpoint file is optional).
    pub fn open(dir: &Path) -> io::Result<Self> {
        let disk = JournalDir::open(dir)?;
        let spec = RunSpec::from_header(&disk.header()?)?;
        let checkpoints = match fs::read_to_string(dir.join("checkpoints.txt")) {
            Ok(text) => parse_checkpoints(&text)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        Ok(Replayer {
            spec,
            dir: dir.to_path_buf(),
            checkpoints,
        })
    }

    /// The recorded run's spec.
    #[must_use]
    pub fn spec(&self) -> &RunSpec {
        &self.spec
    }

    /// The recorded checkpoint schedule (empty when the directory
    /// carries no `checkpoints.txt`).
    #[must_use]
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// Reconstructs fleet + SOC state at the causal cut `tick`
    /// (state after ticks `0..tick`), optionally on a different
    /// worker count than the live run.
    #[must_use]
    pub fn replay_to_tick(&self, tick: u64, workers: Option<usize>) -> ReplayOutcome {
        let sink = MemorySink::new();
        let entries = sink.entries();
        let journal = Journal::with_sink(capture_config(&self.spec), Box::new(sink));
        let (report, fleet) = run_soc(&self.spec, workers, Some(tick), &journal);
        let mut events = std::mem::take(&mut *entries.lock().expect("capture sink poisoned"));
        events.retain(|(_, e)| e.at < tick);
        ReplayOutcome {
            tick,
            report,
            fleet,
            events,
        }
    }

    /// Replays to checkpoint `index` and verifies the replayed cut
    /// against the recorded digests.
    ///
    /// # Panics
    /// When `index` is outside [`checkpoints`](Replayer::checkpoints).
    #[must_use]
    pub fn replay_to_checkpoint(&self, index: usize, workers: Option<usize>) -> CheckpointReplay {
        let checkpoint = self.checkpoints[index];
        let outcome = self.replay_to_tick(checkpoint.tick, workers);
        CheckpointReplay {
            checkpoint,
            journal_match: outcome.journal_digest() == checkpoint.journal_digest,
            verdict_match: outcome.verdict_digest() == checkpoint.verdict_digest,
            outcome,
        }
    }

    /// Reconstructs state at journal sequence number `seq`: the
    /// block index locates the event's tick `t` without scanning, and
    /// the replay rolls forward to the cut *after* tick `t` (the
    /// earliest boundary at which the event has happened).
    pub fn replay_to_seq(&self, seq: u64, workers: Option<usize>) -> io::Result<ReplayOutcome> {
        let tick = JournalDir::open(&self.dir)?
            .tick_for_seq(seq)?
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("seq {seq} is not in the journal"),
                )
            })?;
        Ok(self.replay_to_tick(tick + 1, workers))
    }

    /// Counterfactual: replays the recorded scenario once as-is and
    /// once under `mutate`-d spec (e.g. halved drift, injected
    /// remediation faults, another fleet size), returning both reports
    /// for comparison.
    #[must_use]
    pub fn what_if(&self, mutate: impl FnOnce(&mut RunSpec)) -> WhatIf {
        let mut variant_spec = self.spec;
        mutate(&mut variant_spec);
        let baseline = self.replay_to_tick(self.spec.duration, None).report;
        let (variant, _fleet) = run_soc(&variant_spec, None, None, &Journal::disabled());
        WhatIf {
            variant_spec,
            baseline,
            variant,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vdo-replay-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_spec() -> RunSpec {
        RunSpec {
            seed: 23,
            trace_seed: 5,
            hosts: 6,
            duration: 80,
            drift_rate: 0.05,
            workers: 2,
            shards: 8,
            fault_rate: 0.3,
            checkpoint_period: 20,
        }
    }

    #[test]
    fn record_then_open_recovers_the_spec_and_checkpoints() {
        let dir = tmp("open");
        let spec = small_spec();
        let rec = record(&spec, &dir).unwrap();
        assert_eq!(rec.checkpoints.len(), 4);
        assert_eq!(rec.checkpoints.last().unwrap().tick, 80);
        let rp = Replayer::open(&dir).unwrap();
        assert_eq!(rp.spec(), &spec);
        assert_eq!(rp.checkpoints(), rec.checkpoints.as_slice());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_replay_reproduces_the_live_run_byte_identically() {
        let dir = tmp("full");
        let spec = small_spec();
        let rec = record(&spec, &dir).unwrap();
        assert!(
            !rec.report.incidents.is_empty(),
            "workload must raise incidents for the test to mean anything"
        );
        let rp = Replayer::open(&dir).unwrap();
        let outcome = rp.replay_to_tick(spec.duration, None);
        assert_eq!(
            outcome.report.incident_log(),
            rec.report.incident_log(),
            "replayed incident log must be byte-identical"
        );
        let disk = JournalDir::open(&dir).unwrap().events().unwrap();
        assert_eq!(
            outcome.verdict_log(),
            verdict_log_of(&disk, spec.duration),
            "replayed verdict log must be byte-identical to the persisted one"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_to_seq_lands_just_after_the_events_tick() {
        let dir = tmp("seq");
        let spec = small_spec();
        record(&spec, &dir).unwrap();
        let disk = JournalDir::open(&dir).unwrap().events().unwrap();
        let (seq, event) = disk[disk.len() / 2].clone();
        let rp = Replayer::open(&dir).unwrap();
        let outcome = rp.replay_to_seq(seq, None).unwrap();
        assert_eq!(outcome.tick, event.at + 1);
        assert!(
            outcome.events.iter().any(|(s, e)| *s == seq && e == &event),
            "the target event is inside the reconstructed cut"
        );
        assert!(rp.replay_to_seq(u64::MAX, None).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn what_if_reruns_the_window_under_modified_config() {
        let dir = tmp("whatif");
        let spec = small_spec();
        record(&spec, &dir).unwrap();
        let rp = Replayer::open(&dir).unwrap();
        let wi = rp.what_if(|s| s.drift_rate = 0.0);
        assert!(wi.baseline.drift_events > 0, "baseline scenario drifts");
        assert_eq!(wi.variant.drift_events, 0, "counterfactual removed drift");
        assert!(incidents_in_window(&wi.variant, 0, spec.duration) == 0);
        assert!(incidents_in_window(&wi.baseline, 0, spec.duration) >= wi.baseline.incidents.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compacted_journals_still_replay() {
        let dir = tmp("compact");
        let out = tmp("compact-out");
        let spec = small_spec();
        let rec = record(&spec, &dir).unwrap();
        let stats = vdo_trace::colfmt::compact(&dir, &out, Severity::Warn, 100_000).unwrap();
        assert!(stats.events_out < stats.events_in);
        let rp = Replayer::open(&out).unwrap();
        assert_eq!(rp.spec(), &spec, "spec survives compaction in the header");
        assert!(rp.checkpoints().is_empty(), "checkpoint file is not copied");
        let outcome = rp.replay_to_tick(spec.duration, None);
        assert_eq!(
            outcome.verdict_digest(),
            rec.checkpoints.last().unwrap().verdict_digest,
            "replay from a compacted dir still reproduces the live verdicts"
        );
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&out);
    }
}
