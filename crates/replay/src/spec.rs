//! The serialized identity of a recorded run.
//!
//! Because every engine in this workspace is seed-deterministic, a
//! run is fully described by a handful of scalars — the [`RunSpec`].
//! The recorder stores it as the journal's segment header (a tiny
//! `key=value` text block, hand-parsed because the offline `serde`
//! stand-in has no JSON reader), and [`crate::Replayer::open`]
//! re-derives the whole simulation from it.

use std::io;

use vdo_soc::{RemediationConfig, SocConfig};

/// Version line leading a serialized spec.
pub const SPEC_VERSION: &str = "vdo-replay-spec v1";

/// Everything needed to re-run a recorded simulation bit-exactly:
/// the seeds, the fleet size, and the SOC configuration knobs the
/// recorder honours. Serialized into every journal segment's header.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Master seed for drift timing/content and fault rolls.
    pub seed: u64,
    /// Seed for requirement-root trace contexts.
    pub trace_seed: u64,
    /// Hardened hosts in the fleet.
    pub hosts: usize,
    /// Ticks simulated.
    pub duration: u64,
    /// Per-host per-tick drift probability.
    pub drift_rate: f64,
    /// Worker threads the live run used (replay may override — the
    /// engine's output is worker-count independent by contract).
    pub workers: usize,
    /// Bus shards.
    pub shards: usize,
    /// Remediation fault-injection probability.
    pub fault_rate: f64,
    /// Checkpoint spacing in ticks (a checkpoint is cut every
    /// `checkpoint_period` ticks, plus one at `duration`).
    pub checkpoint_period: u64,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            seed: 11,
            trace_seed: 11,
            hosts: 16,
            duration: 200,
            drift_rate: 0.02,
            workers: 4,
            shards: 16,
            fault_rate: 0.0,
            checkpoint_period: 50,
        }
    }
}

impl RunSpec {
    /// The `key=value` text block stored as the journal header. Floats
    /// use Rust's shortest round-trip rendering, so
    /// [`from_header`](RunSpec::from_header) reconstructs them
    /// bit-exactly.
    #[must_use]
    pub fn to_header(&self) -> String {
        format!(
            "{SPEC_VERSION}\n\
             seed={}\n\
             trace_seed={}\n\
             hosts={}\n\
             duration={}\n\
             drift_rate={:?}\n\
             workers={}\n\
             shards={}\n\
             fault_rate={:?}\n\
             checkpoint_period={}\n",
            self.seed,
            self.trace_seed,
            self.hosts,
            self.duration,
            self.drift_rate,
            self.workers,
            self.shards,
            self.fault_rate,
            self.checkpoint_period,
        )
    }

    /// Parses a header produced by [`to_header`](RunSpec::to_header).
    /// Unknown keys are ignored (forward compatibility); missing keys
    /// and malformed values are errors.
    pub fn from_header(header: &str) -> io::Result<RunSpec> {
        let mut lines = header.lines();
        let version = lines.next().unwrap_or("");
        if version != SPEC_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported spec version {version:?}"),
            ));
        }
        let mut spec = RunSpec::default();
        let mut seen = 0u32;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed spec line {line:?}"),
                ));
            };
            fn parse<T: std::str::FromStr>(key: &str, value: &str) -> io::Result<T> {
                value.parse().map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("malformed value for {key}: {value:?}"),
                    )
                })
            }
            match key {
                "seed" => spec.seed = parse(key, value)?,
                "trace_seed" => spec.trace_seed = parse(key, value)?,
                "hosts" => spec.hosts = parse(key, value)?,
                "duration" => spec.duration = parse(key, value)?,
                "drift_rate" => spec.drift_rate = parse(key, value)?,
                "workers" => spec.workers = parse(key, value)?,
                "shards" => spec.shards = parse(key, value)?,
                "fault_rate" => spec.fault_rate = parse(key, value)?,
                "checkpoint_period" => spec.checkpoint_period = parse(key, value)?,
                _ => continue, // forward compatibility
            }
            seen += 1;
        }
        if seen < 9 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("spec header incomplete ({seen}/9 keys)"),
            ));
        }
        Ok(spec)
    }

    /// The SOC configuration this spec describes, optionally truncated
    /// to `duration` ticks and/or run on a different worker count.
    #[must_use]
    pub fn soc_config(&self, workers: Option<usize>, duration: Option<u64>) -> SocConfig {
        SocConfig {
            duration: duration.unwrap_or(self.duration),
            drift_rate: self.drift_rate,
            workers: workers.unwrap_or(self.workers),
            shards: self.shards,
            seed: self.seed,
            remediation: RemediationConfig {
                fault_rate: self.fault_rate,
                ..RemediationConfig::default()
            },
            ..SocConfig::default()
        }
    }

    /// The ticks at which checkpoints are cut: every
    /// `checkpoint_period`, plus the run's end.
    #[must_use]
    pub fn checkpoint_ticks(&self) -> Vec<u64> {
        let period = self.checkpoint_period.max(1);
        let mut ticks: Vec<u64> = (1..=self.duration).filter(|t| t % period == 0).collect();
        if ticks.last() != Some(&self.duration) && self.duration > 0 {
            ticks.push(self.duration);
        }
        ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips_including_floats() {
        let spec = RunSpec {
            seed: 42,
            trace_seed: 7,
            hosts: 12,
            duration: 300,
            drift_rate: 0.037,
            workers: 3,
            shards: 8,
            fault_rate: 0.125,
            checkpoint_period: 60,
        };
        assert_eq!(RunSpec::from_header(&spec.to_header()).unwrap(), spec);
    }

    #[test]
    fn unknown_keys_are_ignored_missing_keys_are_not() {
        let mut header = RunSpec::default().to_header();
        header.push_str("future_knob=9\n");
        assert!(RunSpec::from_header(&header).is_ok());
        assert!(RunSpec::from_header("vdo-replay-spec v1\nseed=1\n").is_err());
        assert!(RunSpec::from_header("something else\n").is_err());
        assert!(RunSpec::from_header("vdo-replay-spec v1\nseed;1\n").is_err());
    }

    #[test]
    fn checkpoint_ticks_cover_the_run_end() {
        let spec = RunSpec {
            duration: 130,
            checkpoint_period: 50,
            ..RunSpec::default()
        };
        assert_eq!(spec.checkpoint_ticks(), [50, 100, 130]);
        let exact = RunSpec {
            duration: 100,
            checkpoint_period: 50,
            ..RunSpec::default()
        };
        assert_eq!(exact.checkpoint_ticks(), [50, 100]);
    }
}
