//! Deterministic replay over the columnar journal.
//!
//! `vdo-replay` turns a recorded journal directory into a time
//! machine for SOC runs:
//!
//! * [`record`] runs a [`RunSpec`] live with a columnar
//!   [`vdo_trace::colfmt::DirWriter`] sink, embeds the spec in every
//!   segment header, and stores a checkpoint schedule
//!   (`checkpoints.txt`) of digest-summarized causal cuts;
//! * [`Replayer`] reopens that directory — or a compacted copy of it —
//!   and reconstructs fleet + SOC state at any tick, checkpoint, or
//!   journal sequence number by re-executing the seed-deterministic
//!   simulation ([`Replayer::replay_to_tick`],
//!   [`Replayer::replay_to_checkpoint`], [`Replayer::replay_to_seq`]);
//! * [`Replayer::what_if`] re-runs the recorded scenario under a
//!   modified spec (different drift, fault injection, fleet size) for
//!   counterfactual analysis.
//!
//! Replays are *byte-exact*: the replayed verdict log (every
//! `Warn`-and-above event) and incident log are identical to the live
//! run's at every checkpoint and at any worker count — a property
//! test in this crate exercises exactly that claim.

pub mod engine;
pub mod spec;

pub use engine::{
    incidents_in_window, journal_digest_of, record, record_sampled, verdict_digest_of,
    verdict_log_of, Checkpoint, CheckpointReplay, Recording, ReplayOutcome, Replayer, WhatIf,
    CHECKPOINTS_VERSION,
};
pub use spec::{RunSpec, SPEC_VERSION};
