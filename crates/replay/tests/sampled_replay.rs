//! Tail-based sampling, property-tested against the replay engine: a
//! journal recorded through [`vdo_trace::SamplingSink`] is smaller in
//! events but loses *nothing that matters*.
//!
//! Each case records one seeded SOC run twice — unsampled and sampled
//! — and asserts that (a) every traced incident still resolves to its
//! `requirement.ingested` root inside the sampled directory, (b) the
//! sampled directory replays through [`vdo_replay::Replayer`] with
//! byte-identical verdict digests at 1, 2, and 4 workers (sampling
//! keeps every `Warn`-and-above event, so the verdict surface is
//! lossless), and (c) the sampler's keep/drop decisions are a pure
//! function of the event stream: recording the same spec at 1, 2, and
//! 4 workers yields byte-identical sampled directories.

use std::collections::HashSet;
use std::path::PathBuf;

use proptest::prelude::*;

use vdo_replay::{record, record_sampled, Replayer, RunSpec};
use vdo_trace::colfmt::JournalDir;
use vdo_trace::SamplingPolicy;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vdo-sampled-prop-{}-{tag}", std::process::id()))
}

proptest! {
    /// Sampled recordings keep every incident chain, every verdict,
    /// and every decision — independent of worker count.
    #[test]
    fn sampled_journals_keep_roots_verdicts_and_decisions(
        seed in 0u64..10_000,
        hosts in 3usize..7,
        duration in 40u64..70,
        keep_1_in in 2u64..32,
    ) {
        let spec = RunSpec {
            seed,
            trace_seed: seed ^ 0x5eed,
            hosts,
            duration,
            drift_rate: 0.06,
            workers: 2,
            shards: 8,
            fault_rate: 0.4,
            checkpoint_period: 20,
        };
        let policy = SamplingPolicy {
            keep_1_in,
            seed: seed ^ 0xacce,
            ..SamplingPolicy::default()
        };
        let full_dir = tmp(&format!("full-{seed}-{duration}"));
        let samp_dir = tmp(&format!("samp-{seed}-{duration}"));
        let _ = std::fs::remove_dir_all(&full_dir);
        let _ = std::fs::remove_dir_all(&samp_dir);

        let full = record(&spec, &full_dir).expect("unsampled recording succeeds");
        let (rec, stats) =
            record_sampled(&spec, &samp_dir, policy).expect("sampled recording succeeds");
        prop_assert_eq!(stats.kept() + stats.dropped(), stats.seen());
        let sampled = JournalDir::open(&samp_dir).expect("sampled dir reopens")
            .events().expect("sampled dir decodes");
        prop_assert_eq!(sampled.len() as u64, stats.kept());

        // (a) 100% incident root resolution inside the sampled cut.
        let roots: HashSet<u64> = sampled
            .iter()
            .filter(|(_, e)| e.name == "requirement.ingested")
            .filter_map(|(_, e)| e.trace.map(|t| t.trace_id.0))
            .collect();
        let traced: Vec<u64> = rec
            .report
            .incidents
            .iter()
            .filter_map(|i| i.trace.map(|t| t.trace_id.0))
            .collect();
        prop_assert!(!traced.is_empty(), "workload must raise traced incidents");
        for id in &traced {
            prop_assert!(roots.contains(id),
                "incident trace {id:#x} lost its requirement.ingested root");
        }

        // (b) the sampled directory replays with byte-identical
        // verdicts: its recorded verdict digests equal the unsampled
        // run's, and replay verification reproduces them at any
        // worker count.
        for (cp_s, cp_f) in rec.checkpoints.iter().zip(&full.checkpoints) {
            prop_assert_eq!(cp_s.verdict_digest, cp_f.verdict_digest,
                "sampling must not touch the verdict surface (tick {})", cp_s.tick);
        }
        let replayer = Replayer::open(&samp_dir).expect("sampled dir opens for replay");
        prop_assert_eq!(replayer.spec(), &spec, "spec rides in the sampled header");
        let last = replayer.checkpoints().len() - 1;
        for workers in [1usize, 2, 4] {
            let cp = replayer.replay_to_checkpoint(last, Some(workers));
            prop_assert!(cp.verdict_match,
                "verdict digest diverged on {workers} worker(s)");
        }

        // (c) keep/drop decisions are worker-count-invariant: re-record
        // the sampled journal at other worker counts and compare the
        // full decoded streams.
        let baseline: Vec<(u64, String)> = sampled
            .iter()
            .map(|(s, e)| (*s, e.canonical_line()))
            .collect();
        for workers in [1usize, 4] {
            let wspec = RunSpec { workers, ..spec };
            let wdir = tmp(&format!("w{workers}-{seed}-{duration}"));
            let _ = std::fs::remove_dir_all(&wdir);
            let _ = record_sampled(&wspec, &wdir, policy)
                .expect("worker-variant recording succeeds");
            let other: Vec<(u64, String)> = JournalDir::open(&wdir).expect("variant reopens")
                .events().expect("variant decodes")
                .iter()
                .map(|(s, e)| (*s, e.canonical_line()))
                .collect();
            prop_assert_eq!(&baseline, &other,
                "keep/drop decisions changed between 2 and {} workers", workers);
            let _ = std::fs::remove_dir_all(&wdir);
        }

        let _ = std::fs::remove_dir_all(&full_dir);
        let _ = std::fs::remove_dir_all(&samp_dir);
    }
}
