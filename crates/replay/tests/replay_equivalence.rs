//! The tentpole guarantee, property-tested: a recorded run replays
//! *byte-identically* — at every checkpoint, at any worker count.
//!
//! Each case records one seeded SOC run into a columnar journal
//! directory, then replays every checkpoint at 1, 2, and 4 workers and
//! asserts that (a) the replayed journal cut digests identically to
//! the recorded checkpoint, (b) the replayed verdict log is
//! byte-identical, and (c) all worker counts reconstruct bit-identical
//! fleet state. The full-duration replay must also reproduce the live
//! run's incident log as an exact string.

use std::path::PathBuf;

use proptest::prelude::*;

use vdo_replay::{record, verdict_log_of, Replayer, RunSpec};
use vdo_trace::colfmt::JournalDir;

fn tmp(tag: u64) -> PathBuf {
    std::env::temp_dir().join(format!("vdo-replay-prop-{}-{tag}", std::process::id()))
}

proptest! {
    /// Replay == live, everywhere it can be observed.
    #[test]
    fn replay_matches_live_at_every_checkpoint_and_worker_count(
        seed in 0u64..10_000,
        hosts in 3usize..7,
        duration in 30u64..70,
        checkpoint_period in 10u64..25,
        faulty in proptest::prop::bool::ANY,
    ) {
        let spec = RunSpec {
            seed,
            trace_seed: seed ^ 0x5eed,
            hosts,
            duration,
            drift_rate: 0.06,
            workers: 2,
            shards: 8,
            fault_rate: if faulty { 0.5 } else { 0.0 },
            checkpoint_period,
        };
        let dir = tmp(seed ^ (duration << 16));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = record(&spec, &dir).expect("recording succeeds");
        let replayer = Replayer::open(&dir).expect("journal dir reopens");
        prop_assert_eq!(replayer.spec(), &spec);

        for index in 0..replayer.checkpoints().len() {
            let mut fingerprints = Vec::new();
            for workers in [1usize, 2, 4] {
                let cp = replayer.replay_to_checkpoint(index, Some(workers));
                prop_assert!(cp.journal_match,
                    "journal digest diverged at checkpoint {} with {} workers", index, workers);
                prop_assert!(cp.verdict_match,
                    "verdict digest diverged at checkpoint {} with {} workers", index, workers);
                fingerprints.push((cp.outcome.fleet_fingerprint(), cp.outcome.verdict_log()));
            }
            prop_assert_eq!(&fingerprints[0], &fingerprints[1],
                "1-worker and 2-worker replays must reconstruct identical state");
            prop_assert_eq!(&fingerprints[1], &fingerprints[2],
                "2-worker and 4-worker replays must reconstruct identical state");
        }

        // Full-duration replay reproduces the live artifacts byte-for-byte.
        let full = replayer.replay_to_tick(spec.duration, Some(1));
        prop_assert_eq!(full.report.incident_log(), rec.report.incident_log(),
            "replayed incident log must be byte-identical to the live run");
        let disk = JournalDir::open(&dir).expect("reopen").events().expect("decode");
        prop_assert_eq!(full.verdict_log(), verdict_log_of(&disk, spec.duration),
            "replayed verdict log must be byte-identical to the persisted journal");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
