//! # vdo-temporal — temporal requirement patterns and runtime monitoring
//!
//! Rust reproduction of the `rqcode.patterns.temporal` package from the
//! VeriDevOps patterns catalogue (D2.7): the classic specification-pattern
//! shapes (universality, existence/response, timed variants, after/until
//! scoping) as *executable* requirement classes, plus the
//! [`MonitoringLoop`] that the project uses for "reactive protection at
//! operations".
//!
//! Three layers:
//!
//! 1. **Traces** ([`trace`]) — a finite, discretely-timed sequence of
//!    system states. Propositions over states are just
//!    [`vdo_core::Checkable`] values, so the same closures/requirements
//!    used for host checking work as atomic propositions here.
//! 2. **Patterns** ([`patterns`]) — the temporal classes
//!    ([`GlobalUniversality`], [`Eventually`], [`GlobalResponseTimed`],
//!    [`GlobalResponseUntil`], [`GlobalUniversalityTimed`],
//!    [`AfterUntilUniversality`]) with finite-trace evaluation under two
//!    semantics ([`Semantics::Complete`] and the runtime-verification
//!    prefix semantics [`Semantics::Prefix`]), TCTL rendering, and
//!    incremental [`PatternMonitor`]s. A general [`ltl`] AST +
//!    evaluator backs property tests (each pattern's verdict is
//!    cross-checked against its LTL expansion).
//! 3. **Monitoring** ([`monitor`]) — [`MonitoringLoop`] samples an
//!    evolving environment at a fixed polling period on a simulated
//!    clock, feeds observations to a pattern monitor, and reports
//!    detection latency. Experiment E4/A2 sweeps the polling period.
//!
//! ```
//! use vdo_core::CheckStatus;
//! use vdo_temporal::{GlobalUniversality, Semantics, TemporalPattern, Trace};
//!
//! // States are u32 "queue depths"; the invariant: depth < 10.
//! let ok = |s: &u32| CheckStatus::from(*s < 10);
//! let pattern = GlobalUniversality::new(ok);
//! let healthy: Trace<u32> = Trace::from_states([1, 3, 2, 5]);
//! let broken: Trace<u32> = Trace::from_states([1, 3, 12, 5]);
//! assert_eq!(pattern.evaluate(&healthy, Semantics::Complete), CheckStatus::Pass);
//! assert_eq!(pattern.evaluate(&broken, Semantics::Prefix), CheckStatus::Fail);
//! assert_eq!(pattern.tctl(), "A[] p");
//! ```

pub mod ltl;
pub mod monitor;
pub mod patterns;
pub mod trace;

pub use ltl::{Formula, Interpretation};
pub use monitor::{MonitorOutcome, MonitorReport, MonitoringLoop, ZeroPeriodError};
pub use patterns::{
    AfterUntilUniversality, Eventually, GlobalAbsence, GlobalPrecedence, GlobalResponse,
    GlobalResponseTimed, GlobalResponseUntil, GlobalUniversality, GlobalUniversalityTimed,
    PatternMonitor, Semantics, TemporalPattern,
};
pub use trace::{Tick, Trace};
