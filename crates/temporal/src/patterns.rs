//! The temporal requirement pattern classes of the VeriDevOps catalogue.
//!
//! Each pattern is a value holding its atomic propositions (any
//! [`vdo_core::Checkable`] over the state type), and provides
//!
//! * batch evaluation over a [`Trace`] under [`Semantics::Complete`] or
//!   [`Semantics::Prefix`] (runtime-verification) semantics,
//! * an incremental [`PatternMonitor`] (the engine behind
//!   [`MonitoringLoop`](crate::MonitoringLoop)),
//! * its TCTL rendering (`tctl()`, as the Java classes print for UPPAAL),
//! * its reference LTL expansion (`ltl()`), against which the incremental
//!   monitors are property-tested.
//!
//! | Pattern | Informal reading | LTL |
//! |---|---|---|
//! | [`GlobalUniversality`] | globally, `p` always holds | `G p` |
//! | [`Eventually`] | `p` eventually holds | `F p` |
//! | [`GlobalResponseTimed`] | if `p`, then `s` within `T` ticks | `G (p -> F<=T s)` |
//! | [`GlobalResponseUntil`] | if `p`, then eventually `q`, unless `r` | `G (p -> F (q ∨ r))` |
//! | [`GlobalUniversalityTimed`] | `p` holds for the first `T` ticks | `G<=T p` |
//! | [`AfterUntilUniversality`] | after `q`, `p` holds until `r` | `G (q -> WX (p W r))` |

use std::collections::VecDeque;

use vdo_core::{CheckStatus, Checkable};

use crate::ltl::Formula;
use crate::trace::{Tick, Trace};

/// How a finite trace is interpreted during evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Semantics {
    /// The trace is the complete behaviour: `G p` passes if `p` held at
    /// every observed tick; `F p` fails if `p` never held.
    Complete,
    /// The trace is a prefix of an unknown infinite behaviour: verdicts
    /// are `Pass`/`Fail` only when every continuation agrees
    /// (impartial runtime-verification semantics).
    Prefix,
}

/// An incremental evaluator fed one state per tick.
///
/// Obtain one from [`TemporalPattern::begin`]. Verdicts are *monotone*:
/// once `Pass` or `Fail` is returned, every later call returns the same
/// verdict (monitors latch). [`finish`](PatternMonitor::finish) closes the
/// trace and returns the [`Semantics::Complete`] verdict.
pub trait PatternMonitor<S: ?Sized> {
    /// Feeds the state observed at the next tick; returns the current
    /// prefix verdict.
    fn observe(&mut self, state: &S) -> CheckStatus;

    /// Current prefix verdict without feeding a state.
    fn verdict(&self) -> CheckStatus;

    /// Declares the trace complete and returns the final verdict under
    /// [`Semantics::Complete`].
    fn finish(&mut self) -> CheckStatus;
}

/// A temporal requirement pattern over states of type `S`.
pub trait TemporalPattern<S> {
    /// Starts an incremental monitor for this pattern.
    fn begin(&self) -> Box<dyn PatternMonitor<S> + '_>;

    /// The TCTL rendering the Java classes hand to UPPAAL.
    fn tctl(&self) -> String;

    /// Reference LTL expansion over canonical atom names.
    fn ltl(&self) -> Formula;

    /// One-sentence description (the catalogue's informal reading).
    fn describe(&self) -> String;

    /// Evaluates the pattern over a full trace.
    fn evaluate(&self, trace: &Trace<S>, mode: Semantics) -> CheckStatus {
        let mut m = self.begin();
        for s in trace.states() {
            m.observe(s);
        }
        match mode {
            Semantics::Prefix => m.verdict(),
            Semantics::Complete => m.finish(),
        }
    }
}

/// Tracks proposition verdicts that came back `Incomplete`: the monitor
/// can still fail definitively, but can no longer pass definitively.
#[derive(Debug, Clone, Copy, Default)]
struct Unknown(bool);

impl Unknown {
    fn absorb(&mut self, v: CheckStatus) -> CheckStatus {
        if v.is_incomplete() {
            self.0 = true;
        }
        v
    }
    fn cap(self, v: CheckStatus) -> CheckStatus {
        if self.0 && v.is_pass() {
            CheckStatus::Incomplete
        } else {
            v
        }
    }
}

// ---------------------------------------------------------------------------
// GlobalUniversality — G p
// ---------------------------------------------------------------------------

/// *Globally, it is always the case that `p` holds* (`G p`).
///
/// ```
/// use vdo_core::CheckStatus;
/// use vdo_temporal::{GlobalUniversality, Semantics, TemporalPattern, Trace};
/// let pat = GlobalUniversality::new(|s: &bool| CheckStatus::from(*s));
/// let t = Trace::from_states([true, true]);
/// assert_eq!(pat.evaluate(&t, Semantics::Complete), CheckStatus::Pass);
/// assert_eq!(pat.evaluate(&t, Semantics::Prefix), CheckStatus::Incomplete);
/// ```
pub struct GlobalUniversality<P> {
    p: P,
}

impl<P> GlobalUniversality<P> {
    /// Creates the pattern over proposition `p`.
    #[must_use]
    pub fn new(p: P) -> Self {
        GlobalUniversality { p }
    }
}

struct GlobalUniversalityMonitor<'a, P> {
    p: &'a P,
    failed: bool,
    unknown: Unknown,
}

impl<S, P: Checkable<S>> PatternMonitor<S> for GlobalUniversalityMonitor<'_, P> {
    fn observe(&mut self, state: &S) -> CheckStatus {
        if !self.failed && self.unknown.absorb(self.p.check(state)).is_fail() {
            self.failed = true;
        }
        self.verdict()
    }
    fn verdict(&self) -> CheckStatus {
        if self.failed {
            CheckStatus::Fail
        } else {
            CheckStatus::Incomplete
        }
    }
    fn finish(&mut self) -> CheckStatus {
        if self.failed {
            CheckStatus::Fail
        } else {
            self.unknown.cap(CheckStatus::Pass)
        }
    }
}

impl<S, P: Checkable<S>> TemporalPattern<S> for GlobalUniversality<P> {
    fn begin(&self) -> Box<dyn PatternMonitor<S> + '_> {
        Box::new(GlobalUniversalityMonitor {
            p: &self.p,
            failed: false,
            unknown: Unknown::default(),
        })
    }
    fn tctl(&self) -> String {
        "A[] p".to_string()
    }
    fn ltl(&self) -> Formula {
        Formula::globally(Formula::atom("p"))
    }
    fn describe(&self) -> String {
        "Globally, it is always the case that p holds".to_string()
    }
}

// ---------------------------------------------------------------------------
// Eventually — F p
// ---------------------------------------------------------------------------

/// *`p` always eventually holds* (`F p`).
pub struct Eventually<P> {
    p: P,
}

impl<P> Eventually<P> {
    /// Creates the pattern over proposition `p`.
    #[must_use]
    pub fn new(p: P) -> Self {
        Eventually { p }
    }
}

struct EventuallyMonitor<'a, P> {
    p: &'a P,
    passed: bool,
    unknown: Unknown,
}

impl<S, P: Checkable<S>> PatternMonitor<S> for EventuallyMonitor<'_, P> {
    fn observe(&mut self, state: &S) -> CheckStatus {
        if !self.passed && self.unknown.absorb(self.p.check(state)).is_pass() {
            self.passed = true;
        }
        self.verdict()
    }
    fn verdict(&self) -> CheckStatus {
        if self.passed {
            CheckStatus::Pass
        } else {
            CheckStatus::Incomplete
        }
    }
    fn finish(&mut self) -> CheckStatus {
        if self.passed {
            CheckStatus::Pass
        } else if self.unknown.0 {
            CheckStatus::Incomplete
        } else {
            CheckStatus::Fail
        }
    }
}

impl<S, P: Checkable<S>> TemporalPattern<S> for Eventually<P> {
    fn begin(&self) -> Box<dyn PatternMonitor<S> + '_> {
        Box::new(EventuallyMonitor {
            p: &self.p,
            passed: false,
            unknown: Unknown::default(),
        })
    }
    fn tctl(&self) -> String {
        "A<> p".to_string()
    }
    fn ltl(&self) -> Formula {
        Formula::finally(Formula::atom("p"))
    }
    fn describe(&self) -> String {
        "p always eventually holds".to_string()
    }
}

// ---------------------------------------------------------------------------
// GlobalAbsence — G !p
// ---------------------------------------------------------------------------

/// *Globally, `p` never holds* (`G !p`) — the safety shape most security
/// prohibitions take ("the debug port is never open").
///
/// Extension beyond the six D2.7 classes: the PROPAS catalogue treats
/// absence as universality of the negation, and so does this monitor.
pub struct GlobalAbsence<P> {
    p: P,
}

impl<P> GlobalAbsence<P> {
    /// Creates the pattern over the prohibited proposition `p`.
    #[must_use]
    pub fn new(p: P) -> Self {
        GlobalAbsence { p }
    }
}

struct GlobalAbsenceMonitor<'a, P> {
    p: &'a P,
    violated: bool,
    unknown: Unknown,
}

impl<S, P: Checkable<S>> PatternMonitor<S> for GlobalAbsenceMonitor<'_, P> {
    fn observe(&mut self, state: &S) -> CheckStatus {
        if !self.violated && self.unknown.absorb(self.p.check(state)).is_pass() {
            self.violated = true;
        }
        self.verdict()
    }
    fn verdict(&self) -> CheckStatus {
        if self.violated {
            CheckStatus::Fail
        } else {
            CheckStatus::Incomplete
        }
    }
    fn finish(&mut self) -> CheckStatus {
        if self.violated {
            CheckStatus::Fail
        } else {
            self.unknown.cap(CheckStatus::Pass)
        }
    }
}

impl<S, P: Checkable<S>> TemporalPattern<S> for GlobalAbsence<P> {
    fn begin(&self) -> Box<dyn PatternMonitor<S> + '_> {
        Box::new(GlobalAbsenceMonitor {
            p: &self.p,
            violated: false,
            unknown: Unknown::default(),
        })
    }
    fn tctl(&self) -> String {
        "A[] not p".to_string()
    }
    fn ltl(&self) -> Formula {
        Formula::globally(Formula::not(Formula::atom("p")))
    }
    fn describe(&self) -> String {
        "Globally, it is never the case that p holds".to_string()
    }
}

// ---------------------------------------------------------------------------
// GlobalResponse — G (p -> F s), untimed
// ---------------------------------------------------------------------------

/// *Globally, every `p` is eventually followed by `s`* (`G (p -> F s)`)
/// — untimed response, the liveness backbone of
/// [`GlobalResponseTimed`] without the deadline.
pub struct GlobalResponse<P, R> {
    trigger: P,
    response: R,
}

impl<P, R> GlobalResponse<P, R> {
    /// Creates the pattern.
    #[must_use]
    pub fn new(trigger: P, response: R) -> Self {
        GlobalResponse { trigger, response }
    }
}

struct GlobalResponseMonitor<'a, P, R> {
    trigger: &'a P,
    response: &'a R,
    obligation: bool,
    unknown: Unknown,
}

impl<S, P: Checkable<S>, R: Checkable<S>> PatternMonitor<S> for GlobalResponseMonitor<'_, P, R> {
    fn observe(&mut self, state: &S) -> CheckStatus {
        if self.unknown.absorb(self.trigger.check(state)).is_pass() {
            self.obligation = true;
        }
        if self.obligation && self.unknown.absorb(self.response.check(state)).is_pass() {
            self.obligation = false;
        }
        self.verdict()
    }
    fn verdict(&self) -> CheckStatus {
        // Liveness: no finite prefix refutes or confirms.
        CheckStatus::Incomplete
    }
    fn finish(&mut self) -> CheckStatus {
        if self.obligation {
            CheckStatus::Fail
        } else {
            self.unknown.cap(CheckStatus::Pass)
        }
    }
}

impl<S, P: Checkable<S>, R: Checkable<S>> TemporalPattern<S> for GlobalResponse<P, R> {
    fn begin(&self) -> Box<dyn PatternMonitor<S> + '_> {
        Box::new(GlobalResponseMonitor {
            trigger: &self.trigger,
            response: &self.response,
            obligation: false,
            unknown: Unknown::default(),
        })
    }
    fn tctl(&self) -> String {
        "p --> s".to_string()
    }
    fn ltl(&self) -> Formula {
        Formula::globally(Formula::implies(
            Formula::atom("p"),
            Formula::finally(Formula::atom("s")),
        ))
    }
    fn describe(&self) -> String {
        "Globally, it is always the case that if p holds then s eventually holds".to_string()
    }
}

// ---------------------------------------------------------------------------
// GlobalPrecedence — ¬p W s
// ---------------------------------------------------------------------------

/// *`p` occurs only after `s`* (`¬p W s`): e.g. "privileged operations
/// occur only after authentication".
pub struct GlobalPrecedence<P, R> {
    p: P,
    s: R,
}

impl<P, R> GlobalPrecedence<P, R> {
    /// Creates the pattern: `s` must precede (or coincide with) the
    /// first `p`.
    #[must_use]
    pub fn new(p: P, s: R) -> Self {
        GlobalPrecedence { p, s }
    }
}

struct GlobalPrecedenceMonitor<'a, P, R> {
    p: &'a P,
    s: &'a R,
    enabled: bool,
    verdict: CheckStatus,
    unknown: Unknown,
}

impl<S, P: Checkable<S>, R: Checkable<S>> PatternMonitor<S> for GlobalPrecedenceMonitor<'_, P, R> {
    fn observe(&mut self, state: &S) -> CheckStatus {
        if self.verdict.is_incomplete() && !self.enabled {
            let s_now = self.unknown.absorb(self.s.check(state)).is_pass();
            let p_now = self.unknown.absorb(self.p.check(state)).is_pass();
            if s_now {
                // s at (or before) the first p: conclusively satisfied.
                self.enabled = true;
                self.verdict = self.unknown.cap(CheckStatus::Pass);
            } else if p_now {
                self.verdict = CheckStatus::Fail;
            }
        }
        self.verdict
    }
    fn verdict(&self) -> CheckStatus {
        self.verdict
    }
    fn finish(&mut self) -> CheckStatus {
        if self.verdict.is_incomplete() {
            // Neither p nor s ever occurred: the weak until passes.
            self.unknown.cap(CheckStatus::Pass)
        } else {
            self.verdict
        }
    }
}

impl<S, P: Checkable<S>, R: Checkable<S>> TemporalPattern<S> for GlobalPrecedence<P, R> {
    fn begin(&self) -> Box<dyn PatternMonitor<S> + '_> {
        Box::new(GlobalPrecedenceMonitor {
            p: &self.p,
            s: &self.s,
            enabled: false,
            verdict: CheckStatus::Incomplete,
            unknown: Unknown::default(),
        })
    }
    fn tctl(&self) -> String {
        "not E[ (not s) U (p and not s) ]".to_string()
    }
    fn ltl(&self) -> Formula {
        // ¬p W s = (¬p U s) ∨ G ¬p
        Formula::or(
            Formula::until(Formula::not(Formula::atom("p")), Formula::atom("s")),
            Formula::globally(Formula::not(Formula::atom("p"))),
        )
    }
    fn describe(&self) -> String {
        "p occurs only after s has occurred".to_string()
    }
}

// ---------------------------------------------------------------------------
// GlobalResponseTimed — G (p -> F<=T s)
// ---------------------------------------------------------------------------

/// *Globally, whenever `p` holds, `s` holds within `T` ticks*
/// (`G (p -> F<=T s)`).
///
/// The deadline is inclusive: a response at exactly `t + T` is in time;
/// with `boundary = 0` the pattern degenerates to `G (p -> s)`.
pub struct GlobalResponseTimed<P, R> {
    trigger: P,
    response: R,
    boundary: Tick,
}

impl<P, R> GlobalResponseTimed<P, R> {
    /// Creates the pattern: `trigger` must be answered by `response`
    /// within `boundary` ticks.
    #[must_use]
    pub fn new(trigger: P, response: R, boundary: Tick) -> Self {
        GlobalResponseTimed {
            trigger,
            response,
            boundary,
        }
    }

    /// The time bound `T`.
    #[must_use]
    pub fn boundary(&self) -> Tick {
        self.boundary
    }
}

struct GlobalResponseTimedMonitor<'a, P, R> {
    trigger: &'a P,
    response: &'a R,
    boundary: Tick,
    now: Tick,
    pending: VecDeque<Tick>,
    failed: bool,
    unknown: Unknown,
}

impl<S, P: Checkable<S>, R: Checkable<S>> PatternMonitor<S>
    for GlobalResponseTimedMonitor<'_, P, R>
{
    fn observe(&mut self, state: &S) -> CheckStatus {
        if !self.failed {
            let t = self.now;
            if self.unknown.absorb(self.trigger.check(state)).is_pass() {
                self.pending.push_back(t);
            }
            if self.unknown.absorb(self.response.check(state)).is_pass() {
                self.pending.clear();
            }
            // Any obligation whose deadline has been reached without a
            // response this tick is definitively violated.
            if let Some(&oldest) = self.pending.front() {
                if t >= oldest.saturating_add(self.boundary) {
                    self.failed = true;
                }
            }
        }
        self.now += 1;
        self.verdict()
    }
    fn verdict(&self) -> CheckStatus {
        if self.failed {
            CheckStatus::Fail
        } else {
            CheckStatus::Incomplete
        }
    }
    fn finish(&mut self) -> CheckStatus {
        if self.failed {
            CheckStatus::Fail
        } else if !self.pending.is_empty() {
            // Complete semantics: no more states, outstanding obligations
            // can never be answered.
            CheckStatus::Fail
        } else {
            self.unknown.cap(CheckStatus::Pass)
        }
    }
}

impl<S, P: Checkable<S>, R: Checkable<S>> TemporalPattern<S> for GlobalResponseTimed<P, R> {
    fn begin(&self) -> Box<dyn PatternMonitor<S> + '_> {
        Box::new(GlobalResponseTimedMonitor {
            trigger: &self.trigger,
            response: &self.response,
            boundary: self.boundary,
            now: 0,
            pending: VecDeque::new(),
            failed: false,
            unknown: Unknown::default(),
        })
    }
    fn tctl(&self) -> String {
        format!("A[] (p imply (A<>_{{<={}}} s))", self.boundary)
    }
    fn ltl(&self) -> Formula {
        Formula::globally(Formula::implies(
            Formula::atom("p"),
            Formula::finally_within(self.boundary, Formula::atom("s")),
        ))
    }
    fn describe(&self) -> String {
        format!(
            "Globally, it is always the case that if p holds then s eventually holds within {} time units",
            self.boundary
        )
    }
}

// ---------------------------------------------------------------------------
// GlobalResponseUntil — G (p -> F (q ∨ r))
// ---------------------------------------------------------------------------

/// *Globally, if `p` holds then, unless `r` holds, `q` will eventually
/// hold.* Either `q` (fulfilment) or `r` (release) discharges the
/// obligation; same-tick fulfilment counts.
pub struct GlobalResponseUntil<P, Q, R> {
    p: P,
    q: Q,
    r: R,
}

impl<P, Q, R> GlobalResponseUntil<P, Q, R> {
    /// Creates the pattern with trigger `p`, fulfilment `q`, release `r`.
    #[must_use]
    pub fn new(p: P, q: Q, r: R) -> Self {
        GlobalResponseUntil { p, q, r }
    }
}

struct GlobalResponseUntilMonitor<'a, P, Q, R> {
    p: &'a P,
    q: &'a Q,
    r: &'a R,
    obligation: bool,
    unknown: Unknown,
}

impl<S, P: Checkable<S>, Q: Checkable<S>, R: Checkable<S>> PatternMonitor<S>
    for GlobalResponseUntilMonitor<'_, P, Q, R>
{
    fn observe(&mut self, state: &S) -> CheckStatus {
        if self.unknown.absorb(self.p.check(state)).is_pass() {
            self.obligation = true;
        }
        if self.obligation {
            let q = self.unknown.absorb(self.q.check(state));
            let r = self.unknown.absorb(self.r.check(state));
            if q.is_pass() || r.is_pass() {
                self.obligation = false;
            }
        }
        self.verdict()
    }
    fn verdict(&self) -> CheckStatus {
        // Unbounded liveness: a finite prefix can never refute or confirm.
        CheckStatus::Incomplete
    }
    fn finish(&mut self) -> CheckStatus {
        if self.obligation {
            CheckStatus::Fail
        } else {
            self.unknown.cap(CheckStatus::Pass)
        }
    }
}

impl<S, P: Checkable<S>, Q: Checkable<S>, R: Checkable<S>> TemporalPattern<S>
    for GlobalResponseUntil<P, Q, R>
{
    fn begin(&self) -> Box<dyn PatternMonitor<S> + '_> {
        Box::new(GlobalResponseUntilMonitor {
            p: &self.p,
            q: &self.q,
            r: &self.r,
            obligation: false,
            unknown: Unknown::default(),
        })
    }
    fn tctl(&self) -> String {
        "A[] (p imply A<> (q or r))".to_string()
    }
    fn ltl(&self) -> Formula {
        Formula::globally(Formula::implies(
            Formula::atom("p"),
            Formula::finally(Formula::or(Formula::atom("q"), Formula::atom("r"))),
        ))
    }
    fn describe(&self) -> String {
        "Globally, it is always the case that if p holds then, unless r holds, q will eventually hold"
            .to_string()
    }
}

// ---------------------------------------------------------------------------
// GlobalUniversalityTimed — G<=T p
// ---------------------------------------------------------------------------

/// *`p` holds at every tick up to and including `T`* (`G<=T p`).
///
/// Unlike unbounded universality this pattern can conclusively **pass**
/// at runtime: once tick `T` is observed without violation the verdict
/// latches `Pass`.
pub struct GlobalUniversalityTimed<P> {
    p: P,
    boundary: Tick,
}

impl<P> GlobalUniversalityTimed<P> {
    /// Creates the pattern: `p` must hold through tick `boundary`.
    #[must_use]
    pub fn new(p: P, boundary: Tick) -> Self {
        GlobalUniversalityTimed { p, boundary }
    }

    /// The time bound `T`.
    #[must_use]
    pub fn boundary(&self) -> Tick {
        self.boundary
    }
}

struct GlobalUniversalityTimedMonitor<'a, P> {
    p: &'a P,
    boundary: Tick,
    now: Tick,
    verdict: CheckStatus,
    unknown: Unknown,
}

impl<S, P: Checkable<S>> PatternMonitor<S> for GlobalUniversalityTimedMonitor<'_, P> {
    fn observe(&mut self, state: &S) -> CheckStatus {
        if self.verdict.is_incomplete() && self.now <= self.boundary {
            if self.unknown.absorb(self.p.check(state)).is_fail() {
                self.verdict = CheckStatus::Fail;
            } else if self.now == self.boundary {
                self.verdict = self.unknown.cap(CheckStatus::Pass);
            }
        }
        self.now += 1;
        self.verdict
    }
    fn verdict(&self) -> CheckStatus {
        self.verdict
    }
    fn finish(&mut self) -> CheckStatus {
        if self.verdict.is_incomplete() {
            // Trace ended before the window did: under complete semantics
            // the window clamps to the trace, so an unviolated run passes.
            self.unknown.cap(CheckStatus::Pass)
        } else {
            self.verdict
        }
    }
}

impl<S, P: Checkable<S>> TemporalPattern<S> for GlobalUniversalityTimed<P> {
    fn begin(&self) -> Box<dyn PatternMonitor<S> + '_> {
        Box::new(GlobalUniversalityTimedMonitor {
            p: &self.p,
            boundary: self.boundary,
            now: 0,
            verdict: CheckStatus::Incomplete,
            unknown: Unknown::default(),
        })
    }
    fn tctl(&self) -> String {
        format!("A[] (t <= {} imply p)", self.boundary)
    }
    fn ltl(&self) -> Formula {
        Formula::globally_within(self.boundary, Formula::atom("p"))
    }
    fn describe(&self) -> String {
        format!(
            "Globally, p holds at every instant within the first {} time units",
            self.boundary
        )
    }
}

// ---------------------------------------------------------------------------
// AfterUntilUniversality — after q, p holds until r
// ---------------------------------------------------------------------------

/// *After `q`, it is always the case that `p` holds until `r` holds.*
///
/// The scope opens at the tick **after** an occurrence of `q` and closes
/// at (and excluding) the next occurrence of `r`; `p` must hold at every
/// tick strictly inside the scope. The scope may re-open on later `q`s,
/// and `r` may never arrive (weak until).
pub struct AfterUntilUniversality<Q, P, R> {
    q: Q,
    p: P,
    r: R,
}

impl<Q, P, R> AfterUntilUniversality<Q, P, R> {
    /// Creates the pattern: scope opener `q`, invariant `p`, closer `r`.
    #[must_use]
    pub fn new(q: Q, p: P, r: R) -> Self {
        AfterUntilUniversality { q, p, r }
    }
}

struct AfterUntilUniversalityMonitor<'a, Q, P, R> {
    q: &'a Q,
    p: &'a P,
    r: &'a R,
    open: bool,
    failed: bool,
    unknown: Unknown,
}

impl<S, Q: Checkable<S>, P: Checkable<S>, R: Checkable<S>> PatternMonitor<S>
    for AfterUntilUniversalityMonitor<'_, Q, P, R>
{
    fn observe(&mut self, state: &S) -> CheckStatus {
        if !self.failed {
            if self.open {
                if self.unknown.absorb(self.r.check(state)).is_pass() {
                    self.open = false;
                } else if self.unknown.absorb(self.p.check(state)).is_fail() {
                    self.failed = true;
                }
            }
            // q (re-)opens the scope starting from the *next* tick; when
            // the scope is already open this is a no-op.
            if !self.failed && self.unknown.absorb(self.q.check(state)).is_pass() {
                self.open = true;
            }
        }
        self.verdict()
    }
    fn verdict(&self) -> CheckStatus {
        if self.failed {
            CheckStatus::Fail
        } else {
            CheckStatus::Incomplete
        }
    }
    fn finish(&mut self) -> CheckStatus {
        if self.failed {
            CheckStatus::Fail
        } else {
            self.unknown.cap(CheckStatus::Pass)
        }
    }
}

impl<S, Q: Checkable<S>, P: Checkable<S>, R: Checkable<S>> TemporalPattern<S>
    for AfterUntilUniversality<Q, P, R>
{
    fn begin(&self) -> Box<dyn PatternMonitor<S> + '_> {
        Box::new(AfterUntilUniversalityMonitor {
            q: &self.q,
            p: &self.p,
            r: &self.r,
            open: false,
            failed: false,
            unknown: Unknown::default(),
        })
    }
    fn tctl(&self) -> String {
        "A[] (q imply (A[] (p or r) W r))".to_string()
    }
    fn ltl(&self) -> Formula {
        // G (q -> WX (p W r)), with WX φ = ¬X¬φ and p W r = (p U r) ∨ G p.
        let weak_until = Formula::or(
            Formula::until(Formula::atom("p"), Formula::atom("r")),
            Formula::globally(Formula::atom("p")),
        );
        Formula::globally(Formula::implies(
            Formula::atom("q"),
            Formula::not(Formula::next(Formula::not(weak_until))),
        ))
    }
    fn describe(&self) -> String {
        "After q, it is always the case that p holds until r holds".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type St = (bool, bool, bool); // (p/trigger, q/aux, r/release) or (p, s, _)

    fn p() -> impl Checkable<St> {
        |s: &St| CheckStatus::from(s.0)
    }
    fn q() -> impl Checkable<St> {
        |s: &St| CheckStatus::from(s.1)
    }
    fn r() -> impl Checkable<St> {
        |s: &St| CheckStatus::from(s.2)
    }

    fn tr(v: &[St]) -> Trace<St> {
        Trace::from_states(v.iter().copied())
    }

    #[test]
    fn global_universality_semantics() {
        let pat = GlobalUniversality::new(p());
        let good = tr(&[(true, false, false); 4]);
        assert_eq!(pat.evaluate(&good, Semantics::Complete), CheckStatus::Pass);
        assert_eq!(
            pat.evaluate(&good, Semantics::Prefix),
            CheckStatus::Incomplete
        );
        let bad = tr(&[(true, false, false), (false, false, false)]);
        assert_eq!(pat.evaluate(&bad, Semantics::Complete), CheckStatus::Fail);
        assert_eq!(pat.evaluate(&bad, Semantics::Prefix), CheckStatus::Fail);
        // Empty trace: vacuous under complete semantics.
        assert_eq!(
            pat.evaluate(&tr(&[]), Semantics::Complete),
            CheckStatus::Pass
        );
        assert_eq!(
            pat.evaluate(&tr(&[]), Semantics::Prefix),
            CheckStatus::Incomplete
        );
    }

    #[test]
    fn monitor_latches_fail() {
        let pat = GlobalUniversality::new(p());
        let mut m = pat.begin();
        assert_eq!(m.observe(&(true, false, false)), CheckStatus::Incomplete);
        assert_eq!(m.observe(&(false, false, false)), CheckStatus::Fail);
        assert_eq!(
            m.observe(&(true, false, false)),
            CheckStatus::Fail,
            "latched"
        );
        assert_eq!(m.finish(), CheckStatus::Fail);
    }

    #[test]
    fn eventually_semantics() {
        let pat = Eventually::new(q());
        let hit = tr(&[(false, false, false), (false, true, false)]);
        assert_eq!(pat.evaluate(&hit, Semantics::Prefix), CheckStatus::Pass);
        assert_eq!(pat.evaluate(&hit, Semantics::Complete), CheckStatus::Pass);
        let miss = tr(&[(false, false, false); 3]);
        assert_eq!(
            pat.evaluate(&miss, Semantics::Prefix),
            CheckStatus::Incomplete
        );
        assert_eq!(pat.evaluate(&miss, Semantics::Complete), CheckStatus::Fail);
    }

    #[test]
    fn response_timed_in_time() {
        // p triggers at tick 0, s answers at tick 2, T = 3.
        let pat = GlobalResponseTimed::new(p(), q(), 3);
        let t = tr(&[
            (true, false, false),
            (false, false, false),
            (false, true, false),
            (false, false, false),
        ]);
        assert_eq!(pat.evaluate(&t, Semantics::Complete), CheckStatus::Pass);
        assert_eq!(pat.evaluate(&t, Semantics::Prefix), CheckStatus::Incomplete);
    }

    #[test]
    fn response_timed_deadline_inclusive() {
        // Response exactly at t + T is in time.
        let pat = GlobalResponseTimed::new(p(), q(), 2);
        let t = tr(&[
            (true, false, false),
            (false, false, false),
            (false, true, false),
        ]);
        assert_eq!(pat.evaluate(&t, Semantics::Complete), CheckStatus::Pass);
    }

    #[test]
    fn response_timed_misses_deadline() {
        let pat = GlobalResponseTimed::new(p(), q(), 1);
        let t = tr(&[
            (true, false, false),
            (false, false, false),
            (false, true, false), // too late
        ]);
        assert_eq!(pat.evaluate(&t, Semantics::Prefix), CheckStatus::Fail);
        assert_eq!(pat.evaluate(&t, Semantics::Complete), CheckStatus::Fail);
        // The violation is detectable exactly at the deadline tick.
        let mut m = pat.begin();
        m.observe(&(true, false, false));
        assert_eq!(m.verdict(), CheckStatus::Incomplete);
        assert_eq!(m.observe(&(false, false, false)), CheckStatus::Fail);
    }

    #[test]
    fn response_timed_zero_bound_is_immediate_implication() {
        let pat = GlobalResponseTimed::new(p(), q(), 0);
        let ok = tr(&[(true, true, false), (false, false, false)]);
        assert_eq!(pat.evaluate(&ok, Semantics::Complete), CheckStatus::Pass);
        let ko = tr(&[(true, false, false)]);
        assert_eq!(pat.evaluate(&ko, Semantics::Prefix), CheckStatus::Fail);
    }

    #[test]
    fn response_timed_open_obligation_at_end() {
        let pat = GlobalResponseTimed::new(p(), q(), 10);
        let t = tr(&[(true, false, false), (false, false, false)]);
        // Prefix: deadline not reached, could still respond.
        assert_eq!(pat.evaluate(&t, Semantics::Prefix), CheckStatus::Incomplete);
        // Complete: no more states — obligation unmet.
        assert_eq!(pat.evaluate(&t, Semantics::Complete), CheckStatus::Fail);
    }

    #[test]
    fn response_until_fulfilment_and_release() {
        let pat = GlobalResponseUntil::new(p(), q(), r());
        let fulfilled = tr(&[(true, false, false), (false, true, false)]);
        assert_eq!(
            pat.evaluate(&fulfilled, Semantics::Complete),
            CheckStatus::Pass
        );
        let released = tr(&[(true, false, false), (false, false, true)]);
        assert_eq!(
            pat.evaluate(&released, Semantics::Complete),
            CheckStatus::Pass
        );
        let open = tr(&[(true, false, false), (false, false, false)]);
        assert_eq!(pat.evaluate(&open, Semantics::Complete), CheckStatus::Fail);
        assert_eq!(
            pat.evaluate(&open, Semantics::Prefix),
            CheckStatus::Incomplete
        );
        // Same-tick fulfilment counts.
        let immediate = tr(&[(true, true, false)]);
        assert_eq!(
            pat.evaluate(&immediate, Semantics::Complete),
            CheckStatus::Pass
        );
    }

    #[test]
    fn universality_timed_passes_conclusively() {
        let pat = GlobalUniversalityTimed::new(p(), 2);
        let mut m = pat.begin();
        assert_eq!(m.observe(&(true, false, false)), CheckStatus::Incomplete);
        assert_eq!(m.observe(&(true, false, false)), CheckStatus::Incomplete);
        assert_eq!(
            m.observe(&(true, false, false)),
            CheckStatus::Pass,
            "window [0,2] observed without violation ⇒ conclusive Pass"
        );
        assert_eq!(
            m.observe(&(false, false, false)),
            CheckStatus::Pass,
            "latched"
        );
    }

    #[test]
    fn universality_timed_fails_inside_window_only() {
        let pat = GlobalUniversalityTimed::new(p(), 1);
        let late_violation = tr(&[
            (true, false, false),
            (true, false, false),
            (false, false, false), // outside window
        ]);
        assert_eq!(
            pat.evaluate(&late_violation, Semantics::Complete),
            CheckStatus::Pass
        );
        let early = tr(&[(false, false, false)]);
        assert_eq!(pat.evaluate(&early, Semantics::Prefix), CheckStatus::Fail);
    }

    #[test]
    fn universality_timed_short_trace() {
        let pat = GlobalUniversalityTimed::new(p(), 5);
        let short = tr(&[(true, false, false), (true, false, false)]);
        assert_eq!(
            pat.evaluate(&short, Semantics::Prefix),
            CheckStatus::Incomplete
        );
        assert_eq!(pat.evaluate(&short, Semantics::Complete), CheckStatus::Pass);
    }

    #[test]
    fn after_until_scope_rules() {
        let pat = AfterUntilUniversality::new(q(), p(), r());
        // q at 0 opens scope from tick 1; p holds 1..2; r at 3 closes;
        // p may fail afterwards.
        let good = tr(&[
            (false, true, false),
            (true, false, false),
            (true, false, false),
            (false, false, true), // r closes; p not required here
            (false, false, false),
        ]);
        assert_eq!(pat.evaluate(&good, Semantics::Complete), CheckStatus::Pass);
        // Violation inside the open scope.
        let bad = tr(&[
            (false, true, false),
            (true, false, false),
            (false, false, false), // p fails, scope still open
        ]);
        assert_eq!(pat.evaluate(&bad, Semantics::Prefix), CheckStatus::Fail);
    }

    #[test]
    fn after_until_never_opened_is_vacuous() {
        let pat = AfterUntilUniversality::new(q(), p(), r());
        let t = tr(&[(false, false, false); 3]);
        assert_eq!(pat.evaluate(&t, Semantics::Complete), CheckStatus::Pass);
    }

    #[test]
    fn after_until_reopens() {
        let pat = AfterUntilUniversality::new(q(), p(), r());
        let t = tr(&[
            (false, true, false),  // open
            (true, false, true),   // r closes (p not checked at r tick)
            (false, false, false), // outside scope: p may fail
            (false, true, false),  // reopen
            (false, false, false), // p fails inside reopened scope
        ]);
        assert_eq!(pat.evaluate(&t, Semantics::Prefix), CheckStatus::Fail);
    }

    #[test]
    fn absence_response_precedence_basics() {
        let absence = GlobalAbsence::new(p());
        assert_eq!(
            absence.evaluate(&tr(&[(false, false, false); 3]), Semantics::Complete),
            CheckStatus::Pass
        );
        assert_eq!(
            absence.evaluate(
                &tr(&[(false, false, false), (true, false, false)]),
                Semantics::Prefix
            ),
            CheckStatus::Fail
        );

        let response = GlobalResponse::new(p(), q());
        let answered = tr(&[
            (true, false, false),
            (false, false, false),
            (false, true, false),
        ]);
        assert_eq!(
            response.evaluate(&answered, Semantics::Complete),
            CheckStatus::Pass
        );
        assert_eq!(
            response.evaluate(&answered, Semantics::Prefix),
            CheckStatus::Incomplete
        );
        let open = tr(&[(true, false, false)]);
        assert_eq!(
            response.evaluate(&open, Semantics::Complete),
            CheckStatus::Fail
        );

        let precedence = GlobalPrecedence::new(p(), q());
        let ok = tr(&[(false, true, false), (true, false, false)]);
        assert_eq!(
            precedence.evaluate(&ok, Semantics::Prefix),
            CheckStatus::Pass
        );
        let ko = tr(&[(true, false, false)]);
        assert_eq!(
            precedence.evaluate(&ko, Semantics::Prefix),
            CheckStatus::Fail
        );
        let never = tr(&[(false, false, false); 2]);
        assert_eq!(
            precedence.evaluate(&never, Semantics::Complete),
            CheckStatus::Pass
        );
        assert_eq!(
            precedence.evaluate(&never, Semantics::Prefix),
            CheckStatus::Incomplete
        );
    }

    #[test]
    fn unknown_propositions_cap_pass() {
        let maybe = |_: &St| CheckStatus::Incomplete;
        let pat = GlobalUniversality::new(maybe);
        let t = tr(&[(true, false, false)]);
        assert_eq!(
            pat.evaluate(&t, Semantics::Complete),
            CheckStatus::Incomplete
        );
        let pat = Eventually::new(maybe);
        assert_eq!(
            pat.evaluate(&t, Semantics::Complete),
            CheckStatus::Incomplete
        );
    }

    #[test]
    fn tctl_strings() {
        assert_eq!(GlobalUniversality::new(p()).tctl(), "A[] p");
        assert_eq!(Eventually::new(p()).tctl(), "A<> p");
        assert_eq!(
            GlobalResponseTimed::new(p(), q(), 5).tctl(),
            "A[] (p imply (A<>_{<=5} s))"
        );
        assert_eq!(
            GlobalUniversalityTimed::new(p(), 9).tctl(),
            "A[] (t <= 9 imply p)"
        );
        assert!(GlobalResponseUntil::new(p(), q(), r())
            .tctl()
            .contains("q or r"));
        assert!(AfterUntilUniversality::new(q(), p(), r())
            .tctl()
            .contains("q imply"));
    }

    #[test]
    fn describe_mentions_bound() {
        assert!(GlobalResponseTimed::new(p(), q(), 7)
            .describe()
            .contains('7'));
        assert!(GlobalUniversalityTimed::new(p(), 7)
            .describe()
            .contains('7'));
    }

    mod against_ltl_reference {
        //! Property tests: every pattern's verdict equals its LTL
        //! expansion's verdict under both semantics, on random traces of
        //! decided propositions.
        use super::*;
        use crate::ltl::Interpretation;
        use proptest::prelude::*;

        fn interp() -> Interpretation<'static, St> {
            Interpretation::new(|name, s: &St| match name {
                "p" => CheckStatus::from(s.0),
                "q" | "s" => CheckStatus::from(s.1),
                "r" => CheckStatus::from(s.2),
                _ => CheckStatus::Incomplete,
            })
        }

        fn arb_trace() -> impl Strategy<Value = Vec<St>> {
            prop::collection::vec((prop::bool::ANY, prop::bool::ANY, prop::bool::ANY), 0..24)
        }

        /// Maps pattern atoms to reference atoms: trigger=p, response=s/q, release=r.
        fn check_pattern<Pat: TemporalPattern<St>>(pat: &Pat, states: &[St]) {
            let trace = tr(states);
            let i = interp();
            let f = pat.ltl();
            for mode in [Semantics::Complete, Semantics::Prefix] {
                let via_monitor = pat.evaluate(&trace, mode);
                let via_ltl = i.evaluate(&f, &trace, 0, mode);
                // Empty-trace edge: LTL complete semantics says G/F over an
                // empty suffix pass/fail vacuously, which matches monitors.
                assert_eq!(
                    via_monitor,
                    via_ltl,
                    "pattern {} disagrees with LTL {} on {:?} under {:?}",
                    pat.describe(),
                    f,
                    states,
                    mode
                );
            }
        }

        proptest! {
            #[test]
            fn global_universality_matches(states in arb_trace()) {
                check_pattern(&GlobalUniversality::new(p()), &states);
            }

            #[test]
            fn eventually_matches(states in arb_trace()) {
                check_pattern(&Eventually::new(p()), &states);
            }

            #[test]
            fn response_timed_matches(states in arb_trace(), bound in 0u64..6) {
                check_pattern(&GlobalResponseTimed::new(p(), q(), bound), &states);
            }

            #[test]
            fn response_until_matches(states in arb_trace()) {
                check_pattern(&GlobalResponseUntil::new(p(), q(), r()), &states);
            }

            #[test]
            fn universality_timed_matches(states in arb_trace(), bound in 0u64..6) {
                check_pattern(&GlobalUniversalityTimed::new(p(), bound), &states);
            }

            #[test]
            fn global_absence_matches(states in arb_trace()) {
                check_pattern(&GlobalAbsence::new(p()), &states);
            }

            #[test]
            fn global_response_matches(states in arb_trace()) {
                check_pattern(&GlobalResponse::new(p(), q()), &states);
            }

            #[test]
            fn global_precedence_matches(states in arb_trace()) {
                check_pattern(&GlobalPrecedence::new(p(), q()), &states);
            }

            #[test]
            fn after_until_universality_matches(states in arb_trace()) {
                // Atom mapping: opener q ↦ "q"-slot (field 1), invariant
                // p ↦ field 0, closer r ↦ field 2 — matching the reference
                // formula G (q -> WX (p W r)).
                check_pattern(&AfterUntilUniversality::new(q(), p(), r()), &states);
            }

            #[test]
            fn monitors_are_monotone(states in arb_trace()) {
                // Once decided, a monitor's verdict never changes.
                let pat = GlobalResponseTimed::new(p(), q(), 2);
                let mut m = pat.begin();
                let mut decided: Option<CheckStatus> = None;
                for s in &states {
                    let v = m.observe(s);
                    if let Some(d) = decided {
                        prop_assert_eq!(v, d);
                    } else if v.is_decided() {
                        decided = Some(v);
                    }
                }
            }
        }
    }
}
