//! A small LTL (with discrete-time bounds) abstract syntax tree and
//! finite-trace evaluator.
//!
//! The pattern classes in [`crate::patterns`] each have a hand-rolled,
//! efficient evaluator; this module provides the *reference semantics*
//! they are property-tested against, plus the formula values that
//! `vdo-specpat` emits when it formalises a specification pattern.
//!
//! Evaluation is three-valued ([`CheckStatus`]) under two finite-trace
//! interpretations:
//!
//! * [`Semantics::Complete`] — the trace is the whole behaviour
//!   (classic finite-trace LTL: `G p` passes if `p` held at every
//!   observed tick, strong `X` fails at the last tick);
//! * [`Semantics::Prefix`] — the trace is a prefix of an unknown
//!   infinite behaviour (impartial runtime-verification semantics:
//!   verdicts are only `Pass`/`Fail` when *every* continuation agrees,
//!   `Incomplete` otherwise).

use std::fmt;

use vdo_core::CheckStatus;

use crate::patterns::Semantics;
use crate::trace::{Tick, Trace};

/// An LTL formula over named atomic propositions.
///
/// ```
/// use vdo_temporal::Formula;
/// let f = Formula::globally(Formula::implies(
///     Formula::atom("request"),
///     Formula::finally_within(5, Formula::atom("response")),
/// ));
/// assert_eq!(f.to_string(), "G (request -> F<=5 response)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// Named atomic proposition.
    Atom(String),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Strong next.
    Next(Box<Formula>),
    /// Always (`G`).
    Globally(Box<Formula>),
    /// Eventually (`F`).
    Finally(Box<Formula>),
    /// Until (`p U q`).
    Until(Box<Formula>, Box<Formula>),
    /// Time-bounded always: `G<=T f`.
    GloballyWithin(Tick, Box<Formula>),
    /// Time-bounded eventually: `F<=T f`.
    FinallyWithin(Tick, Box<Formula>),
}

impl Formula {
    /// Atomic proposition.
    #[must_use]
    pub fn atom(name: impl Into<String>) -> Formula {
        Formula::Atom(name.into())
    }

    /// Negation.
    #[must_use]
    // An `ops::Not` impl would move the operand; the builder-style
    // associated function is the intended API.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// Conjunction.
    #[must_use]
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(Box::new(a), Box::new(b))
    }

    /// Disjunction.
    #[must_use]
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(Box::new(a), Box::new(b))
    }

    /// Implication.
    #[must_use]
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// Strong next.
    #[must_use]
    pub fn next(f: Formula) -> Formula {
        Formula::Next(Box::new(f))
    }

    /// `G f`.
    #[must_use]
    pub fn globally(f: Formula) -> Formula {
        Formula::Globally(Box::new(f))
    }

    /// `F f`.
    #[must_use]
    pub fn finally(f: Formula) -> Formula {
        Formula::Finally(Box::new(f))
    }

    /// `a U b`.
    #[must_use]
    pub fn until(a: Formula, b: Formula) -> Formula {
        Formula::Until(Box::new(a), Box::new(b))
    }

    /// `G<=bound f`.
    #[must_use]
    pub fn globally_within(bound: Tick, f: Formula) -> Formula {
        Formula::GloballyWithin(bound, Box::new(f))
    }

    /// `F<=bound f`.
    #[must_use]
    pub fn finally_within(bound: Tick, f: Formula) -> Formula {
        Formula::FinallyWithin(bound, Box::new(f))
    }

    /// Names of all atoms occurring in the formula, in first-occurrence
    /// order, without duplicates.
    #[must_use]
    pub fn atoms(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => {
                if !out.contains(&a.as_str()) {
                    out.push(a);
                }
            }
            Formula::Not(f)
            | Formula::Next(f)
            | Formula::Globally(f)
            | Formula::Finally(f)
            | Formula::GloballyWithin(_, f)
            | Formula::FinallyWithin(_, f) => f.collect_atoms(out),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Until(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
        }
    }

    /// Syntactic size (number of AST nodes).
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 1,
            Formula::Not(f)
            | Formula::Next(f)
            | Formula::Globally(f)
            | Formula::Finally(f)
            | Formula::GloballyWithin(_, f)
            | Formula::FinallyWithin(_, f) => 1 + f.size(),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Until(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn paren(f: &Formula) -> bool {
            matches!(
                f,
                Formula::And(..) | Formula::Or(..) | Formula::Implies(..) | Formula::Until(..)
            )
        }
        fn wrap(x: &Formula, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            if paren(x) {
                write!(f, "({x})")
            } else {
                write!(f, "{x}")
            }
        }
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Not(x) => {
                write!(f, "!")?;
                wrap(x, f)
            }
            Formula::And(a, b) => {
                wrap(a, f)?;
                write!(f, " && ")?;
                wrap(b, f)
            }
            Formula::Or(a, b) => {
                wrap(a, f)?;
                write!(f, " || ")?;
                wrap(b, f)
            }
            Formula::Implies(a, b) => {
                wrap(a, f)?;
                write!(f, " -> ")?;
                wrap(b, f)
            }
            Formula::Next(x) => {
                write!(f, "X ")?;
                wrap(x, f)
            }
            Formula::Globally(x) => {
                write!(f, "G ")?;
                wrap(x, f)
            }
            Formula::Finally(x) => {
                write!(f, "F ")?;
                wrap(x, f)
            }
            Formula::Until(a, b) => {
                wrap(a, f)?;
                write!(f, " U ")?;
                wrap(b, f)
            }
            Formula::GloballyWithin(t, x) => {
                write!(f, "G<={t} ")?;
                wrap(x, f)
            }
            Formula::FinallyWithin(t, x) => {
                write!(f, "F<={t} ")?;
                wrap(x, f)
            }
        }
    }
}

/// Binds a formula's atoms to propositions over trace states, providing
/// evaluation.
///
/// The labelling function may return [`CheckStatus::Incomplete`] for
/// atoms it cannot decide in a given state (e.g. a sensor that was not
/// sampled); incompleteness propagates through the Kleene connectives.
pub struct Interpretation<'a, S> {
    label: LabelFn<'a, S>,
}

/// The labelling function type: `(atom name, state) → verdict`.
type LabelFn<'a, S> = Box<dyn Fn(&str, &S) -> CheckStatus + 'a>;

impl<'a, S> Interpretation<'a, S> {
    /// Creates an interpretation from a labelling function
    /// `(atom name, state) → verdict`.
    #[must_use]
    pub fn new(label: impl Fn(&str, &S) -> CheckStatus + 'a) -> Self {
        Interpretation {
            label: Box::new(label),
        }
    }

    /// Evaluates `formula` at position `at` of `trace` under `mode`.
    ///
    /// Positions past the end of the trace yield `Fail` under
    /// [`Semantics::Complete`] (there is no such state) and
    /// `Incomplete` under [`Semantics::Prefix`].
    #[must_use]
    pub fn evaluate(
        &self,
        formula: &Formula,
        trace: &Trace<S>,
        at: Tick,
        mode: Semantics,
    ) -> CheckStatus {
        let n = trace.len() as Tick;
        let beyond = |mode: Semantics| match mode {
            Semantics::Complete => CheckStatus::Fail,
            Semantics::Prefix => CheckStatus::Incomplete,
        };
        match formula {
            Formula::True => CheckStatus::Pass,
            Formula::False => CheckStatus::Fail,
            Formula::Atom(a) => match trace.state_at(at) {
                Some(s) => (self.label)(a, s),
                None => beyond(mode),
            },
            Formula::Not(f) => self.evaluate(f, trace, at, mode).negate(),
            Formula::And(a, b) => self
                .evaluate(a, trace, at, mode)
                .and(self.evaluate(b, trace, at, mode)),
            Formula::Or(a, b) => self
                .evaluate(a, trace, at, mode)
                .or(self.evaluate(b, trace, at, mode)),
            Formula::Implies(a, b) => self
                .evaluate(a, trace, at, mode)
                .negate()
                .or(self.evaluate(b, trace, at, mode)),
            Formula::Next(f) => {
                if at + 1 < n {
                    self.evaluate(f, trace, at + 1, mode)
                } else {
                    beyond(mode)
                }
            }
            Formula::Globally(f) => {
                let mut acc = match mode {
                    Semantics::Complete => CheckStatus::Pass,
                    Semantics::Prefix => CheckStatus::Incomplete, // future unknown
                };
                for j in (at..n).rev() {
                    acc = self.evaluate(f, trace, j, mode).and(acc);
                }
                acc
            }
            Formula::Finally(f) => {
                let mut acc = match mode {
                    Semantics::Complete => CheckStatus::Fail,
                    Semantics::Prefix => CheckStatus::Incomplete,
                };
                for j in (at..n).rev() {
                    acc = self.evaluate(f, trace, j, mode).or(acc);
                }
                acc
            }
            Formula::Until(p, q) => {
                // p U q  ≡  q ∨ (p ∧ X(p U q)); evaluate right-to-left.
                let mut acc = beyond(mode);
                for j in (at..n).rev() {
                    let qj = self.evaluate(q, trace, j, mode);
                    let pj = self.evaluate(p, trace, j, mode);
                    acc = qj.or(pj.and(acc));
                }
                acc
            }
            Formula::GloballyWithin(bound, f) => {
                if at >= n {
                    // Empty window: vacuously true when the trace is
                    // complete, undecided while more states may arrive.
                    return match mode {
                        Semantics::Complete => CheckStatus::Pass,
                        Semantics::Prefix => CheckStatus::Incomplete,
                    };
                }
                // The window is [at, at+bound]; it may extend past the trace.
                let hi = at.saturating_add(*bound);
                let window_complete = hi < n;
                let mut acc = CheckStatus::Pass;
                for j in at..=hi.min(n - 1) {
                    acc = acc.and(self.evaluate(f, trace, j, mode));
                }
                if !window_complete && mode == Semantics::Prefix {
                    acc = acc.and(CheckStatus::Incomplete);
                }
                acc
            }
            Formula::FinallyWithin(bound, f) => {
                if at >= n {
                    // Empty window: nothing can ever satisfy `f` when the
                    // trace is complete.
                    return beyond(mode);
                }
                let hi = at.saturating_add(*bound);
                let window_complete = hi < n;
                let mut acc = CheckStatus::Fail;
                for j in at..=hi.min(n - 1) {
                    acc = acc.or(self.evaluate(f, trace, j, mode));
                }
                if !window_complete && mode == Semantics::Prefix && acc == CheckStatus::Fail {
                    acc = CheckStatus::Incomplete;
                }
                acc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CheckStatus::{Fail, Incomplete, Pass};

    /// States are (bool, bool) = (p, q).
    fn interp() -> Interpretation<'static, (bool, bool)> {
        Interpretation::new(|name, s: &(bool, bool)| match name {
            "p" => CheckStatus::from(s.0),
            "q" => CheckStatus::from(s.1),
            _ => Incomplete,
        })
    }

    fn tr(bits: &[(bool, bool)]) -> Trace<(bool, bool)> {
        Trace::from_states(bits.iter().copied())
    }

    #[test]
    fn atoms_and_connectives() {
        let i = interp();
        let t = tr(&[(true, false)]);
        assert_eq!(
            i.evaluate(&Formula::atom("p"), &t, 0, Semantics::Complete),
            Pass
        );
        assert_eq!(
            i.evaluate(&Formula::atom("q"), &t, 0, Semantics::Complete),
            Fail
        );
        let f = Formula::and(Formula::atom("p"), Formula::not(Formula::atom("q")));
        assert_eq!(i.evaluate(&f, &t, 0, Semantics::Complete), Pass);
        let unk = Formula::atom("r");
        assert_eq!(i.evaluate(&unk, &t, 0, Semantics::Complete), Incomplete);
        assert_eq!(
            i.evaluate(
                &Formula::or(Formula::atom("p"), unk),
                &t,
                0,
                Semantics::Complete
            ),
            Pass,
            "Pass dominates disjunction with unknown"
        );
    }

    #[test]
    fn globally_complete_vs_prefix() {
        let i = interp();
        let all_p = tr(&[(true, false), (true, false)]);
        let g = Formula::globally(Formula::atom("p"));
        assert_eq!(i.evaluate(&g, &all_p, 0, Semantics::Complete), Pass);
        assert_eq!(
            i.evaluate(&g, &all_p, 0, Semantics::Prefix),
            Incomplete,
            "prefix semantics cannot confirm G"
        );
        let broken = tr(&[(true, false), (false, false)]);
        assert_eq!(i.evaluate(&g, &broken, 0, Semantics::Complete), Fail);
        assert_eq!(i.evaluate(&g, &broken, 0, Semantics::Prefix), Fail);
    }

    #[test]
    fn finally_complete_vs_prefix() {
        let i = interp();
        let f = Formula::finally(Formula::atom("q"));
        let with_q = tr(&[(false, false), (false, true)]);
        assert_eq!(i.evaluate(&f, &with_q, 0, Semantics::Complete), Pass);
        assert_eq!(i.evaluate(&f, &with_q, 0, Semantics::Prefix), Pass);
        let without = tr(&[(false, false), (false, false)]);
        assert_eq!(i.evaluate(&f, &without, 0, Semantics::Complete), Fail);
        assert_eq!(i.evaluate(&f, &without, 0, Semantics::Prefix), Incomplete);
    }

    #[test]
    fn next_at_end() {
        let i = interp();
        let t = tr(&[(true, true)]);
        let x = Formula::next(Formula::atom("p"));
        assert_eq!(i.evaluate(&x, &t, 0, Semantics::Complete), Fail);
        assert_eq!(i.evaluate(&x, &t, 0, Semantics::Prefix), Incomplete);
    }

    #[test]
    fn until_semantics() {
        let i = interp();
        let u = Formula::until(Formula::atom("p"), Formula::atom("q"));
        // p holds until q appears.
        let good = tr(&[(true, false), (true, false), (false, true)]);
        assert_eq!(i.evaluate(&u, &good, 0, Semantics::Complete), Pass);
        assert_eq!(i.evaluate(&u, &good, 0, Semantics::Prefix), Pass);
        // p breaks before q.
        let bad = tr(&[(true, false), (false, false), (false, true)]);
        assert_eq!(
            i.evaluate(&bad_formula(&u), &bad, 0, Semantics::Complete),
            Pass
        );
        assert_eq!(i.evaluate(&u, &bad, 0, Semantics::Complete), Fail);
        assert_eq!(i.evaluate(&u, &bad, 0, Semantics::Prefix), Fail);
        // q never arrives but p holds throughout: undecided prefix.
        let open = tr(&[(true, false), (true, false)]);
        assert_eq!(i.evaluate(&u, &open, 0, Semantics::Complete), Fail);
        assert_eq!(i.evaluate(&u, &open, 0, Semantics::Prefix), Incomplete);
    }

    fn bad_formula(u: &Formula) -> Formula {
        Formula::not(u.clone())
    }

    #[test]
    fn bounded_finally() {
        let i = interp();
        let f = Formula::finally_within(2, Formula::atom("q"));
        let hit = tr(&[
            (false, false),
            (false, false),
            (false, true),
            (false, false),
        ]);
        assert_eq!(i.evaluate(&f, &hit, 0, Semantics::Complete), Pass);
        let miss = tr(&[
            (false, false),
            (false, false),
            (false, false),
            (false, true),
        ]);
        assert_eq!(i.evaluate(&f, &miss, 0, Semantics::Complete), Fail);
        assert_eq!(
            i.evaluate(&f, &miss, 0, Semantics::Prefix),
            Fail,
            "window fully observed ⇒ decided even under prefix semantics"
        );
        // Window extends past the trace end and q not yet seen.
        let short = tr(&[(false, false), (false, false)]);
        assert_eq!(i.evaluate(&f, &short, 0, Semantics::Prefix), Incomplete);
        assert_eq!(i.evaluate(&f, &short, 0, Semantics::Complete), Fail);
    }

    #[test]
    fn bounded_globally() {
        let i = interp();
        let g = Formula::globally_within(1, Formula::atom("p"));
        let ok = tr(&[(true, false), (true, false), (false, false)]);
        assert_eq!(i.evaluate(&g, &ok, 0, Semantics::Complete), Pass);
        assert_eq!(
            i.evaluate(&g, &ok, 0, Semantics::Prefix),
            Pass,
            "bounded G decides Pass once the window closes"
        );
        let bad = tr(&[(true, false), (false, false)]);
        assert_eq!(i.evaluate(&g, &bad, 0, Semantics::Prefix), Fail);
        let short = tr(&[(true, false)]);
        assert_eq!(i.evaluate(&g, &short, 0, Semantics::Prefix), Incomplete);
    }

    #[test]
    fn display_and_atoms() {
        let f = Formula::globally(Formula::implies(
            Formula::atom("p"),
            Formula::finally_within(3, Formula::atom("q")),
        ));
        assert_eq!(f.to_string(), "G (p -> F<=3 q)");
        assert_eq!(f.atoms(), vec!["p", "q"]);
        assert_eq!(f.size(), 5);
    }

    #[test]
    fn empty_trace() {
        let i = interp();
        let t = tr(&[]);
        assert_eq!(
            i.evaluate(&Formula::atom("p"), &t, 0, Semantics::Prefix),
            Incomplete
        );
        assert_eq!(
            i.evaluate(&Formula::atom("p"), &t, 0, Semantics::Complete),
            Fail
        );
    }
}
