//! Finite execution traces over a discrete clock.

use std::fmt;

/// Discrete time, in clock ticks. One tick is the unit in which pattern
/// bounds ([`GlobalResponseTimed`](crate::GlobalResponseTimed)'s `T`) and
/// monitor polling periods are expressed.
pub type Tick = u64;

/// A finite trace: the system's state sampled at ticks `0..len`.
///
/// States are arbitrary `S`; propositions over them are
/// [`vdo_core::Checkable<S>`] values. Construct from a state sequence or
/// incrementally with [`push`](Trace::push).
///
/// ```
/// use vdo_temporal::Trace;
/// let mut t = Trace::new();
/// t.push("boot");
/// t.push("ready");
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.state_at(1), Some(&"ready"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace<S> {
    states: Vec<S>,
}

impl<S> Trace<S> {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace { states: Vec::new() }
    }

    /// Builds a trace from a sequence of states (tick `i` = `i`-th state).
    #[must_use]
    pub fn from_states<I: IntoIterator<Item = S>>(states: I) -> Self {
        Trace {
            states: states.into_iter().collect(),
        }
    }

    /// Appends the state observed at the next tick.
    pub fn push(&mut self, state: S) {
        self.states.push(state);
    }

    /// Number of observed ticks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` iff no tick has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// State at the given tick, if within the trace.
    #[must_use]
    pub fn state_at(&self, tick: Tick) -> Option<&S> {
        self.states.get(tick as usize)
    }

    /// All states in tick order.
    #[must_use]
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Iterates `(tick, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Tick, &S)> {
        self.states.iter().enumerate().map(|(i, s)| (i as Tick, s))
    }

    /// The suffix starting at `tick` (empty if out of range), as a
    /// borrowed slice of states.
    #[must_use]
    pub fn suffix(&self, tick: Tick) -> &[S] {
        let i = (tick as usize).min(self.states.len());
        &self.states[i..]
    }
}

impl<S> Default for Trace<S> {
    fn default() -> Self {
        Trace::new()
    }
}

impl<S> FromIterator<S> for Trace<S> {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        Trace::from_states(iter)
    }
}

impl<S> Extend<S> for Trace<S> {
    fn extend<I: IntoIterator<Item = S>>(&mut self, iter: I) {
        self.states.extend(iter);
    }
}

impl<S: fmt::Display> fmt::Display for Trace<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, s) in self.states.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t: Trace<u8> = Trace::from_states([10, 20, 30]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.state_at(0), Some(&10));
        assert_eq!(t.state_at(2), Some(&30));
        assert_eq!(t.state_at(3), None);
    }

    #[test]
    fn iter_yields_ticks() {
        let t: Trace<char> = "abc".chars().collect();
        let pairs: Vec<_> = t.iter().map(|(i, c)| (i, *c)).collect();
        assert_eq!(pairs, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
    }

    #[test]
    fn suffix_clamps() {
        let t: Trace<u8> = Trace::from_states([1, 2, 3]);
        assert_eq!(t.suffix(1), &[2, 3]);
        assert_eq!(t.suffix(3), &[] as &[u8]);
        assert_eq!(t.suffix(99), &[] as &[u8]);
    }

    #[test]
    fn extend_and_push() {
        let mut t = Trace::new();
        t.push(1);
        t.extend([2, 3]);
        assert_eq!(t.states(), &[1, 2, 3]);
    }

    #[test]
    fn display_renders_angle_brackets() {
        let t: Trace<u8> = Trace::from_states([1, 2]);
        assert_eq!(t.to_string(), "⟨1, 2⟩");
    }
}
