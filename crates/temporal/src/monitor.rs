//! The runtime monitoring loop — "reactive protection at operations".
//!
//! The Java prototype's `MonitoringLoop` periodically re-checks a temporal
//! property (`sleepMilliseconds()` between polls). This module reproduces
//! it on a **simulated clock**: the environment's ground-truth behaviour
//! is a [`Trace`] with one state per tick, and the loop samples it every
//! `period` ticks, feeding samples to a [`PatternMonitor`](crate::patterns::PatternMonitor).
//!
//! Two effects fall out exactly as in a real deployment and are measured
//! by experiments E4/A2:
//!
//! * **detection latency** — a violation occurring between polls is seen
//!   only at the next poll;
//! * **sampling blindness** — a glitch shorter than the polling period
//!   can be missed entirely.

use std::fmt;

use vdo_core::CheckStatus;

use crate::patterns::TemporalPattern;
use crate::trace::{Tick, Trace};

/// Error returned by [`MonitoringLoop::new`] when the polling period is
/// zero: the loop would re-sample the same tick forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroPeriodError;

impl fmt::Display for ZeroPeriodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("polling period must be at least one tick")
    }
}

impl std::error::Error for ZeroPeriodError {}

/// Why a monitoring run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorOutcome {
    /// The pattern was violated; the payload is the tick of the poll that
    /// detected it.
    ViolationDetected(Tick),
    /// The pattern's verdict became conclusively `Pass` (only possible
    /// for time-bounded patterns).
    ConclusivePass(Tick),
    /// The trace ended with the verdict still open.
    EndOfTrace,
}

/// Everything one monitoring run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorReport {
    /// How the run ended.
    pub outcome: MonitorOutcome,
    /// Number of polls performed.
    pub polls: u64,
    /// Verdict at the end of the run (prefix semantics).
    pub final_verdict: CheckStatus,
    /// Polling period used, in ticks.
    pub period: Tick,
}

impl MonitorReport {
    /// Detection latency relative to a known ground-truth violation tick:
    /// `detected_at - violation_tick`. `None` if the run did not detect a
    /// violation or the violation "happened" after detection (caller
    /// error).
    #[must_use]
    pub fn detection_latency(&self, violation_tick: Tick) -> Option<Tick> {
        match self.outcome {
            MonitorOutcome::ViolationDetected(at) if at >= violation_tick => {
                Some(at - violation_tick)
            }
            _ => None,
        }
    }
}

/// Periodically samples an environment trace and drives a pattern
/// monitor.
///
/// ```
/// use vdo_core::CheckStatus;
/// use vdo_temporal::{GlobalUniversality, MonitorOutcome, MonitoringLoop, Trace};
///
/// // Ground truth: service healthy until tick 6, then down.
/// let trace: Trace<bool> = (0..10).map(|t| t < 6).collect();
/// let pattern = GlobalUniversality::new(|up: &bool| CheckStatus::from(*up));
/// let report = MonitoringLoop::new(2).unwrap().run(&pattern, &trace);
/// assert_eq!(report.outcome, MonitorOutcome::ViolationDetected(6));
/// assert_eq!(report.detection_latency(6), Some(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitoringLoop {
    period: Tick,
}

impl MonitoringLoop {
    /// Creates a loop polling every `period` ticks (the analogue of
    /// `sleepMilliseconds`).
    ///
    /// # Errors
    ///
    /// Returns [`ZeroPeriodError`] if `period` is zero, so configs built
    /// from user input surface a recoverable error instead of aborting
    /// the process.
    pub fn new(period: Tick) -> Result<Self, ZeroPeriodError> {
        if period == 0 {
            return Err(ZeroPeriodError);
        }
        Ok(MonitoringLoop { period })
    }

    /// The polling period in ticks.
    #[must_use]
    pub fn period(&self) -> Tick {
        self.period
    }

    /// Runs the pattern monitor over the ground-truth `trace`, sampling at
    /// ticks `0, period, 2·period, …`, stopping early on a decided
    /// verdict.
    pub fn run<S, P: TemporalPattern<S>>(&self, pattern: &P, trace: &Trace<S>) -> MonitorReport {
        self.run_observed(pattern, trace, &vdo_obs::Registry::disabled())
    }

    /// Like [`run`](Self::run), but records the `temporal.polls` /
    /// `temporal.violations` counters and times the evaluation under
    /// the `temporal/monitor` span in `obs`.
    pub fn run_observed<S, P: TemporalPattern<S>>(
        &self,
        pattern: &P,
        trace: &Trace<S>,
        obs: &vdo_obs::Registry,
    ) -> MonitorReport {
        let _span = obs.span("temporal/monitor");
        let report = self.run_inner(pattern, trace);
        obs.counter("temporal.polls").add(report.polls);
        if matches!(report.outcome, MonitorOutcome::ViolationDetected(_)) {
            obs.counter("temporal.violations").inc();
        }
        report
    }

    fn run_inner<S, P: TemporalPattern<S>>(&self, pattern: &P, trace: &Trace<S>) -> MonitorReport {
        let mut monitor = pattern.begin();
        let mut polls = 0;
        let mut tick = 0;
        while let Some(state) = trace.state_at(tick) {
            polls += 1;
            let verdict = monitor.observe(state);
            match verdict {
                CheckStatus::Fail => {
                    return MonitorReport {
                        outcome: MonitorOutcome::ViolationDetected(tick),
                        polls,
                        final_verdict: verdict,
                        period: self.period,
                    };
                }
                CheckStatus::Pass => {
                    return MonitorReport {
                        outcome: MonitorOutcome::ConclusivePass(tick),
                        polls,
                        final_verdict: verdict,
                        period: self.period,
                    };
                }
                CheckStatus::Incomplete => {}
            }
            tick += self.period;
        }
        MonitorReport {
            outcome: MonitorOutcome::EndOfTrace,
            polls,
            final_verdict: monitor.verdict(),
            period: self.period,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{
        Eventually, GlobalResponseTimed, GlobalUniversality, GlobalUniversalityTimed,
    };

    fn up(threshold: u64) -> Trace<bool> {
        (0..20).map(|t| t < threshold).collect()
    }

    #[test]
    fn tight_polling_detects_at_violation_tick() {
        let pattern = GlobalUniversality::new(|b: &bool| CheckStatus::from(*b));
        let report = MonitoringLoop::new(1)
            .expect("nonzero period")
            .run(&pattern, &up(7));
        assert_eq!(report.outcome, MonitorOutcome::ViolationDetected(7));
        assert_eq!(report.detection_latency(7), Some(0));
        assert_eq!(report.polls, 8);
    }

    #[test]
    fn coarse_polling_adds_latency() {
        let pattern = GlobalUniversality::new(|b: &bool| CheckStatus::from(*b));
        // Violation at tick 7; polls at 0,5,10 → detected at 10.
        let report = MonitoringLoop::new(5)
            .expect("nonzero period")
            .run(&pattern, &up(7));
        assert_eq!(report.outcome, MonitorOutcome::ViolationDetected(10));
        assert_eq!(report.detection_latency(7), Some(3));
        assert_eq!(report.polls, 3);
    }

    #[test]
    fn short_glitch_can_be_missed() {
        // Down only at tick 3; polls every 2 ticks see 0,2,4,… — blind.
        let trace: Trace<bool> = (0..10).map(|t| t != 3).collect();
        let pattern = GlobalUniversality::new(|b: &bool| CheckStatus::from(*b));
        let report = MonitoringLoop::new(2)
            .expect("nonzero period")
            .run(&pattern, &trace);
        assert_eq!(report.outcome, MonitorOutcome::EndOfTrace);
        assert_eq!(report.final_verdict, CheckStatus::Incomplete);
    }

    #[test]
    fn conclusive_pass_for_bounded_pattern() {
        let trace: Trace<bool> = (0..20).map(|_| true).collect();
        let pattern = GlobalUniversalityTimed::new(|b: &bool| CheckStatus::from(*b), 4);
        let report = MonitoringLoop::new(1)
            .expect("nonzero period")
            .run(&pattern, &trace);
        assert_eq!(report.outcome, MonitorOutcome::ConclusivePass(4));
        assert_eq!(report.polls, 5);
    }

    #[test]
    fn eventually_pass_detected() {
        let trace: Trace<bool> = (0..10).map(|t| t == 6).collect();
        let pattern = Eventually::new(|b: &bool| CheckStatus::from(*b));
        let report = MonitoringLoop::new(3)
            .expect("nonzero period")
            .run(&pattern, &trace);
        assert_eq!(report.outcome, MonitorOutcome::ConclusivePass(6));
    }

    #[test]
    fn detection_latency_requires_detection() {
        let trace: Trace<bool> = (0..4).map(|_| true).collect();
        let pattern = GlobalUniversality::new(|b: &bool| CheckStatus::from(*b));
        let report = MonitoringLoop::new(1)
            .expect("nonzero period")
            .run(&pattern, &trace);
        assert_eq!(report.detection_latency(0), None);
    }

    #[test]
    fn sampled_response_monitoring_uses_poll_clock() {
        // NOTE: under sampling, the monitor's notion of time is *polls*,
        // not ticks; callers express bounds in poll units. A bound of 2
        // polls at period 5 means "response within ~10 ticks".
        let states: Trace<(bool, bool)> = Trace::from_states(vec![
            (true, false), // trigger at tick 0 (poll 0)
            (false, false),
            (false, false),
            (false, false),
            (false, false),
            (false, true), // response at tick 5 (poll 1)
        ]);
        let pattern = GlobalResponseTimed::new(
            |s: &(bool, bool)| CheckStatus::from(s.0),
            |s: &(bool, bool)| CheckStatus::from(s.1),
            2,
        );
        let report = MonitoringLoop::new(5)
            .expect("nonzero period")
            .run(&pattern, &states);
        assert_eq!(report.outcome, MonitorOutcome::EndOfTrace);
        assert_eq!(report.final_verdict, CheckStatus::Incomplete);
    }

    #[test]
    fn observed_run_records_polls_and_violations() {
        let registry = vdo_obs::Registry::new();
        let pattern = GlobalUniversality::new(|b: &bool| CheckStatus::from(*b));
        let report = MonitoringLoop::new(1)
            .expect("nonzero period")
            .run_observed(&pattern, &up(7), &registry);
        assert_eq!(report.outcome, MonitorOutcome::ViolationDetected(7));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("temporal.polls"), Some(8));
        assert_eq!(snap.counter("temporal.violations"), Some(1));
        assert_eq!(snap.span_count("temporal/monitor"), Some(1));
    }

    #[test]
    fn zero_period_is_a_recoverable_error() {
        let err = MonitoringLoop::new(0).unwrap_err();
        assert_eq!(err, ZeroPeriodError);
        assert!(err.to_string().contains("polling period"));
    }
}
