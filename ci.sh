#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test --workspace -q

echo "CI green."
