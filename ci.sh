#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> examples smoke"
cargo build --release --examples
for ex in examples/*.rs; do
  name="$(basename "$ex" .rs)"
  echo "--> example: $name"
  cargo run --release --quiet --example "$name" > /dev/null
done

echo "==> exp_report --json --journal"
cargo run -p vdo-bench --bin exp_report --release --quiet -- --json target/exp_report.json --journal target/journal.jsonl > /dev/null
python3 -c "import json; json.load(open('target/exp_report.json'))" 2> /dev/null \
  || echo "   (python3 unavailable — skipping JSON validation)"
python3 -c "import json; [json.loads(l) for l in open('target/journal.jsonl')]" 2> /dev/null \
  || echo "   (python3 unavailable — skipping JSONL validation)"

echo "==> E15 latency budget (smoke p99 vs documented budget)"
python3 - << 'EOF' 2> /dev/null || echo "   (python3 unavailable — budget asserted in-binary by exp_report)"
import json
smoke = json.load(open('target/exp_report.json'))['e15_server']['smoke']
assert smoke['within_budget'], \
    f"E15 smoke p99 {smoke['p99_ticks']:.1f} exceeds the {smoke['budget_ticks']}-round budget"
print(f"   p99 {smoke['p99_ticks']:.1f} rounds <= budget {smoke['budget_ticks']}")
EOF

echo "==> E16 fleet-scale budget (100k-host smoke vs pinned memory + latency budgets)"
python3 - << 'EOF' 2> /dev/null || echo "   (python3 unavailable — budgets asserted in-binary by exp_report)"
import json
smoke = json.load(open('target/exp_report.json'))['e16_fleet_scale']['smoke']
assert smoke['within_budget'], (
    f"E16 smoke out of budget: {smoke['bytes_per_host']:.1f} bytes/host "
    f"(budget {smoke['bytes_budget']}), ratio {smoke['memory_ratio']:.1f}x "
    f"(floor {smoke['ratio_floor']}), max tick {smoke['max_tick_millis']:.3f} ms "
    f"(budget {smoke['tick_budget_millis']})")
print(f"   {smoke['hosts']} hosts: {smoke['bytes_per_host']:.1f} B/host "
      f"<= {smoke['bytes_budget']:.0f}, ratio {smoke['memory_ratio']:.0f}x "
      f">= {smoke['ratio_floor']:.0f}x, max tick {smoke['max_tick_millis']:.3f} ms "
      f"<= {smoke['tick_budget_millis']:.0f} ms")
EOF

echo "==> E17 incremental-analysis budget (1%-touch commit vs full re-run)"
python3 - << 'EOF' 2> /dev/null || echo "   (python3 unavailable — budget asserted in-binary by exp_report)"
import json
smoke = json.load(open('target/exp_report.json'))['e17_incremental_analysis']['smoke']
assert smoke['within_budget'], (
    f"E17 smoke out of budget: incremental mean {smoke['incr_mean_millis']:.3f} ms "
    f"is {smoke['latency_fraction']:.1%} of full {smoke['full_millis']:.3f} ms "
    f"(budget {smoke['fraction_budget']:.0%}), "
    f"reports identical: {smoke['reports_identical']}")
print(f"   {smoke['entries']} entries, {smoke['commits']} commits touching "
      f"{smoke['touched_per_commit']} each: incremental {smoke['incr_mean_millis']:.3f} ms "
      f"= {smoke['latency_fraction']:.1%} of full {smoke['full_millis']:.3f} ms "
      f"(budget {smoke['fraction_budget']:.0%}), reports identical")
EOF

echo "==> E18 journal/replay budget (size ratio vs JSONL + replay latency)"
python3 - << 'EOF' 2> /dev/null || echo "   (python3 unavailable — budgets asserted in-binary by exp_report)"
import json
e18 = json.load(open('target/exp_report.json'))['e18_journal_replay']
smoke = e18['smoke']
assert smoke['within_budget'], (
    f"E18 smoke out of budget: {smoke['jsonl_ratio']:.2f}x vs JSONL "
    f"(floor {smoke['ratio_floor']:.0f}x), root resolution "
    f"{smoke['root_resolution_pct']:.0f}%, max replay {smoke['max_replay_millis']:.1f} ms "
    f"(budget {smoke['replay_budget_millis']:.0f} ms)")
print(f"   columnar {e18['size']['bytes_per_event']:.1f} B/event = "
      f"{smoke['jsonl_ratio']:.2f}x smaller than JSONL (floor {smoke['ratio_floor']:.0f}x), "
      f"root resolution {smoke['root_resolution_pct']:.0f}%, max replay "
      f"{smoke['max_replay_millis']:.1f} ms <= {smoke['replay_budget_millis']:.0f} ms")
EOF
test -n "$(ls target/e18_compact/seg-*.vdoj 2> /dev/null)" \
  || { echo "E18 compacted journal segments missing from target/e18_compact"; exit 1; }

echo "==> E19 telemetry-plane budget (overhead + sampling ratio + alert latency)"
python3 - << 'EOF' 2> /dev/null || echo "   (python3 unavailable — budgets asserted in-binary by exp_report)"
import json
e19 = json.load(open('target/exp_report.json'))['e19_telemetry_plane']
smoke = e19['smoke']
assert smoke['within_budget'], (
    f"E19 smoke out of budget: plane overhead "
    f"{e19['overhead']['plane_overhead_pct']:.2f}% "
    f"(budget {e19['overhead']['budget_pct']:.0f}%), sampled journal "
    f"{e19['sampling']['size_ratio']:.1f}x smaller "
    f"(floor {e19['sampling']['size_ratio_floor']:.0f}x), root resolution "
    f"{e19['sampling']['root_resolution_pct']:.0f}%, alert latency "
    f"{e19['alerting']['alert_latency_ticks']} ticks "
    f"(budget {e19['alerting']['latency_budget_ticks']})")
print(f"   plane overhead {e19['overhead']['plane_overhead_pct']:.2f}% "
      f"<= {e19['overhead']['budget_pct']:.0f}%, sampled journal "
      f"{e19['sampling']['size_ratio']:.1f}x smaller "
      f"(floor {e19['sampling']['size_ratio_floor']:.0f}x) at "
      f"{e19['sampling']['root_resolution_pct']:.0f}% root resolution, "
      f"alert latency {e19['alerting']['alert_latency_ticks']} ticks "
      f"<= {e19['alerting']['latency_budget_ticks']}")
EOF
test -s target/e19_alerts.log \
  || { echo "E19 alert log missing or empty at target/e19_alerts.log"; exit 1; }

echo "CI green."
