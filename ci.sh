#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> examples smoke"
cargo build --release --examples
for ex in examples/*.rs; do
  name="$(basename "$ex" .rs)"
  echo "--> example: $name"
  cargo run --release --quiet --example "$name" > /dev/null
done

echo "==> exp_report --json --journal"
cargo run -p vdo-bench --bin exp_report --release --quiet -- --json target/exp_report.json --journal target/journal.jsonl > /dev/null
python3 -c "import json; json.load(open('target/exp_report.json'))" 2> /dev/null \
  || echo "   (python3 unavailable — skipping JSON validation)"
python3 -c "import json; [json.loads(l) for l in open('target/journal.jsonl')]" 2> /dev/null \
  || echo "   (python3 unavailable — skipping JSONL validation)"

echo "==> E15 latency budget (smoke p99 vs documented budget)"
python3 - << 'EOF' 2> /dev/null || echo "   (python3 unavailable — budget asserted in-binary by exp_report)"
import json
smoke = json.load(open('target/exp_report.json'))['e15_server']['smoke']
assert smoke['within_budget'], \
    f"E15 smoke p99 {smoke['p99_ticks']:.1f} exceeds the {smoke['budget_ticks']}-round budget"
print(f"   p99 {smoke['p99_ticks']:.1f} rounds <= budget {smoke['budget_ticks']}")
EOF

echo "CI green."
